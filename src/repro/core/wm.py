"""swm: the window manager itself.

Ties together the object system (§4), resource-driven configuration
(§3), window manager functions (§5), the Virtual Desktop with panner
and sticky windows (§6), and session management hooks (§7).

swm is an ordinary X client: it selects SubstructureRedirect on each
root, decorates clients by reparenting them into panel hierarchies
described entirely in the resource database, and dispatches button/key
events on object windows through each object's bindings attribute.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import icccm
from ..icccm.hints import (
    ICONIC_STATE,
    NORMAL_STATE,
    WITHDRAWN_STATE,
    SizeHints,
    WMHints,
    WMState,
)
from ..toolkit.attributes import AttributeContext
from ..xserver import events as ev
from ..xserver.client import ClientConnection
from ..xserver.errors import BadWindow, XError
from ..xserver.event_mask import EventMask
from ..xserver.geometry import Point, Rect, Size, parse_geometry
from ..xserver.server import XServer
from ..xserver.xid import NONE
from ..xrm.database import ResourceDatabase
from .bindings import (
    Binding,
    bindings_for_button,
    bindings_for_key,
    bindings_for_motion,
    )
from .decorate import (
    DecorationPlan,
    build_decoration,
    client_context,
    decoration_name,
    frame_shape_for,
    icon_panel_name,
)
from .functions import FunctionError, Invocation, lookup as lookup_function
from .icons import Icon, IconHolder, build_icon_panel
from .managed import ManagedWindow
from .objects import Button, Menu, Panel, SwmObject, TextObject, object_factory
from .panner import Panner
from .swmcmd import COMMAND_PROPERTY, SwmCmdError, parse_command_stream
from .templates import DEFAULT_TEMPLATE
from .virtual import VirtualDesktop

#: Property swm writes on every client: the window ID of its effective
#: root (the Virtual Desktop window, or the real root for sticky
#: windows).  vroot-aware toolkits position popups against it (§6.3).
SWM_ROOT_PROPERTY = "SWM_ROOT"

#: Root property carrying swmhints session-restart records (§7).
RESTART_PROPERTY = "SWM_RESTART_INFO"

WM_CHANGE_STATE = "WM_CHANGE_STATE"
WM_DELETE_WINDOW = "WM_DELETE_WINDOW"
WM_PROTOCOLS = "WM_PROTOCOLS"

CASCADE_STEP = 28

logger = logging.getLogger("repro.swm")


@dataclass
class Drag:
    """An interactive move/resize in progress."""

    kind: str  # "move" or "resize"
    managed: ManagedWindow
    start_pointer: Tuple[int, int]
    start_rect: Rect  # frame rect in its parent's coordinates
    current: Rect = None  # type: ignore[assignment]
    in_panner: bool = False

    def __post_init__(self):
        if self.current is None:
            self.current = self.start_rect


@dataclass
class Selection:
    """A pending interactive window selection (question-mark pointer)."""

    call: object  # FunctionCall
    multiple: bool
    screen: int


class ScreenContext:
    """Per-screen WM state."""

    def __init__(self, wm: "Swm", number: int):
        self.wm = wm
        self.number = number
        screen = wm.server.screens[number]
        self.screen = screen
        kind = "monochrome" if screen.monochrome else "color"
        self.ctx = AttributeContext(
            wm.db,
            ["swm", kind, f"screen{number}"],
            ["Swm", kind.capitalize(), "Screen"],
            monochrome=screen.monochrome,
        )
        #: Multiple Virtual Desktops (§6.3 suggests them via the
        #: SWM_ROOT property design); one is current, the rest are
        #: unmapped.  Sticky windows live on the real root and are
        #: therefore visible on every desktop.
        self.vdesks: List[VirtualDesktop] = []
        self.current_desktop = 0
        self.panner: Optional[Panner] = None
        self.scrollbars = None  # Optional[ScrollBars]
        self.icon_holders: List[IconHolder] = []
        self.root_panels: Dict[str, ManagedWindow] = {}
        self.root_panel_objects: Dict[str, Panel] = {}
        self.root_icons: Dict[str, Icon] = {}
        self.cascade = 0
        root_panel_obj = Panel(self.ctx, "root")
        self.root_bindings: List[Binding] = root_panel_obj.bindings

    @property
    def root(self) -> int:
        return self.screen.root.id

    @property
    def vdesk(self) -> Optional[VirtualDesktop]:
        """The current Virtual Desktop (None when disabled)."""
        if not self.vdesks:
            return None
        return self.vdesks[self.current_desktop]

    def desktop_parent(self, sticky: bool) -> int:
        """Where a frame lives: the vroot, or the real root when
        sticky (or when there is no Virtual Desktop)."""
        if self.vdesk is not None and not sticky:
            return self.vdesk.window
        return self.root

    def effective_root(self, sticky: bool) -> int:
        """The SWM_ROOT property value for a client."""
        return self.desktop_parent(sticky)

    def view_offset(self) -> Point:
        if self.vdesk is None:
            return Point(0, 0)
        return Point(self.vdesk.pan_x, self.vdesk.pan_y)

    def next_cascade(self) -> Point:
        offset = self.view_offset()
        step = CASCADE_STEP * (self.cascade % 10)
        self.cascade += 1
        return Point(offset.x + 32 + step, offset.y + 32 + step)


class Swm:
    """The swm window manager client."""

    def __init__(
        self,
        server: XServer,
        db: Optional[ResourceDatabase] = None,
        places_path: str = "swm.places",
        manage_existing: bool = True,
    ):
        self.server = server
        self.places_path = places_path
        self.conn = ClientConnection(server, "swm")
        self.db = db.copy() if db is not None else ResourceDatabase()
        if db is None:
            # Like any X client, read the RESOURCE_MANAGER property
            # (what xrdb loads onto the root window).
            xrdb_text = self.conn.get_string_property(
                self.conn.root_window(0), "RESOURCE_MANAGER"
            )
            if xrdb_text:
                try:
                    self.db.load_string(xrdb_text)
                except Exception:
                    pass  # a broken user database must not kill the WM
        if not self._has_swm_resources(self.db):
            # "If no swm configuration resources have been specified, a
            # default configuration can be loaded." (§3)
            self.db.load_string(DEFAULT_TEMPLATE)
        self.managed: Dict[int, ManagedWindow] = {}
        self.frames: Dict[int, ManagedWindow] = {}
        self.object_windows: Dict[int, Tuple[SwmObject, Optional[ManagedWindow], int]] = {}
        self.icon_windows: Dict[int, Icon] = {}
        self.corner_windows: Dict[int, ManagedWindow] = {}
        self.screens: List[ScreenContext] = []
        self.drag: Optional[Drag] = None
        self.selection: Optional[Selection] = None
        self.active_menu: Optional[Tuple[Menu, int, Optional[ManagedWindow]]] = None
        self.beeps = 0
        self.running = True
        self.launched: List[object] = []  # apps started by f.exec
        self._ignore_unmaps: Dict[int, int] = {}
        self._processing = False
        self.restart_table: List[dict] = []

        from ..session.hints import read_restart_property

        for number in range(len(server.screens)):
            screen_ctx = ScreenContext(self, number)
            self.screens.append(screen_ctx)
            self.conn.select_input(
                screen_ctx.root,
                EventMask.SubstructureRedirect
                | EventMask.SubstructureNotify
                | EventMask.PropertyChange
                | EventMask.ButtonPress
                | EventMask.ButtonRelease
                | EventMask.KeyPress,
            )
            self._setup_virtual_desktop(screen_ctx)
            self._setup_icon_holders(screen_ctx)
        # Read swmhints restart records before adopting clients (§7).
        self.restart_table = read_restart_property(self.conn, self.screens[0].root)
        for screen_ctx in self.screens:
            self._setup_root_panels(screen_ctx)
            self._setup_root_icons(screen_ctx)
            self._setup_panner(screen_ctx)
            self._setup_scrollbars(screen_ctx)
        if manage_existing:
            self._adopt_existing()
        self.conn.event_handlers.append(self._on_event)
        self.process_pending()

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    @staticmethod
    def _has_swm_resources(db: ResourceDatabase) -> bool:
        return any(
            pairs and pairs[0][1] in ("swm", "Swm")
            for pairs, _ in ((spec, val) for spec, val in db._entries.items())
        )

    def _setup_virtual_desktop(self, sc: ScreenContext) -> None:
        spec = sc.ctx.get_string([], "virtualDesktop")
        if not spec:
            return
        geometry = parse_geometry(spec)
        if geometry.width is None or geometry.height is None:
            raise ValueError(f"bad virtualDesktop size {spec!r}")
        count = max(1, sc.ctx.get_int([], "virtualDesktops", 1))
        for _ in range(count):
            sc.vdesks.append(
                VirtualDesktop(
                    self.conn,
                    sc.screen,
                    Size(geometry.width, geometry.height),
                    background=sc.ctx.get_string([], "desktopBackground"),
                )
            )
        sc.current_desktop = 0
        # Only the current desktop's window is mapped.
        for vdesk in sc.vdesks[1:]:
            self.conn.unmap_window(vdesk.window)

    def _setup_scrollbars(self, sc: ScreenContext) -> None:
        if sc.vdesk is None or not sc.ctx.get_bool([], "scrollbars", False):
            return
        from .scrollbars import ScrollBars

        sc.scrollbars = ScrollBars(self.conn, sc.ctx, sc.vdesk)

    def _setup_panner(self, sc: ScreenContext) -> None:
        if sc.vdesk is None:
            return
        if not sc.ctx.get_bool([], "panner", True):
            return
        sc.panner = Panner(
            self.conn,
            sc.ctx,
            sc.vdesk,
            get_windows=lambda sc=sc: self._panner_windows(sc),
            move_window=lambda managed, x, y: self.move_managed_to(managed, x, y),
        )
        icccm.set_wm_class(self.conn, sc.panner.window, "panner", "Swm")
        icccm.set_wm_name(self.conn, sc.panner.window, "Virtual Desktop")
        self.manage(sc.panner.window, internal=True, sticky=True)

    def _setup_icon_holders(self, sc: ScreenContext) -> None:
        names = (sc.ctx.get_string([], "iconHolders") or "").split()
        for name in names:
            sc.icon_holders.append(
                IconHolder(self.conn, sc.ctx, name, sc.root)
            )

    def _setup_root_panels(self, sc: ScreenContext) -> None:
        names = (sc.ctx.get_string([], "rootPanels") or "").split()
        for name in names:
            panel = Panel(sc.ctx, name)
            panel.build(object_factory(sc.ctx))
            size = panel.compute_layout().size
            geometry = sc.ctx.get_string(["panel", name], "geometry", "+0+0")
            geo = parse_geometry(geometry)
            position = geo.resolve(Size(sc.screen.width, sc.screen.height), size)
            window = panel.realize_tree(
                self.conn, sc.root, Rect(position.x, position.y, size.width, size.height)
            )
            icccm.set_wm_class(self.conn, window, name, "SwmPanel")
            icccm.set_wm_name(self.conn, window, name)
            managed = self.manage(window, internal=True)
            if managed is not None:
                sc.root_panels[name] = managed
                sc.root_panel_objects[name] = panel
                for obj in panel.iter_tree():
                    if obj.window is not None:
                        self.object_windows[obj.window] = (obj, managed, sc.number)

    def _setup_root_icons(self, sc: ScreenContext) -> None:
        names = (sc.ctx.get_string([], "rootIcons") or "").split()
        for name in names:
            panel = build_icon_panel(sc.ctx, name)
            size = panel.compute_layout().size
            geometry = sc.ctx.get_string(["panel", name], "geometry", "+0+0")
            geo = parse_geometry(geometry)
            position = geo.resolve(Size(sc.screen.width, sc.screen.height), size)
            window = panel.realize_tree(
                self.conn,
                sc.desktop_parent(sticky=False),
                Rect(position.x, position.y, size.width, size.height),
            )
            icon = Icon(panel, window, managed=None)
            sc.root_icons[name] = icon
            self.icon_windows[window] = icon
            for obj in panel.iter_tree():
                if obj.window is not None:
                    self.object_windows[obj.window] = (obj, None, sc.number)

    def _adopt_existing(self) -> None:
        """Manage pre-existing mapped top-level windows."""
        for sc in self.screens:
            _, _, children = self.conn.query_tree(sc.root)
            for child in children:
                if child in self.frames or child in self.managed:
                    continue
                try:
                    window = self.server.window(child)
                except BadWindow:
                    continue
                if window.owner == self.conn.client_id:
                    continue
                attrs = self.conn.get_window_attributes(child)
                if attrs["override_redirect"] or attrs["map_state"] == 0:
                    continue
                self.manage(child)

    # ------------------------------------------------------------------
    # Event pump
    # ------------------------------------------------------------------

    def _on_event(self, event: ev.Event) -> None:
        if self._processing:
            return  # the pump below will drain it in order
        self.process_pending()

    def process_pending(self) -> int:
        """Handle all queued events; returns how many were handled."""
        if self._processing:
            return 0
        self._processing = True
        handled = 0
        try:
            while self.conn.pending():
                event = self.conn.next_event()
                try:
                    self._dispatch(event)
                except XError:
                    # Windows race away (clients exiting mid-request);
                    # a WM must survive stale-window errors.
                    pass
                handled += 1
        finally:
            self._processing = False
        return handled

    def _dispatch(self, event: ev.Event) -> None:
        handler = getattr(self, f"_on_{type(event).__name__}", None)
        if handler is not None:
            handler(event)

    # ------------------------------------------------------------------
    # Managing windows
    # ------------------------------------------------------------------

    def manage(
        self,
        client: int,
        internal: bool = False,
        sticky: Optional[bool] = None,
    ) -> Optional[ManagedWindow]:
        """Bring *client* under management: decorate, reparent, map."""
        if client in self.managed:
            return self.managed[client]
        try:
            window = self.server.window(client)
        except BadWindow:
            return None
        if window.override_redirect:
            return None
        sc = self._screen_of_window(window)
        if sc is None:
            return None

        wm_class = icccm.get_wm_class(self.conn, client) or ("", "")
        instance, class_name = wm_class
        title = icccm.get_wm_name(self.conn, client) or instance or "untitled"
        size_hints = icccm.get_wm_normal_hints(self.conn, client) or SizeHints()
        wm_hints = icccm.get_wm_hints(self.conn, client) or WMHints()
        shaped = self.server.window_is_shaped(client)
        transient = icccm.get_wm_transient_for(self.conn, client) is not None

        restart_entry = self._match_restart_entry(client)

        if sticky is None:
            probe_ctx = client_context(sc.ctx, instance, class_name)
            sticky = probe_ctx.get_bool([], "sticky", False)
            if restart_entry is not None and restart_entry.get("sticky") is not None:
                sticky = bool(restart_entry["sticky"])

        cctx = client_context(sc.ctx, instance, class_name,
                              sticky=sticky, shaped=shaped,
                              transient=transient)
        panel_name = decoration_name(cctx)

        x, y, width, height, border = self.conn.get_geometry(client)
        if restart_entry is not None and restart_entry.get("geometry"):
            geo = restart_entry["geometry"]
            if geo.width is not None:
                width, height = geo.width, geo.height
                self.conn.resize_window(client, width, height)

        client_size = Size(width, height)
        if panel_name:
            plan = build_decoration(sc.ctx, panel_name, client_size, title)
        else:
            plan = self._bare_plan(sc.ctx, client_size)

        desired = self._initial_client_position(
            sc, size_hints, restart_entry, Point(x, y)
        )
        frame_origin = Point(
            desired.x - plan.client_rect.x, desired.y - plan.client_rect.y
        )

        parent = sc.desktop_parent(sticky)
        frame = plan.panel.realize_tree(
            self.conn,
            parent,
            Rect(frame_origin.x, frame_origin.y,
                 plan.frame_size.width, plan.frame_size.height),
        )

        # Reparent the client into the interior client slot.  The
        # reparent of a *mapped* window generates an UnmapNotify we must
        # not mistake for an ICCCM withdrawal.
        slot = plan.panel.find("client")
        slot_window = slot.window if slot is not None else frame
        if self.server.window(client).mapped:
            self._ignore_unmaps[client] = self._ignore_unmaps.get(client, 0) + 1
        if border:
            self.conn.configure_window(client, border_width=0)
        # Reparenting moves the client out from under the root's
        # SubstructureRedirect; select redirect on the slot so client
        # configure/map requests are still intercepted (as any
        # reparenting WM must).
        from .objects.base import OBJECT_EVENT_MASK

        self.conn.select_input(
            slot_window,
            OBJECT_EVENT_MASK
            | EventMask.SubstructureRedirect
            | EventMask.SubstructureNotify,
        )
        self.conn.reparent_window(client, slot_window, 0, 0)
        if not internal:
            self.conn.add_to_save_set(client)
        # Preserve any selection we already hold on our own windows
        # (the panner selects button events on its client window).
        existing = self.server.window(client).mask_for(self.conn.client_id)
        self.conn.select_input(
            client,
            existing | EventMask.PropertyChange | EventMask.StructureNotify,
        )

        managed = ManagedWindow(
            client=client,
            frame=frame,
            screen=sc.number,
            decoration=plan.panel,
            client_offset=Point(plan.client_rect.x, plan.client_rect.y),
            instance=instance,
            class_name=class_name,
            name=title,
            sticky=sticky,
            shaped=shaped,
            is_internal=internal,
            desktop=sc.current_desktop,
            decoration_name=plan.panel_name,
            resize_corners=plan.resize_corners,
            original_border_width=border,
            size_hints=size_hints,
            wm_hints=wm_hints,
        )
        logger.debug(
            "manage client=%#x frame=%#x %s.%s decoration=%r sticky=%s",
            client, frame, class_name, instance, plan.panel_name, sticky,
        )
        self.managed[client] = managed
        self.frames[frame] = managed
        for obj in plan.panel.iter_tree():
            if obj.window is not None:
                self.object_windows[obj.window] = (obj, managed, sc.number)

        shape = frame_shape_for(plan, self.server.shape_query(client))
        if shape is not None:
            self.conn.shape_window(frame, shape.mask, shape.x_offset, shape.y_offset)

        if plan.resize_corners:
            self._add_resize_corners(managed)

        icccm.set_wm_state(self.conn, client, WMState(NORMAL_STATE))
        self._set_swm_root(managed)
        self.conn.map_window(client)
        self.conn.map_window(frame)
        self.conn.raise_window(frame)
        self._send_synthetic_configure(managed)

        start_iconic = wm_hints.start_iconic
        if restart_entry is not None and restart_entry.get("state") is not None:
            start_iconic = restart_entry["state"] == ICONIC_STATE
            if restart_entry.get("icon_position") is not None:
                managed.wm_hints.flags |= icccm.ICON_POSITION_HINT
                managed.wm_hints.icon_x, managed.wm_hints.icon_y = restart_entry[
                    "icon_position"
                ]
        if start_iconic:
            self.iconify(managed)
        if (
            restart_entry is not None
            and restart_entry.get("desktop") is not None
            and sc.vdesks
        ):
            self.send_to_desktop(managed, restart_entry["desktop"])
        self._update_panner(sc)
        return managed

    #: Edge length of the resize-corner hot zones.
    CORNER_SIZE = 10

    def _add_resize_corners(self, managed: ManagedWindow) -> None:
        """resizeCorners: True (§4.1.1 / Figure 1): four corner hot
        zones on the frame that start an interactive resize."""
        rect = self.frame_rect(managed)
        size = self.CORNER_SIZE
        cursors = {
            (0, 0): "top_left_corner",
            (1, 0): "top_right_corner",
            (0, 1): "bottom_left_corner",
            (1, 1): "bottom_right_corner",
        }
        for (cx, cy), cursor in cursors.items():
            corner = self.conn.create_window(
                managed.frame,
                (rect.width - size) * cx,
                (rect.height - size) * cy,
                size,
                size,
                event_mask=EventMask.ButtonPress,
                cursor=cursor,
            )
            self.conn.map_window(corner)
            # Below the decoration objects: corners only catch clicks
            # in the frame margin, never steal the titlebar buttons.
            self.conn.lower_window(corner)
            self.corner_windows[corner] = managed

    def _reposition_corners(self, managed: ManagedWindow) -> None:
        rect = self.frame_rect(managed)
        size = self.CORNER_SIZE
        corners = [wid for wid, owner in self.corner_windows.items()
                   if owner is managed]
        for index, corner in enumerate(corners):
            cx, cy = index % 2, index // 2
            self.conn.move_window(
                corner,
                (rect.width - size) * cx,
                (rect.height - size) * cy,
            )
            self.conn.lower_window(corner)

    def _bare_plan(self, ctx: AttributeContext, client_size: Size) -> DecorationPlan:
        """No decoration resource: a frame that is nothing but the
        client slot."""
        panel = Panel(ctx, "bare")
        return DecorationPlan(
            panel=panel,
            panel_name="",
            frame_size=client_size,
            client_rect=Rect(0, 0, client_size.width, client_size.height),
            resize_corners=False,
        )

    def _initial_client_position(
        self,
        sc: ScreenContext,
        hints: SizeHints,
        restart_entry: Optional[dict],
        current: Point,
    ) -> Point:
        """Where the client window lands on the desktop (§6.3):
        USPosition is absolute, PPosition is viewport-relative,
        otherwise cascade within the current view."""
        if restart_entry is not None and restart_entry.get("geometry"):
            geo = restart_entry["geometry"]
            if geo.x is not None:
                return Point(geo.x, geo.y)
        if hints.user_position:
            x = hints.x or current.x
            y = hints.y or current.y
            return Point(x, y)
        if hints.program_position:
            offset = sc.view_offset()
            x = hints.x or current.x
            y = hints.y or current.y
            return Point(offset.x + x, offset.y + y)
        if current.x or current.y:
            # A pre-positioned window without hints: treat like PPosition.
            offset = sc.view_offset()
            return Point(offset.x + current.x, offset.y + current.y)
        return sc.next_cascade()

    def _match_restart_entry(self, client: int) -> Optional[dict]:
        """Find (and consume) a session-restart record whose WM_COMMAND
        — and, when present, WM_CLIENT_MACHINE — matches (§7)."""
        command = icccm.get_wm_command_string(self.conn, client)
        if command is None or not self.restart_table:
            return None
        machine = icccm.get_wm_client_machine(self.conn, client)
        for entry in self.restart_table:
            if entry["command"] != command:
                continue
            wanted = entry.get("machine")
            if wanted and machine and wanted != machine:
                continue
            self.restart_table.remove(entry)
            return entry
        return None

    def unmanage(self, managed: ManagedWindow, destroyed: bool = False) -> None:
        """Release a client: reparent it back to the root, destroy the
        decoration, drop all bookkeeping."""
        logger.debug(
            "unmanage client=%#x %r destroyed=%s",
            managed.client, managed.instance, destroyed,
        )
        sc = self.screens[managed.screen]
        if managed.icon is not None:
            self._remove_icon(managed)
        if not destroyed and self.conn.window_exists(managed.client):
            origin = self.server.window(managed.client).position_in_root()
            if self.server.window(managed.client).mapped:
                self._ignore_unmaps[managed.client] = (
                    self._ignore_unmaps.get(managed.client, 0) + 1
                )
            self.conn.reparent_window(managed.client, sc.root, origin.x, origin.y)
            if managed.original_border_width:
                self.conn.configure_window(
                    managed.client, border_width=managed.original_border_width
                )
            icccm.set_wm_state(
                self.conn, managed.client, WMState(WITHDRAWN_STATE)
            )
            if not managed.is_internal:
                self.conn.remove_from_save_set(managed.client)
        for obj in managed.decoration.iter_tree():
            if obj.window is not None:
                self.object_windows.pop(obj.window, None)
        for corner in [wid for wid, owner in self.corner_windows.items()
                       if owner is managed]:
            self.corner_windows.pop(corner, None)
        if self.conn.window_exists(managed.frame):
            self.conn.destroy_window(managed.frame)
        self.managed.pop(managed.client, None)
        self.frames.pop(managed.frame, None)
        self._ignore_unmaps.pop(managed.client, None)
        self._update_panner(sc)

    def _screen_of_window(self, window) -> Optional[ScreenContext]:
        root = window.root()
        for sc in self.screens:
            if sc.root == root.id:
                return sc
        return None

    def find_managed(self, wid: int) -> Optional[ManagedWindow]:
        """Resolve any window id (client, frame, or decoration object)
        to its managed window."""
        if wid in self.managed:
            return self.managed[wid]
        if wid in self.frames:
            return self.frames[wid]
        entry = self.object_windows.get(wid)
        if entry is not None:
            return entry[1]
        # Walk up the tree: maybe a descendant of a frame.
        try:
            window = self.server.window(wid)
        except BadWindow:
            return None
        for ancestor in window.ancestors():
            if ancestor.id in self.frames:
                return self.frames[ancestor.id]
            if ancestor.id in self.managed:
                return self.managed[ancestor.id]
        return None

    # ------------------------------------------------------------------
    # Geometry operations
    # ------------------------------------------------------------------

    def frame_rect(self, managed: ManagedWindow) -> Rect:
        x, y, width, height, _ = self.conn.get_geometry(managed.frame)
        return Rect(x, y, width, height)

    def client_desktop_position(self, managed: ManagedWindow) -> Point:
        """The client window's position in desktop coordinates (or
        screen coordinates for sticky windows)."""
        rect = self.frame_rect(managed)
        return Point(
            rect.x + managed.client_offset.x, rect.y + managed.client_offset.y
        )

    def move_managed_to(self, managed: ManagedWindow, x: int, y: int) -> None:
        """Move the frame so its origin is at desktop (x, y), then tell
        the client where it now lives (synthetic ConfigureNotify)."""
        self.conn.move_window(managed.frame, x, y)
        self._send_synthetic_configure(managed)
        self._update_panner(self.screens[managed.screen])

    def move_client_to(self, managed: ManagedWindow, x: int, y: int) -> None:
        """Move so the *client* origin lands at desktop (x, y)."""
        self.move_managed_to(
            managed, x - managed.client_offset.x, y - managed.client_offset.y
        )

    def resize_managed(
        self, managed: ManagedWindow, width: int, height: int
    ) -> None:
        """Resize the client (honouring its size hints) and rebuild the
        decoration layout around the new size."""
        width, height = managed.size_hints.constrain_size(width, height)
        self.conn.resize_window(managed.client, width, height)
        self._relayout(managed, Size(width, height))
        self._send_synthetic_configure(managed)
        sc = self.screens[managed.screen]
        if sc.panner is not None and managed.client == sc.panner.window:
            sc.panner.resized(width, height)
        self._update_panner(sc)

    def _relayout(self, managed: ManagedWindow, client_size: Size) -> None:
        """Recompute the decoration layout for a new client size and
        apply it to the realized object windows."""
        panel = managed.decoration
        if not panel.children:
            self.conn.resize_window(managed.frame, client_size.width,
                                    client_size.height)
            return
        layout = panel.compute_layout({"client": client_size})
        self.conn.resize_window(
            managed.frame, layout.size.width, layout.size.height
        )
        for child in panel.children:
            rect = layout.rect(child.name)
            if child.window is not None:
                self.conn.move_resize_window(
                    child.window, rect.x, rect.y, rect.width, rect.height
                )
            if child.name == "client":
                managed.client_offset = Point(rect.x, rect.y)
        if managed.resize_corners:
            self._reposition_corners(managed)

    def _send_synthetic_configure(self, managed: ManagedWindow) -> None:
        """ICCCM: after the WM moves a client, send it a synthetic
        ConfigureNotify with its position relative to its root — on the
        Virtual Desktop, desktop coordinates (§6.3)."""
        position = self.client_desktop_position(managed)
        _, _, width, height, _ = self.conn.get_geometry(managed.client)
        event = ev.ConfigureNotify(
            window=managed.client,
            configured_window=managed.client,
            x=position.x,
            y=position.y,
            width=width,
            height=height,
            border_width=0,
            override_redirect=False,
        )
        self.conn.send_event(managed.client, event, EventMask.StructureNotify)

    # -- stacking -------------------------------------------------------------

    def raise_managed(self, managed: ManagedWindow) -> None:
        self.conn.raise_window(managed.frame)

    def lower_managed(self, managed: ManagedWindow) -> None:
        self.conn.lower_window(managed.frame)

    def raise_lower_managed(self, managed: ManagedWindow) -> None:
        frame = self.server.window(managed.frame)
        siblings = frame.parent.children
        index = siblings.index(frame)
        obscured = any(
            other.mapped
            and other.outer_rect().intersects(frame.outer_rect())
            for other in siblings[index + 1:]
        )
        if obscured:
            self.raise_managed(managed)
        else:
            self.lower_managed(managed)

    def circulate(self, screen: int, up: bool) -> None:
        sc = self.screens[screen]
        parent = sc.desktop_parent(sticky=False)
        self.conn.circulate_window(
            parent, ev.RAISE_LOWEST if up else ev.LOWER_HIGHEST
        )

    # -- zoom / save ---------------------------------------------------------------

    def save_geometry(self, managed: ManagedWindow) -> None:
        managed.saved_rect = self.frame_rect(managed)

    def restore_geometry(self, managed: ManagedWindow) -> None:
        saved = managed.saved_rect
        if saved is None:
            return
        _, _, cw, ch, _ = self.conn.get_geometry(managed.client)
        self.conn.move_window(managed.frame, saved.x, saved.y)
        delta_w = saved.width - self.frame_rect(managed).width
        delta_h = saved.height - self.frame_rect(managed).height
        self.resize_managed(managed, cw + delta_w, ch + delta_h)
        self.conn.move_window(managed.frame, saved.x, saved.y)
        managed.zoomed = False
        self._send_synthetic_configure(managed)

    def zoom_managed(self, managed: ManagedWindow, axis: str = "both") -> None:
        """Expand to the full screen (or one axis for f.hzoom /
        f.vzoom); zooming again restores."""
        if managed.zoomed:
            self.restore_geometry(managed)
            return
        if managed.saved_rect is None:
            self.save_geometry(managed)
        sc = self.screens[managed.screen]
        offset = sc.view_offset() if not managed.sticky else Point(0, 0)
        frame = self.frame_rect(managed)
        client = self._client_size(managed)
        deco_w = frame.width - client.width
        deco_h = frame.height - client.height
        new_w = sc.screen.width - deco_w - 2 if axis in ("both", "h") else client.width
        new_h = sc.screen.height - deco_h - 2 if axis in ("both", "v") else client.height
        self.resize_managed(managed, new_w, new_h)
        new_x = offset.x if axis in ("both", "h") else frame.x
        new_y = offset.y if axis in ("both", "v") else frame.y
        self.conn.move_window(managed.frame, new_x, new_y)
        managed.zoomed = True
        self._send_synthetic_configure(managed)

    def _client_size(self, managed: ManagedWindow) -> Size:
        _, _, width, height, _ = self.conn.get_geometry(managed.client)
        return Size(width, height)

    # ------------------------------------------------------------------
    # Icons
    # ------------------------------------------------------------------

    def iconify(self, managed: ManagedWindow) -> None:
        if managed.state == ICONIC_STATE:
            return
        sc = self.screens[managed.screen]
        if managed.icon is None:
            managed.icon = self._build_icon(sc, managed)
        self.conn.unmap_window(managed.frame)
        self.conn.map_window(managed.icon.window)
        managed.state = ICONIC_STATE
        icccm.set_wm_state(
            self.conn,
            managed.client,
            WMState(ICONIC_STATE, icon_window=managed.icon.window),
        )
        self._update_panner(sc)

    def deiconify(self, managed: ManagedWindow) -> None:
        if managed.state != ICONIC_STATE:
            return
        sc = self.screens[managed.screen]
        if managed.icon is not None:
            self._remove_icon(managed)
        self.conn.map_window(managed.frame)
        self.conn.raise_window(managed.frame)
        managed.state = NORMAL_STATE
        icccm.set_wm_state(self.conn, managed.client, WMState(NORMAL_STATE))
        self._update_panner(sc)

    def _build_icon(self, sc: ScreenContext, managed: ManagedWindow) -> Icon:
        cctx = client_context(
            sc.ctx, managed.instance, managed.class_name,
            sticky=managed.sticky, shaped=managed.shaped,
        )
        panel_name = icon_panel_name(cctx) or "Xicon"
        icon_name = (
            icccm.get_wm_icon_name(self.conn, managed.client)
            or managed.name
            or managed.instance
        )
        has_image = bool(
            managed.wm_hints.icon_pixmap or managed.wm_hints.icon_window
        )
        panel = build_icon_panel(sc.ctx, panel_name, icon_name, has_image)
        size = panel.compute_layout().size

        holder = next(
            (
                h
                for h in sc.icon_holders
                if h.accepts(managed.class_name, managed.instance)
            ),
            None,
        )
        if holder is not None:
            parent = holder.window
            position = holder.slot_position(len(holder.icons))
        else:
            parent = sc.desktop_parent(managed.sticky)
            if managed.wm_hints.has_icon_position:
                position = Point(managed.wm_hints.icon_x, managed.wm_hints.icon_y)
            else:
                offset = sc.view_offset() if not managed.sticky else Point(0, 0)
                index = sum(
                    1 for m in self.managed.values() if m.icon is not None
                )
                position = Point(
                    offset.x + 8 + (index * (size.width + 8)) % max(
                        size.width + 8, sc.screen.width - size.width
                    ),
                    offset.y + sc.screen.height - size.height - 8,
                )
        window = panel.realize_tree(
            self.conn, parent, Rect(position.x, position.y, size.width, size.height)
        )
        icon = Icon(panel, window, holder=holder, managed=managed)
        if holder is not None:
            holder.add(icon)
        self.icon_windows[window] = icon
        for obj in panel.iter_tree():
            if obj.window is not None:
                self.object_windows[obj.window] = (obj, managed, sc.number)
        return icon

    def _remove_icon(self, managed: ManagedWindow) -> None:
        icon = managed.icon
        if icon is None:
            return
        if icon.holder is not None:
            icon.holder.remove(icon)
        for obj in icon.panel.iter_tree():
            if obj.window is not None:
                self.object_windows.pop(obj.window, None)
        self.icon_windows.pop(icon.window, None)
        if self.conn.window_exists(icon.window):
            self.conn.destroy_window(icon.window)
        managed.icon = None

    # ------------------------------------------------------------------
    # Sticky windows (§6.2)
    # ------------------------------------------------------------------

    def stick(self, managed: ManagedWindow) -> None:
        if managed.sticky:
            return
        sc = self.screens[managed.screen]
        managed.sticky = True
        if sc.vdesks:
            vdesk = sc.vdesks[managed.desktop]
            rect = self.frame_rect(managed)
            view = vdesk.desktop_to_view(rect.x, rect.y)
            self.conn.reparent_window(managed.frame, sc.root, view.x, view.y)
        self._set_swm_root(managed)
        self._update_panner(sc)

    def unstick(self, managed: ManagedWindow) -> None:
        if not managed.sticky:
            return
        sc = self.screens[managed.screen]
        managed.sticky = False
        if sc.vdesk is not None:
            managed.desktop = sc.current_desktop
            rect = self.frame_rect(managed)
            desk = sc.vdesk.view_to_desktop(rect.x, rect.y)
            self.conn.reparent_window(
                managed.frame, sc.vdesk.window, desk.x, desk.y
            )
        self._set_swm_root(managed)
        self._update_panner(sc)

    def _set_swm_root(self, managed: ManagedWindow) -> None:
        """Maintain the SWM_ROOT property on the client (§6.3): updated
        whenever the client's effective root changes."""
        sc = self.screens[managed.screen]
        if sc.vdesks and not managed.sticky:
            root = sc.vdesks[managed.desktop].window
        else:
            root = sc.root
        self.conn.change_property(
            managed.client, SWM_ROOT_PROPERTY, "WINDOW", 32, [root]
        )

    # ------------------------------------------------------------------
    # Virtual desktop operations
    # ------------------------------------------------------------------

    def pan_to(self, screen: int, x: int, y: int) -> None:
        sc = self.screens[screen]
        if sc.vdesk is None:
            return
        sc.vdesk.pan_to(x, y)
        self._update_panner(sc)

    def pan_by(self, screen: int, dx: int, dy: int) -> None:
        sc = self.screens[screen]
        if sc.vdesk is None:
            return
        sc.vdesk.pan_by(dx, dy)
        self._update_panner(sc)

    # -- multiple desktops (extension; suggested by §6.3) ---------------------

    def switch_desktop(self, screen: int, index: int) -> None:
        """Make desktop *index* current: unmap the old desktop window,
        map the new one.  Sticky windows (children of the real root)
        stay visible throughout."""
        sc = self.screens[screen]
        if not sc.vdesks:
            return
        index %= len(sc.vdesks)
        if index == sc.current_desktop:
            return
        old = sc.vdesk
        sc.current_desktop = index
        new = sc.vdesk
        self.conn.unmap_window(old.window)
        self.conn.map_window(new.window)
        self.conn.lower_window(new.window)
        if sc.panner is not None:
            sc.panner.vdesk = new
        if sc.scrollbars is not None:
            sc.scrollbars.vdesk = new
        self._update_panner(sc)

    def send_to_desktop(self, managed: ManagedWindow, index: int) -> None:
        """Move a window to another desktop, preserving its desktop
        coordinates."""
        sc = self.screens[managed.screen]
        if not sc.vdesks or managed.sticky:
            return
        index %= len(sc.vdesks)
        if index == managed.desktop:
            return
        rect = self.frame_rect(managed)
        self.conn.reparent_window(
            managed.frame, sc.vdesks[index].window, rect.x, rect.y
        )
        managed.desktop = index
        self.conn.change_property(
            managed.client,
            SWM_ROOT_PROPERTY,
            "WINDOW",
            32,
            [sc.vdesks[index].window],
        )
        self._update_panner(sc)

    def warp_pointer_by(self, dx: int, dy: int) -> None:
        self.conn.warp_pointer(NONE, dx, dy)

    def warp_to_managed(self, managed: ManagedWindow) -> None:
        """Warp the pointer to a window, panning the desktop so it is
        visible first if necessary."""
        sc = self.screens[managed.screen]
        rect = self.frame_rect(managed)
        if sc.vdesk is not None and not managed.sticky:
            view = sc.vdesk.view_rect()
            if not view.contains_rect(rect) and not view.intersects(rect):
                sc.vdesk.center_view_on(
                    rect.x + rect.width // 2, rect.y + rect.height // 2
                )
                self._update_panner(sc)
        self.conn.warp_pointer(managed.frame, 4, 4)

    def _panner_windows(self, sc: ScreenContext) -> List[Tuple[Rect, ManagedWindow]]:
        """Desktop-resident windows for the panner miniature display."""
        out = []
        for managed in self.managed.values():
            if managed.screen != sc.number or managed.sticky:
                continue
            if managed.state != NORMAL_STATE:
                continue
            if managed.desktop != sc.current_desktop:
                continue
            out.append((self.frame_rect(managed), managed))
        return out

    def _update_panner(self, sc: ScreenContext) -> None:
        # Miniatures are computed lazily from live geometry; nothing to
        # push, but hooks (tests, renderers) may override this.
        pass

    # ------------------------------------------------------------------
    # Focus / lifecycle per client
    # ------------------------------------------------------------------

    WM_TAKE_FOCUS = "WM_TAKE_FOCUS"

    def focus_managed(self, managed: ManagedWindow) -> None:
        """ICCCM focus: clients speaking WM_TAKE_FOCUS get the protocol
        message (the "globally active" input model); everyone else gets
        SetInputFocus directly."""
        protocols = icccm.get_wm_protocols(self.conn, managed.client)
        if self.WM_TAKE_FOCUS in protocols:
            message = ev.ClientMessage(
                window=managed.client,
                message_type=self.conn.intern_atom(WM_PROTOCOLS),
                data=(self.conn.intern_atom(self.WM_TAKE_FOCUS),
                      self.server.timestamp),
            )
            self.conn.send_event(managed.client, message)
            return
        self.conn.set_input_focus(managed.client)

    def delete_client(self, managed: ManagedWindow) -> None:
        """Close politely via WM_DELETE_WINDOW when the client speaks
        the protocol; destroy otherwise."""
        protocols = icccm.get_wm_protocols(self.conn, managed.client)
        if WM_DELETE_WINDOW in protocols:
            message = ev.ClientMessage(
                window=managed.client,
                message_type=self.conn.intern_atom(WM_PROTOCOLS),
                data=(self.conn.intern_atom(WM_DELETE_WINDOW),),
            )
            self.conn.send_event(managed.client, message)
        else:
            self.destroy_client(managed)

    def destroy_client(self, managed: ManagedWindow) -> None:
        self.conn.destroy_window(managed.client)

    # ------------------------------------------------------------------
    # WM lifecycle
    # ------------------------------------------------------------------

    def quit(self) -> None:
        """Shut down: release every client, then disconnect."""
        logger.info("swm shutting down (%d managed clients)",
                    sum(1 for m in self.managed.values() if not m.is_internal))
        self.running = False
        for managed in list(self.managed.values()):
            if not managed.is_internal:
                self.unmanage(managed)
        self.conn.close()

    def restart(self) -> None:
        """Re-read configuration and re-manage everything (f.restart)."""
        logger.info("swm restarting")
        clients = [
            m.client for m in self.managed.values() if not m.is_internal
        ]
        for managed in list(self.managed.values()):
            self.unmanage(managed)
        for sc in self.screens:
            for holder in sc.icon_holders:
                if self.conn.window_exists(holder.window):
                    self.conn.destroy_window(holder.window)
            for icon in sc.root_icons.values():
                if self.conn.window_exists(icon.window):
                    self.conn.destroy_window(icon.window)
            if sc.panner is not None and self.conn.window_exists(sc.panner.window):
                self.conn.destroy_window(sc.panner.window)
            if sc.scrollbars is not None:
                for bar in (sc.scrollbars.vertical, sc.scrollbars.horizontal):
                    if self.conn.window_exists(bar):
                        self.conn.destroy_window(bar)
            for vdesk in sc.vdesks:
                if self.conn.window_exists(vdesk.window):
                    self.conn.destroy_window(vdesk.window)
        self.object_windows.clear()
        self.icon_windows.clear()
        self.corner_windows.clear()
        self.screens = []
        for number in range(len(self.server.screens)):
            sc = ScreenContext(self, number)
            self.screens.append(sc)
            self._setup_virtual_desktop(sc)
            self._setup_icon_holders(sc)
            self._setup_root_panels(sc)
            self._setup_root_icons(sc)
            self._setup_panner(sc)
            self._setup_scrollbars(sc)
        for client in clients:
            if self.conn.window_exists(client):
                self.manage(client)

    def refresh(self, screen: int) -> None:
        """Force a repaint by briefly mapping a screen-sized window."""
        sc = self.screens[screen]
        cover = self.conn.create_window(
            sc.root, 0, 0, sc.screen.width, sc.screen.height,
            override_redirect=True,
        )
        self.conn.map_window(cover)
        self.conn.destroy_window(cover)

    def beep(self) -> None:
        self.beeps += 1

    def exec_command(self, command: str) -> None:
        """f.exec: launch a client on the local host."""
        import shlex

        from ..clients import launch_command

        app = launch_command(self.server, shlex.split(command))
        self.launched.append(app)
        self.process_pending()

    def save_places(self) -> str:
        """f.places: write the restart script (§7)."""
        from ..session.places import write_places

        return write_places(self, self.places_path)

    # ------------------------------------------------------------------
    # Menus
    # ------------------------------------------------------------------

    def popup_menu(
        self,
        name: str,
        screen: int,
        pointer: Tuple[int, int],
        context: Optional[ManagedWindow],
    ) -> None:
        if self.active_menu is not None:
            self._close_menu()
        sc = self.screens[screen]
        menu = Menu(sc.ctx, name)
        menu.popup(self.conn, sc.root, pointer[0], pointer[1])
        self.active_menu = (menu, screen, context)

    def _close_menu(self) -> None:
        if self.active_menu is None:
            return
        menu, _, _ = self.active_menu
        menu.popdown(self.conn)
        self.active_menu = None

    # ------------------------------------------------------------------
    # Function execution
    # ------------------------------------------------------------------

    def execute(
        self,
        call,
        screen: int = 0,
        context: Optional[ManagedWindow] = None,
        pointer: Optional[Tuple[int, int]] = None,
        event: Optional[ev.Event] = None,
    ) -> None:
        """Run one function call, resolving its invocation mode (§5)."""
        spec = lookup_function(call.name)
        if pointer is None:
            pointer = (self.server.pointer.x, self.server.pointer.y)
        if not spec.needs_window:
            spec.handler(self, Invocation(call, screen, context, pointer, event))
            return
        argument = call.argument if spec.window_from_arg else None
        if argument is None:
            if context is not None:
                spec.handler(
                    self, Invocation(call, screen, context, pointer, event)
                )
            else:
                self._begin_selection(call, multiple=False, screen=screen)
            return
        if argument == "multiple":
            self._begin_selection(call, multiple=True, screen=screen)
            return
        if argument == "#$":
            managed = self._managed_under_pointer()
            if managed is None:
                self.beep()
                return
            spec.handler(self, Invocation(call, screen, managed, pointer, event))
            return
        if argument.startswith("#"):
            try:
                wid = int(argument[1:], 0)
            except ValueError:
                raise FunctionError(f"bad window id {argument!r}") from None
            managed = self.find_managed(wid)
            if managed is None:
                self.beep()
                return
            spec.handler(self, Invocation(call, screen, managed, pointer, event))
            return
        # Class / instance match: all windows whose class matches.
        targets = [
            m
            for m in list(self.managed.values())
            if argument in (m.class_name, m.instance)
        ]
        if not targets:
            self.beep()
            return
        for managed in targets:
            spec.handler(self, Invocation(call, screen, managed, pointer, event))

    def execute_string(self, text: str, screen: int = 0) -> None:
        """Run a command string ('f.raise') as swmcmd would."""
        from .swmcmd import parse_command

        self.execute(parse_command(text), screen=screen)

    def _managed_under_pointer(self) -> Optional[ManagedWindow]:
        pointer_window = self.server.pointer.window
        if pointer_window is None:
            return None
        return self.find_managed(pointer_window.id)

    def _begin_selection(self, call, multiple: bool, screen: int) -> None:
        """Prompt the user to pick window(s): the question-mark pointer."""
        self.selection = Selection(call=call, multiple=multiple, screen=screen)
        sc = self.screens[screen]
        self.conn.grab_pointer(
            sc.root,
            EventMask.ButtonPress | EventMask.ButtonRelease,
            owner_events=False,
            cursor="question_arrow",
        )

    def _end_selection(self) -> None:
        self.selection = None
        self.conn.ungrab_pointer()

    def _selection_click(self, event: ev.ButtonPress) -> None:
        selection = self.selection
        assert selection is not None
        managed = self._managed_under_pointer()
        if managed is None:
            # Clicking the root ends the prompt (also the single-shot
            # miss case).
            self._end_selection()
            self.beep()
            return
        spec = lookup_function(selection.call.name)
        from .bindings import FunctionCall

        bare = FunctionCall(selection.call.name, None)
        spec.handler(
            self,
            Invocation(
                bare,
                selection.screen,
                managed,
                (event.x_root, event.y_root),
                event,
            ),
        )
        if not selection.multiple:
            self._end_selection()

    # ------------------------------------------------------------------
    # Interactive move / resize
    # ------------------------------------------------------------------

    def begin_move(
        self, managed: ManagedWindow, pointer: Tuple[int, int]
    ) -> None:
        self.drag = Drag(
            kind="move",
            managed=managed,
            start_pointer=pointer,
            start_rect=self.frame_rect(managed),
        )
        sc = self.screens[managed.screen]
        self.conn.grab_pointer(
            sc.root,
            EventMask.ButtonPress
            | EventMask.ButtonRelease
            | EventMask.PointerMotion,
            cursor="fleur",
        )

    def begin_resize(
        self, managed: ManagedWindow, pointer: Tuple[int, int]
    ) -> None:
        self.drag = Drag(
            kind="resize",
            managed=managed,
            start_pointer=pointer,
            start_rect=self.frame_rect(managed),
        )
        sc = self.screens[managed.screen]
        self.conn.grab_pointer(
            sc.root,
            EventMask.ButtonPress
            | EventMask.ButtonRelease
            | EventMask.PointerMotion,
            cursor="sizing",
        )

    def _drag_motion(self, event: ev.MotionNotify) -> None:
        drag = self.drag
        if drag is None:
            return
        dx = event.x_root - drag.start_pointer[0]
        dy = event.y_root - drag.start_pointer[1]
        if drag.kind == "move":
            drag.current = drag.start_rect.moved_to(
                drag.start_rect.x + dx, drag.start_rect.y + dy
            )
            # Opaque move (swm*opaqueMove: True): drag the window
            # itself instead of an outline.
            sc_opaque = self.screens[drag.managed.screen]
            if sc_opaque.ctx.get_bool([], "opaqueMove", False):
                self.conn.move_window(
                    drag.managed.frame, drag.current.x, drag.current.y
                )
            # Dragging into the panner continues the move as a
            # miniature drag (§6.1).
            sc = self.screens[drag.managed.screen]
            if sc.panner is not None:
                panner_managed = self.managed.get(sc.panner.window)
                if panner_managed is not None:
                    panner_rect = self.frame_rect(panner_managed)
                    drag.in_panner = panner_rect.contains(
                        event.x_root, event.y_root
                    )
        else:
            drag.current = drag.start_rect.resized(
                max(8, drag.start_rect.width + dx),
                max(8, drag.start_rect.height + dy),
            )

    def _drag_release(self, event: ev.ButtonRelease) -> None:
        drag = self.drag
        if drag is None:
            return
        self.drag = None
        self.conn.ungrab_pointer()
        managed = drag.managed
        sc = self.screens[managed.screen]
        dx = event.x_root - drag.start_pointer[0]
        dy = event.y_root - drag.start_pointer[1]
        if drag.kind == "move":
            if drag.in_panner and sc.panner is not None:
                # Dropped onto the panner: place at the miniature's
                # desktop position.
                panner_managed = self.managed.get(sc.panner.window)
                panner_rect = self.frame_rect(panner_managed)
                local = Point(
                    event.x_root - panner_rect.x - managed.client_offset.x,
                    event.y_root - panner_rect.y - managed.client_offset.y,
                )
                desk = sc.panner.panner_to_desktop(max(0, local.x), max(0, local.y))
                self.move_managed_to(managed, desk.x, desk.y)
            else:
                target = Point(drag.start_rect.x + dx, drag.start_rect.y + dy)
                self.move_managed_to(managed, target.x, target.y)
        else:
            new_width = drag.start_rect.width + dx
            new_height = drag.start_rect.height + dy
            client = self._client_size(managed)
            deco_w = drag.start_rect.width - client.width
            deco_h = drag.start_rect.height - client.height
            self.resize_managed(
                managed,
                max(1, new_width - deco_w),
                max(1, new_height - deco_h),
            )

    # ------------------------------------------------------------------
    # Dynamic object changes (§4.2, §4.4)
    # ------------------------------------------------------------------

    def _find_object(
        self, name: str, context: Optional[ManagedWindow]
    ) -> Optional[SwmObject]:
        if context is not None:
            obj = context.decoration.find(name)
            if obj is not None:
                return obj
            if context.icon is not None:
                obj = context.icon.panel.find(name)
                if obj is not None:
                    return obj
        for obj, _, _ in self.object_windows.values():
            if obj.name == name:
                return obj
        return None

    def set_button_image(
        self, name: str, bitmap_name: str, context: Optional[ManagedWindow] = None
    ) -> None:
        obj = self._find_object(name, context)
        if not isinstance(obj, Button):
            raise FunctionError(f"no button named {name!r}")
        obj.set_image(bitmap_name)
        obj.update_label(self.conn)

    def set_button_label(
        self, name: str, text: str, context: Optional[ManagedWindow] = None
    ) -> None:
        obj = self._find_object(name, context)
        if not isinstance(obj, (Button, TextObject)):
            raise FunctionError(f"no button/text named {name!r}")
        if isinstance(obj, Button):
            obj.set_label(text)
        else:
            obj.set_text(text)
        obj.update_label(self.conn)

    def set_object_bindings(
        self, name: str, bindings: str, context: Optional[ManagedWindow] = None
    ) -> None:
        obj = self._find_object(name, context)
        if obj is None:
            raise FunctionError(f"no object named {name!r}")
        obj.set_bindings(bindings)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_MapRequest(self, event: ev.MapRequest) -> None:
        client = event.requestor
        managed = self.managed.get(client)
        if managed is None:
            self.manage(client)
        elif managed.state == ICONIC_STATE:
            self.deiconify(managed)
        else:
            self.conn.map_window(client)
            self.conn.map_window(managed.frame)

    def _on_ConfigureRequest(self, event: ev.ConfigureRequest) -> None:
        client = event.window
        managed = self.managed.get(client)
        if managed is None:
            # Unmanaged window: pass the request through.
            self.conn.configure_window(
                client,
                **self._configure_kwargs(event),
            )
            return
        if event.value_mask & (ev.CWWidth | ev.CWHeight):
            _, _, width, height, _ = self.conn.get_geometry(client)
            new_w = event.width if event.value_mask & ev.CWWidth else width
            new_h = event.height if event.value_mask & ev.CWHeight else height
            self.resize_managed(managed, new_w, new_h)
        if event.value_mask & (ev.CWX | ev.CWY):
            position = self.client_desktop_position(managed)
            new_x = event.x if event.value_mask & ev.CWX else position.x
            new_y = event.y if event.value_mask & ev.CWY else position.y
            self.move_client_to(managed, new_x, new_y)
        if event.value_mask & ev.CWStackMode and event.sibling == NONE:
            if event.stack_mode == ev.ABOVE:
                self.raise_managed(managed)
            elif event.stack_mode == ev.BELOW:
                self.lower_managed(managed)
        self._send_synthetic_configure(managed)

    @staticmethod
    def _configure_kwargs(event: ev.ConfigureRequest) -> dict:
        kwargs = {}
        if event.value_mask & ev.CWX:
            kwargs["x"] = event.x
        if event.value_mask & ev.CWY:
            kwargs["y"] = event.y
        if event.value_mask & ev.CWWidth:
            kwargs["width"] = event.width
        if event.value_mask & ev.CWHeight:
            kwargs["height"] = event.height
        if event.value_mask & ev.CWBorderWidth:
            kwargs["border_width"] = event.border_width
        if event.value_mask & ev.CWStackMode:
            kwargs["stack_mode"] = event.stack_mode
            if event.value_mask & ev.CWSibling:
                kwargs["sibling"] = event.sibling
        return kwargs

    def _on_CirculateRequest(self, event: ev.CirculateRequest) -> None:
        managed = self.managed.get(event.window)
        if managed is not None:
            if event.place == ev.PLACE_ON_TOP:
                self.raise_managed(managed)
            else:
                self.lower_managed(managed)
            return
        window = event.window
        if self.conn.window_exists(window):
            if event.place == ev.PLACE_ON_TOP:
                self.conn.raise_window(window)
            else:
                self.conn.lower_window(window)

    def _on_DestroyNotify(self, event: ev.DestroyNotify) -> None:
        managed = self.managed.get(event.destroyed_window)
        if managed is not None:
            self.unmanage(managed, destroyed=True)

    def _on_UnmapNotify(self, event: ev.UnmapNotify) -> None:
        client = event.unmapped_window
        managed = self.managed.get(client)
        if managed is None:
            return
        pending = self._ignore_unmaps.get(client, 0)
        if pending > 0:
            self._ignore_unmaps[client] = pending - 1
            return
        # ICCCM withdrawal: the client unmapped itself.
        self.unmanage(managed)

    def _on_PropertyNotify(self, event: ev.PropertyNotify) -> None:
        atom_name = self.server.atoms.name(event.atom)
        # swmcmd commands arrive as a root property (§4.3).
        if atom_name == COMMAND_PROPERTY and event.state == ev.PROPERTY_NEW_VALUE:
            for sc in self.screens:
                if sc.root == event.window:
                    self._handle_swmcmd(sc)
                    return
        managed = self.managed.get(event.window)
        if managed is None:
            return
        if atom_name == "WM_NAME":
            managed.name = (
                icccm.get_wm_name(self.conn, managed.client) or managed.name
            )
            name_obj = managed.decoration.find("name")
            if isinstance(name_obj, Button):
                name_obj.set_label(managed.name)
                name_obj.update_label(self.conn)
            elif isinstance(name_obj, TextObject):
                name_obj.set_text(managed.name)
                name_obj.update_label(self.conn)
        elif atom_name == "WM_ICON_NAME" and managed.icon is not None:
            icon_name = icccm.get_wm_icon_name(self.conn, managed.client) or ""
            obj = managed.icon.panel.find("iconname")
            if isinstance(obj, Button):
                obj.set_label(icon_name)
                obj.update_label(self.conn)
            elif isinstance(obj, TextObject):
                obj.set_text(icon_name)
                obj.update_label(self.conn)
        elif atom_name == "WM_NORMAL_HINTS":
            managed.size_hints = (
                icccm.get_wm_normal_hints(self.conn, managed.client)
                or managed.size_hints
            )
        elif atom_name == "WM_HINTS":
            managed.wm_hints = (
                icccm.get_wm_hints(self.conn, managed.client)
                or managed.wm_hints
            )

    def _handle_swmcmd(self, sc: ScreenContext) -> None:
        text = self.conn.get_string_property(sc.root, COMMAND_PROPERTY)
        if not text:
            return
        self.conn.delete_property(sc.root, COMMAND_PROPERTY)
        try:
            calls = parse_command_stream(text)
        except SwmCmdError as exc:
            logger.warning("swmcmd: rejected command text: %s", exc)
            self.beep()
            return
        for call in calls:
            try:
                self.execute(call, screen=sc.number)
            except FunctionError as exc:
                logger.warning("swmcmd: %s", exc)
                self.beep()

    def _on_ClientMessage(self, event: ev.ClientMessage) -> None:
        atom_name = self.server.atoms.name(event.message_type)
        if atom_name == WM_CHANGE_STATE:
            managed = self.managed.get(event.window)
            if managed is None:
                # The message arrives on the root per ICCCM; the window
                # is in data or the event window names the client.
                managed = self.find_managed(event.window)
            if managed is not None and event.data and event.data[0] == ICONIC_STATE:
                self.iconify(managed)

    def _on_ShapeNotify(self, event: ev.ShapeNotify) -> None:
        managed = self.managed.get(event.window)
        if managed is None:
            return
        managed.shaped = event.shaped
        if not managed.decoration.children:
            return
        plan = DecorationPlan(
            panel=managed.decoration,
            panel_name=managed.decoration_name,
            frame_size=Size(*self.frame_rect(managed).size),
            client_rect=Rect(
                managed.client_offset.x,
                managed.client_offset.y,
                self._client_size(managed).width,
                self._client_size(managed).height,
            ),
            resize_corners=managed.resize_corners,
        )
        shape = frame_shape_for(plan, self.server.shape_query(managed.client))
        if shape is not None:
            self.conn.shape_window(
                managed.frame, shape.mask, shape.x_offset, shape.y_offset
            )

    def _on_ButtonPress(self, event: ev.ButtonPress) -> None:
        if self.selection is not None:
            self._selection_click(event)
            return
        if self.active_menu is not None:
            menu, screen, context = self.active_menu
            item = menu.item_at(event.window)
            self._close_menu()
            if item is not None:
                for call in item.functions:
                    self.execute(
                        call,
                        screen=screen,
                        context=context,
                        pointer=(event.x_root, event.y_root),
                        event=event,
                    )
                return
            # fall through: a press outside just closed the menu
        # Scrollbar troughs pan on click (§6).
        for sc in self.screens:
            if sc.scrollbars is not None and sc.scrollbars.owns(event.window):
                sc.scrollbars.click(event.window, event.x, event.y)
                self._update_panner(sc)
                return
        # Resize corners start an interactive resize directly.
        corner_owner = self.corner_windows.get(event.window)
        if corner_owner is not None:
            self.begin_resize(corner_owner, (event.x_root, event.y_root))
            return
        # The panner handles its own clicks.
        panner_hit = self._panner_for_window(event.window)
        if panner_hit is not None:
            panner, sc = panner_hit
            local = self._panner_local(panner, event)
            panner.press(event.button, local.x, local.y)
            return
        entry = self.object_windows.get(event.window)
        if entry is not None:
            obj, managed, screen = entry
            binding = self._binding_for_object(
                obj, event.button, event.state, release=False
            )
            if binding is not None:
                for call in binding.functions:
                    self.execute(
                        call,
                        screen=screen,
                        context=managed,
                        pointer=(event.x_root, event.y_root),
                        event=event,
                    )
                return
        # Root / desktop background bindings.
        sc = self._screen_for_root_event(event.window)
        if sc is not None:
            binding = bindings_for_button(
                sc.root_bindings, event.button, event.state
            )
            if binding is not None:
                for call in binding.functions:
                    self.execute(
                        call,
                        screen=sc.number,
                        context=None,
                        pointer=(event.x_root, event.y_root),
                        event=event,
                    )

    def _on_ButtonRelease(self, event: ev.ButtonRelease) -> None:
        if self.drag is not None:
            self._drag_release(event)
            return
        panner_hit = self._panner_for_window(event.window)
        if panner_hit is None and self._any_panner_drag() is not None:
            panner = self._any_panner_drag()
            local = self._panner_local_root(panner, event.x_root, event.y_root)
            panner.release(local.x, local.y)
            return
        if panner_hit is not None:
            panner, sc = panner_hit
            if panner.drag is not None:
                local = self._panner_local(panner, event)
                panner.release(local.x, local.y)

    def _on_MotionNotify(self, event: ev.MotionNotify) -> None:
        if self.drag is not None:
            self._drag_motion(event)
            return
        panner = self._any_panner_drag()
        if panner is not None:
            local = self._panner_local_root(panner, event.x_root, event.y_root)
            panner.motion(local.x, local.y)
            return
        # <BtnNMotion> / <Motion> bindings on objects (drag-to-move).
        entry = self.object_windows.get(event.window)
        if entry is not None:
            obj, managed, screen = entry
            binding = bindings_for_motion(obj.bindings, event.state)
            if binding is not None:
                for call in binding.functions:
                    self.execute(
                        call,
                        screen=screen,
                        context=managed,
                        pointer=(event.x_root, event.y_root),
                        event=event,
                    )

    def _on_EnterNotify(self, event: ev.EnterNotify) -> None:
        self._crossing_binding(event, "Enter")

    def _on_LeaveNotify(self, event: ev.LeaveNotify) -> None:
        self._crossing_binding(event, "Leave")

    def _crossing_binding(self, event, kind: str) -> None:
        """Objects can bind <Enter>/<Leave> (e.g. focus-follows-mouse:
        swm*panel.<deco>.bindings: <Enter> : f.focus)."""
        entry = self.object_windows.get(event.window)
        if entry is None:
            return
        obj, managed, screen = entry
        for binding in obj.bindings:
            if binding.event == kind:
                for call in binding.functions:
                    self.execute(
                        call,
                        screen=screen,
                        context=managed,
                        pointer=(event.x_root, event.y_root),
                        event=event,
                    )
                return

    def _on_KeyPress(self, event: ev.KeyPress) -> None:
        entry = self.object_windows.get(event.window)
        if entry is not None:
            obj, managed, screen = entry
            binding = bindings_for_key(obj.bindings, event.keysym, event.state)
            if binding is None:
                binding = self._parent_key_binding(obj, event)
            if binding is not None:
                for call in binding.functions:
                    self.execute(
                        call,
                        screen=screen,
                        context=managed,
                        pointer=(event.x_root, event.y_root),
                        event=event,
                    )
                return
        sc = self._screen_for_root_event(event.window)
        if sc is not None:
            binding = bindings_for_key(sc.root_bindings, event.keysym, event.state)
            if binding is not None:
                for call in binding.functions:
                    self.execute(call, screen=sc.number, event=event,
                                 pointer=(event.x_root, event.y_root))

    # -- event helper plumbing -------------------------------------------------

    def _binding_for_object(
        self, obj: SwmObject, button: int, state: int, release: bool
    ) -> Optional[Binding]:
        current: Optional[SwmObject] = obj
        while current is not None:
            binding = bindings_for_button(
                current.bindings, button, state, release
            )
            if binding is not None:
                return binding
            current = current.parent
        return None

    def _parent_key_binding(self, obj: SwmObject, event: ev.KeyPress):
        current = obj.parent
        while current is not None:
            binding = bindings_for_key(current.bindings, event.keysym, event.state)
            if binding is not None:
                return binding
            current = current.parent
        return None

    def _screen_for_root_event(self, window: int) -> Optional[ScreenContext]:
        for sc in self.screens:
            if window == sc.root:
                return sc
            if sc.vdesk is not None and window == sc.vdesk.window:
                return sc
        return None

    def _panner_for_window(
        self, window: int
    ) -> Optional[Tuple[Panner, ScreenContext]]:
        for sc in self.screens:
            if sc.panner is not None and window == sc.panner.window:
                return sc.panner, sc
        return None

    def _any_panner_drag(self) -> Optional[Panner]:
        for sc in self.screens:
            if sc.panner is not None and sc.panner.drag is not None:
                return sc.panner
        return None

    def _panner_local(self, panner: Panner, event) -> Point:
        return Point(event.x, event.y)

    def _panner_local_root(self, panner: Panner, x_root: int, y_root: int) -> Point:
        x, y, _ = self.conn.translate_coordinates(
            panner.vdesk.screen.root.id, panner.window, x_root, y_root
        )
        return Point(x, y)
