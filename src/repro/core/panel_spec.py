"""Panel definition parsing (§4.1 of the paper).

A panel definition resource value is a flat list of object triples::

    swm*panel.openLook: \\
        button pulldown +0+0 \\
        button name      +C+0 \\
        button nail      -0+0 \\
        panel  client    +0+1

Each triple is ``object-type object-name position``: the type is one of
the four swm object types, the name references the subcomponent, and the
position is a geometry string whose X/Y components map to the column and
row within the panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..xserver.geometry import CENTER, parse_panel_position

VALID_OBJECT_TYPES = ("panel", "button", "text", "menu")


class PanelSpecError(ValueError):
    """A malformed panel definition."""


@dataclass(frozen=True)
class ObjectSpec:
    """One object inside a panel definition."""

    type: str
    name: str
    col: object  # int or CENTER
    row: object
    col_from_right: bool = False
    row_from_bottom: bool = False


def parse_panel_spec(value: str) -> List[ObjectSpec]:
    """Parse a panel definition value into its object specs."""
    tokens = value.split()
    if len(tokens) % 3 != 0:
        raise PanelSpecError(
            f"panel definition is not object-type/name/position triples: {value!r}"
        )
    specs: List[ObjectSpec] = []
    seen = set()
    for index in range(0, len(tokens), 3):
        obj_type, obj_name, position = tokens[index:index + 3]
        if obj_type not in VALID_OBJECT_TYPES:
            raise PanelSpecError(f"unknown object type {obj_type!r}")
        if obj_name in seen:
            raise PanelSpecError(f"duplicate object name {obj_name!r}")
        seen.add(obj_name)
        try:
            col, row, col_neg, row_neg = parse_panel_position(position)
        except ValueError as exc:
            raise PanelSpecError(str(exc)) from None
        specs.append(
            ObjectSpec(obj_type, obj_name, col, row, col_neg, row_neg)
        )
    return specs


def has_client_slot(specs: List[ObjectSpec]) -> bool:
    """Decoration panels must contain an interior panel named
    ``client`` where the client window is placed."""
    return any(spec.type == "panel" and spec.name == "client" for spec in specs)
