"""The template files shipped with swm (§3).

"Several template files are supplied with swm to get the user up and
running quickly ... Among the template files are emulations for both
the OPEN LOOK and OSF/Motif window managers."  Each template is a
resource-text string; load one into the database and optionally
override pieces of it.
"""

from __future__ import annotations

from typing import Dict

from ..xrm.database import ResourceDatabase

#: The OpenLook+ template, including the exact decoration panel from
#: Figure 1 of the paper and the Xicon panel from §4.1.2.
OPENLOOK_TEMPLATE = """
! OpenLook+ template -- the paper's Figure 1 decoration.
Swm*panel.openLook: \\
    button pulldown +0+0 \\
    button name +C+0 \\
    button nail -0+0 \\
    panel client +0+1
Swm*panel.openLook.resizeCorners: True

Swm*decoration: openLook
Swm*iconPanel: Xicon

! Default icon appearance (4.1.2).
Swm*panel.Xicon: \\
    button iconimage +C+0 \\
    button iconname +C+1
Swm*button.iconimage.image: xlogo32

! Object appearance.
Swm*button.pulldown.image: menu12
Swm*button.nail.image: pushpin
Swm*background: bisque
Swm*foreground: black
Swm*font: 8x13

! Behaviour.
Swm*button.pulldown.bindings: <Btn1> : f.menu(windowops)
Swm*button.name.bindings: \\
    <Btn1> : f.raise \\
    <Btn2> : f.move \\
    <Btn3> : f.lower
Swm*button.nail.bindings: <Btn1> : f.togglestick
Swm*button.iconimage.bindings: <Btn1> : f.deiconify
Swm*button.iconname.bindings: <Btn1> : f.deiconify
Swm*panel.openLook.bindings: \\
    <Btn1> : f.raise \\
    <Btn3> : f.resize

Swm*menu.windowops: \\
    Raise=f.raise; Lower=f.lower; Move=f.move; Resize=f.resize; \\
    Iconify=f.iconify; Zoom=f.save f.zoom; Stick=f.togglestick; \\
    Quit=f.quit

! Shaped clients get undecorated shaped frames (5.1).
Swm*shaped*decoration: shapeit
Swm*panel.shapeit: panel client +0+0
Swm*panel.shapeit.shape: True

! Sticky clients (6.2).
Swm*xclock.XClock.sticky: True
Swm*xbiff.XBiff.sticky: True
Swm*sticky*decoration: stickyPanel
Swm*panel.stickyPanel: \\
    button name +C+0 \\
    panel client +0+1
"""

#: A Motif-flavoured emulation: full titlebar button set, no nail.
MOTIF_TEMPLATE = """
! Motif (mwm) emulation template.
Swm*panel.motif: \\
    button menub +0+0 \\
    button name +C+0 \\
    button minimize +1+0 \\
    button maximize -0+0 \\
    panel client +0+1
Swm*decoration: motif
Swm*iconPanel: motifIcon

Swm*panel.motifIcon: \\
    button iconimage +C+0 \\
    text iconname +C+1
Swm*button.iconimage.image: xlogo32

Swm*button.menub.image: menu12
Swm*button.minimize.image: iconify8
Swm*button.maximize.image: zoom8
Swm*background: slate grey
Swm*foreground: white
Swm*font: 8x13bold

Swm*button.menub.bindings: <Btn1> : f.menu(windowmenu)
Swm*button.name.bindings: \\
    <Btn1> : f.raise \\
    <Btn2> : f.move
Swm*button.minimize.bindings: <Btn1> : f.iconify
Swm*button.maximize.bindings: <Btn1> : f.save f.zoom
Swm*button.iconimage.bindings: <Btn1> : f.deiconify
Swm*text.iconname.bindings: <Btn1> : f.deiconify
Swm*panel.motif.bindings: \\
    <Btn1> : f.raise \\
    Meta<Btn1> : f.move

Swm*menu.windowmenu: \\
    Restore=f.deiconify; Move=f.move; Size=f.resize; \\
    Minimize=f.iconify; Maximize=f.save f.zoom; \\
    Lower=f.lower; Close=f.delete

Swm*shaped*decoration: shapeit
Swm*panel.shapeit: panel client +0+0
Swm*panel.shapeit.shape: True
"""

#: The built-in default loaded when no swm resources are specified.
DEFAULT_TEMPLATE = """
! Default configuration: a plain titlebar.
Swm*panel.default: \\
    button name +C+0 \\
    panel client +0+1
Swm*decoration: default
Swm*iconPanel: defaultIcon
Swm*panel.defaultIcon: \\
    button iconimage +C+0 \\
    button iconname +C+1
Swm*button.iconimage.image: xlogo32
Swm*button.name.bindings: \\
    <Btn1> : f.raise \\
    <Btn2> : f.move \\
    <Btn3> : f.iconify
Swm*button.iconimage.bindings: <Btn1> : f.deiconify
Swm*button.iconname.bindings: <Btn1> : f.deiconify
Swm*background: gray
Swm*foreground: black
Swm*font: fixed
"""

#: The root panel from Figure 2 of the paper, loadable on demand.
ROOT_PANEL_TEMPLATE = """
Swm*panel.RootPanel: \\
    button quit +0+0 \\
    button restart +1+0 \\
    button iconify +2+0 \\
    button deiconify +3+0 \\
    button move +0+1 \\
    button resize +1+1 \\
    button raise +2+1 \\
    button lower +3+1
Swm*button.quit.bindings: <Btn1> : f.quit
Swm*button.restart.bindings: <Btn1> : f.restart
Swm*button.iconify.bindings: <Btn1> : f.iconify(multiple)
Swm*button.deiconify.bindings: <Btn1> : f.deiconify(multiple)
Swm*button.move.bindings: <Btn1> : f.move(multiple)
Swm*button.resize.bindings: <Btn1> : f.resize(multiple)
Swm*button.raise.bindings: <Btn1> : f.raise(multiple)
Swm*button.lower.bindings: <Btn1> : f.lower(multiple)
"""

TEMPLATES: Dict[str, str] = {
    "OpenLook+": OPENLOOK_TEMPLATE,
    "Motif": MOTIF_TEMPLATE,
    "default": DEFAULT_TEMPLATE,
    "RootPanel": ROOT_PANEL_TEMPLATE,
}


def load_template(name: str, db: ResourceDatabase = None) -> ResourceDatabase:
    """Load a named template into *db* (or a fresh database).  User
    resources loaded afterwards override the template, per §3."""
    if db is None:
        db = ResourceDatabase()
    try:
        text = TEMPLATES[name]
    except KeyError:
        raise KeyError(
            f"unknown template {name!r}; have {sorted(TEMPLATES)}"
        ) from None
    db.load_string(text)
    return db
