"""Window manager functions (§4.3, §5).

Functions are invoked from object bindings, menus, or swmcmd.  Each
``f.name`` can execute in several modes (§5)::

    f.iconify            iconify the current window (binding context)
    f.iconify(multiple)  prompt for windows, one after another
    f.iconify(blob)      all windows whose class matches "blob"
    f.iconify(#$)        the window under the mouse
    f.iconify(#0x1234)   a specific window ID

The registry maps function names to handlers; handlers receive the WM
and an :class:`Invocation` carrying the resolved target and pointer
context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from .bindings import FunctionCall

if TYPE_CHECKING:  # pragma: no cover
    from ..xserver import events as ev
    from .managed import ManagedWindow
    from .wm import Swm


class FunctionError(Exception):
    """A function could not run (unknown name, bad argument...)."""


@dataclass
class Invocation:
    """One function execution context."""

    call: FunctionCall
    screen: int = 0
    managed: Optional["ManagedWindow"] = None
    pointer: Tuple[int, int] = (0, 0)
    event: Optional[object] = None

    def int_arg(self, default: int = 0) -> int:
        if self.call.argument is None:
            return default
        try:
            return int(self.call.argument, 0)
        except ValueError:
            raise FunctionError(
                f"f.{self.call.name} expects an integer, got "
                f"{self.call.argument!r}"
            ) from None

    def point_arg(self) -> Tuple[int, int]:
        arg = self.call.argument or ""
        parts = arg.replace(",", " ").split()
        if len(parts) != 2:
            raise FunctionError(
                f"f.{self.call.name} expects two integers, got {arg!r}"
            )
        try:
            return int(parts[0], 0), int(parts[1], 0)
        except ValueError:
            raise FunctionError(f"bad coordinates {arg!r}") from None


@dataclass
class FunctionSpec:
    handler: Callable[["Swm", Invocation], None]
    needs_window: bool = False
    #: When True (the default for window functions), the call argument
    #: is a window selector (§5 invocation modes).  Functions like
    #: f.moveto(x y) take data arguments instead and resolve their
    #: target from the binding context / selection prompt.
    window_from_arg: bool = True
    doc: str = ""


FUNCTIONS: Dict[str, FunctionSpec] = {}


def register(name: str, needs_window: bool = False, window_from_arg: bool = True):
    """Decorator adding a handler to the function registry."""

    def wrap(handler):
        FUNCTIONS[name] = FunctionSpec(
            handler,
            needs_window=needs_window,
            window_from_arg=window_from_arg,
            doc=handler.__doc__ or "",
        )
        return handler

    return wrap


def lookup(name: str) -> FunctionSpec:
    try:
        return FUNCTIONS[name.lower()]
    except KeyError:
        raise FunctionError(f"unknown function f.{name}") from None


def function_names() -> List[str]:
    return sorted(FUNCTIONS)


# -- window stack ----------------------------------------------------------------


@register("raise", needs_window=True)
def f_raise(wm: "Swm", inv: Invocation) -> None:
    """Raise the window to the top of the stack."""
    wm.raise_managed(inv.managed)


@register("lower", needs_window=True)
def f_lower(wm: "Swm", inv: Invocation) -> None:
    """Lower the window to the bottom of the stack."""
    wm.lower_managed(inv.managed)


@register("raiselower", needs_window=True)
def f_raiselower(wm: "Swm", inv: Invocation) -> None:
    """Raise if obscured, else lower."""
    wm.raise_lower_managed(inv.managed)


@register("circleup")
def f_circleup(wm: "Swm", inv: Invocation) -> None:
    """Raise the lowest window (CirculateWindow RaiseLowest)."""
    wm.circulate(inv.screen, up=True)


@register("circledown")
def f_circledown(wm: "Swm", inv: Invocation) -> None:
    """Lower the highest window."""
    wm.circulate(inv.screen, up=False)


# -- geometry ----------------------------------------------------------------------


@register("move", needs_window=True)
def f_move(wm: "Swm", inv: Invocation) -> None:
    """Interactive move: drag an outline until button release."""
    wm.begin_move(inv.managed, inv.pointer)


@register("moveto", needs_window=True, window_from_arg=False)
def f_moveto(wm: "Swm", inv: Invocation) -> None:
    """Move the window to explicit desktop coordinates: f.moveto(x y)
    applies to the window under the pointer / binding context."""
    x, y = inv.point_arg()
    wm.move_managed_to(inv.managed, x, y)


@register("resize", needs_window=True)
def f_resize(wm: "Swm", inv: Invocation) -> None:
    """Interactive resize from the nearest corner."""
    wm.begin_resize(inv.managed, inv.pointer)


@register("resizeto", needs_window=True, window_from_arg=False)
def f_resizeto(wm: "Swm", inv: Invocation) -> None:
    """Resize the client to an explicit size: f.resizeto(w h)."""
    width, height = inv.point_arg()
    wm.resize_managed(inv.managed, width, height)


@register("save", needs_window=True)
def f_save(wm: "Swm", inv: Invocation) -> None:
    """Save the window's location and size (for a later f.zoom /
    f.restore) — the paper's '<Btn2>: f.save f.zoom'."""
    wm.save_geometry(inv.managed)


@register("restore", needs_window=True)
def f_restore(wm: "Swm", inv: Invocation) -> None:
    """Restore the geometry saved by f.save."""
    wm.restore_geometry(inv.managed)


@register("zoom", needs_window=True)
def f_zoom(wm: "Swm", inv: Invocation) -> None:
    """Expand the window to the full size of the screen; a second zoom
    restores the saved geometry."""
    wm.zoom_managed(inv.managed)


@register("hzoom", needs_window=True)
def f_hzoom(wm: "Swm", inv: Invocation) -> None:
    """Zoom horizontally: full screen width, height unchanged."""
    wm.zoom_managed(inv.managed, axis="h")


@register("vzoom", needs_window=True)
def f_vzoom(wm: "Swm", inv: Invocation) -> None:
    """Zoom vertically: full screen height, width unchanged."""
    wm.zoom_managed(inv.managed, axis="v")


# -- state -----------------------------------------------------------------------------


@register("iconify", needs_window=True)
def f_iconify(wm: "Swm", inv: Invocation) -> None:
    """Iconify the window."""
    wm.iconify(inv.managed)


@register("deiconify", needs_window=True)
def f_deiconify(wm: "Swm", inv: Invocation) -> None:
    """Deiconify the window."""
    wm.deiconify(inv.managed)


@register("focus", needs_window=True)
def f_focus(wm: "Swm", inv: Invocation) -> None:
    """Give the client the input focus."""
    wm.focus_managed(inv.managed)


@register("delete", needs_window=True)
def f_delete(wm: "Swm", inv: Invocation) -> None:
    """Close the client politely (WM_DELETE_WINDOW if supported)."""
    wm.delete_client(inv.managed)


@register("destroy", needs_window=True)
def f_destroy(wm: "Swm", inv: Invocation) -> None:
    """Destroy the client window outright."""
    wm.destroy_client(inv.managed)


# -- sticky windows (6.2) -------------------------------------------------------------


@register("stick", needs_window=True)
def f_stick(wm: "Swm", inv: Invocation) -> None:
    """Stick the window to the glass."""
    wm.stick(inv.managed)


@register("unstick", needs_window=True)
def f_unstick(wm: "Swm", inv: Invocation) -> None:
    """Unstick the window back onto the desktop."""
    wm.unstick(inv.managed)


@register("togglestick", needs_window=True)
def f_togglestick(wm: "Swm", inv: Invocation) -> None:
    """Toggle stickiness (the nail button)."""
    if inv.managed.sticky:
        wm.unstick(inv.managed)
    else:
        wm.stick(inv.managed)


# -- virtual desktop (6) -----------------------------------------------------------------


@register("pan")
def f_pan(wm: "Swm", inv: Invocation) -> None:
    """Pan the Virtual Desktop by (dx dy)."""
    dx, dy = inv.point_arg()
    wm.pan_by(inv.screen, dx, dy)


@register("panto")
def f_panto(wm: "Swm", inv: Invocation) -> None:
    """Pan so the viewport's origin is desktop (x y)."""
    x, y = inv.point_arg()
    wm.pan_to(inv.screen, x, y)


@register("gotodesktop")
def f_gotodesktop(wm: "Swm", inv: Invocation) -> None:
    """Switch to Virtual Desktop N (multiple-desktop extension)."""
    wm.switch_desktop(inv.screen, inv.int_arg())


@register("nextdesktop")
def f_nextdesktop(wm: "Swm", inv: Invocation) -> None:
    """Switch to the next Virtual Desktop."""
    sc = wm.screens[inv.screen]
    if sc.vdesks:
        wm.switch_desktop(inv.screen, sc.current_desktop + 1)


@register("prevdesktop")
def f_prevdesktop(wm: "Swm", inv: Invocation) -> None:
    """Switch to the previous Virtual Desktop."""
    sc = wm.screens[inv.screen]
    if sc.vdesks:
        wm.switch_desktop(inv.screen, sc.current_desktop - 1)


@register("sendtodesktop", needs_window=True, window_from_arg=False)
def f_sendtodesktop(wm: "Swm", inv: Invocation) -> None:
    """Move the window to Virtual Desktop N: f.sendtodesktop(2)."""
    wm.send_to_desktop(inv.managed, inv.int_arg())


@register("warpvertical")
def f_warpvertical(wm: "Swm", inv: Invocation) -> None:
    """Warp the pointer vertically by N pixels (negative is up)."""
    wm.warp_pointer_by(0, inv.int_arg())


@register("warphorizontal")
def f_warphorizontal(wm: "Swm", inv: Invocation) -> None:
    """Warp the pointer horizontally by N pixels."""
    wm.warp_pointer_by(inv.int_arg(), 0)


@register("warpto", needs_window=True)
def f_warpto(wm: "Swm", inv: Invocation) -> None:
    """Warp the pointer to the window (panning to it if needed)."""
    wm.warp_to_managed(inv.managed)


# -- session / lifecycle (7, 8) --------------------------------------------------------------


@register("places")
def f_places(wm: "Swm", inv: Invocation) -> None:
    """Write the session restart script (the .xinitrc replacement)."""
    wm.save_places()


@register("quit")
def f_quit(wm: "Swm", inv: Invocation) -> None:
    """Shut down swm, releasing all clients."""
    wm.quit()


@register("restart")
def f_restart(wm: "Swm", inv: Invocation) -> None:
    """Restart swm: re-read resources and re-manage everything."""
    wm.restart()


@register("refresh")
def f_refresh(wm: "Swm", inv: Invocation) -> None:
    """Force a full-screen repaint."""
    wm.refresh(inv.screen)


@register("exec")
def f_exec(wm: "Swm", inv: Invocation) -> None:
    """Launch a command: f.exec(xterm -geometry 80x24)."""
    if not inv.call.argument:
        raise FunctionError("f.exec needs a command")
    wm.exec_command(inv.call.argument)


@register("beep")
def f_beep(wm: "Swm", inv: Invocation) -> None:
    """Ring the bell."""
    wm.beep()


@register("nop")
def f_nop(wm: "Swm", inv: Invocation) -> None:
    """Do nothing (placeholder binding)."""


# -- menus and dynamic objects (4.2, 4.4) -----------------------------------------------------


@register("menu")
def f_menu(wm: "Swm", inv: Invocation) -> None:
    """Pop up a named menu at the pointer."""
    if not inv.call.argument:
        raise FunctionError("f.menu needs a menu name")
    wm.popup_menu(inv.call.argument, inv.screen, inv.pointer, inv.managed)


@register("setimage")
def f_setimage(wm: "Swm", inv: Invocation) -> None:
    """Dynamically change a button's image: f.setimage(name:bitmap).
    This is how decorations reflect client/process state (§4.2)."""
    arg = inv.call.argument or ""
    if ":" not in arg:
        raise FunctionError("f.setimage wants name:bitmap")
    obj_name, _, bitmap_name = arg.partition(":")
    wm.set_button_image(obj_name.strip(), bitmap_name.strip(), inv.managed)


@register("setlabel")
def f_setlabel(wm: "Swm", inv: Invocation) -> None:
    """Dynamically change a button's label: f.setlabel(name:text)."""
    arg = inv.call.argument or ""
    if ":" not in arg:
        raise FunctionError("f.setlabel wants name:text")
    obj_name, _, text = arg.partition(":")
    wm.set_button_label(obj_name.strip(), text, inv.managed)
