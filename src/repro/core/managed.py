"""Per-client state the window manager keeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..icccm.hints import NORMAL_STATE, SizeHints, WMHints
from ..xserver.geometry import Point, Rect

if TYPE_CHECKING:  # pragma: no cover
    from .objects.panel import Panel
    from .icons import Icon


@dataclass
class ManagedWindow:
    """One client window under swm management.

    ``frame`` is the decoration panel's window; the client window is
    reparented into the decoration's interior ``client`` panel.  For
    non-sticky windows the frame is a child of the Virtual Desktop
    window and its coordinates are *desktop* coordinates; sticky frames
    are children of the real root (§6.2).
    """

    client: int
    frame: int
    screen: int
    decoration: "Panel"
    client_offset: Point
    instance: str = ""
    class_name: str = ""
    name: str = ""
    state: int = NORMAL_STATE
    sticky: bool = False
    #: Which Virtual Desktop the frame lives on (multiple-desktop
    #: extension; always 0 with a single desktop).
    desktop: int = 0
    shaped: bool = False
    zoomed: bool = False
    is_internal: bool = False  # swm's own windows (root panels, panner)
    decoration_name: str = ""
    resize_corners: bool = False
    saved_rect: Optional[Rect] = None
    icon: Optional["Icon"] = None
    original_border_width: int = 0
    size_hints: SizeHints = field(default_factory=SizeHints)
    wm_hints: WMHints = field(default_factory=WMHints)

    def object_named(self, name: str):
        return self.decoration.find(name)

    def __repr__(self) -> str:
        return (
            f"<ManagedWindow client={self.client:#x} frame={self.frame:#x}"
            f" {self.instance!r} state={self.state} sticky={self.sticky}>"
        )
