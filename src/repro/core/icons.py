"""Icons, icon appearance panels, root icons, and icon holders (§4.1.2–4.1.5).

swm has no concept of what an icon should look like: icon appearance
panels describe it.  The ``iconname`` button displays WM_ICON_NAME and
the ``iconimage`` button displays the client's icon pixmap / icon
window image (falling back to the panel's configured image, classically
``xlogo32``).

Icon holders are root panels that collect icons — per client class if
configured — with options to hide when empty or size to fit.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..toolkit.attributes import AttributeContext
from ..xserver.geometry import Point, Size
from .objects import Button, Panel, TextObject, object_factory

if TYPE_CHECKING:  # pragma: no cover
    from ..xserver.client import ClientConnection
    from .managed import ManagedWindow


class Icon:
    """A realized icon: the appearance panel for one iconified client,
    or a root icon with no client at all (§4.1.3)."""

    def __init__(
        self,
        panel: Panel,
        window: int,
        holder: Optional["IconHolder"] = None,
        managed: Optional["ManagedWindow"] = None,
    ):
        self.panel = panel
        self.window = window
        self.holder = holder
        self.managed = managed

    @property
    def is_root_icon(self) -> bool:
        return self.managed is None

    def __repr__(self) -> str:
        owner = self.managed.instance if self.managed else "<root icon>"
        return f"<Icon window={self.window:#x} for {owner}>"


def build_icon_panel(
    screen_ctx: AttributeContext,
    panel_name: str,
    icon_name: str = "",
    has_client_image: bool = False,
) -> Panel:
    """Build an icon appearance panel tree.

    *icon_name* labels the ``iconname`` object; *has_client_image*
    marks that the client supplied its own icon pixmap/window, which
    the ``iconimage`` button displays instead of the stock bitmap.
    """
    panel = Panel(screen_ctx, panel_name)
    panel.build(object_factory(screen_ctx))
    name_obj = panel.find("iconname")
    if name_obj is not None and icon_name:
        if isinstance(name_obj, Button):
            name_obj.set_label(icon_name)
        elif isinstance(name_obj, TextObject):
            name_obj.set_text(icon_name)
    image_obj = panel.find("iconimage")
    if isinstance(image_obj, Button) and has_client_image:
        image_obj.set_label(f"<{icon_name or 'icon'}>")
    return panel


class IconHolder:
    """A special root panel containing icons (§4.1.5).

    Configured entirely through resources::

        swm*holder.terminals.classes: XTerm
        swm*holder.terminals.geometry: +900+10
        swm*holder.terminals.columns: 1
        swm*holder.terminals.hideWhenEmpty: True
        swm*holder.terminals.sizeToFit: True
    """

    def __init__(
        self,
        conn: "ClientConnection",
        ctx: AttributeContext,
        name: str,
        parent_window: int,
        slot_size: Size = Size(72, 64),
    ):
        self.conn = conn
        self.ctx = ctx
        self.name = name
        self.slot_size = slot_size
        self.icons: List[Icon] = []

        path = ["holder", self.name]
        self.classes = (ctx.get_string(path, "classes", "") or "").split()
        self.columns = max(1, ctx.get_int(path, "columns", 4))
        self.hide_when_empty = ctx.get_bool(path, "hideWhenEmpty", False)
        self.size_to_fit = ctx.get_bool(path, "sizeToFit", True)
        self.scroll_offset = 0

        geometry = ctx.get_string(path, "geometry", "+0+0")
        from ..xserver.geometry import parse_geometry

        geo = parse_geometry(geometry)
        x = geo.x or 0
        y = geo.y or 0
        width = geo.width or (self.columns * slot_size.width + 4)
        height = geo.height or (slot_size.height + 4)
        self.window = conn.create_window(
            parent_window,
            x,
            y,
            width,
            height,
            border_width=1,
            override_redirect=True,
            background=ctx.get_string(path, "background"),
        )
        if not self.hide_when_empty:
            conn.map_window(self.window)

    # -- membership -----------------------------------------------------------

    def accepts(self, class_name: str, instance: str) -> bool:
        """Does this holder collect icons of the given client class?
        An empty class list means "everything"."""
        if not self.classes:
            return True
        return class_name in self.classes or instance in self.classes

    def slot_position(self, index: int) -> Point:
        col = index % self.columns
        row = index // self.columns
        return Point(
            2 + col * self.slot_size.width,
            2 + row * self.slot_size.height - self.scroll_offset,
        )

    def add(self, icon: Icon) -> Point:
        """Deposit an icon; returns its position within the holder."""
        self.icons.append(icon)
        icon.holder = self
        position = self.slot_position(len(self.icons) - 1)
        self._refresh()
        return position

    def remove(self, icon: Icon) -> None:
        if icon in self.icons:
            self.icons.remove(icon)
            icon.holder = None
            self._repack()
            self._refresh()

    def _repack(self) -> None:
        # Auto-arrange: one move per icon coalesces into one flush.
        with self.conn.batch():
            for index, icon in enumerate(self.icons):
                position = self.slot_position(index)
                self.conn.move_window(icon.window, position.x, position.y)

    def _refresh(self) -> None:
        """Apply hide-when-empty and size-to-fit policies."""
        if self.hide_when_empty:
            if self.icons:
                self.conn.map_window(self.window)
            else:
                self.conn.unmap_window(self.window)
        if self.size_to_fit and self.icons:
            rows = (len(self.icons) + self.columns - 1) // self.columns
            cols = min(self.columns, len(self.icons))
            self.conn.resize_window(
                self.window,
                cols * self.slot_size.width + 4,
                rows * self.slot_size.height + 4,
            )

    def scroll(self, dy: int) -> None:
        """Scroll the holder's contents (the non-size-to-fit mode)."""
        max_offset = max(
            0,
            ((len(self.icons) + self.columns - 1) // self.columns)
            * self.slot_size.height
            - 1,
        )
        self.scroll_offset = max(0, min(self.scroll_offset + dy, max_offset))
        self._repack()

    def __repr__(self) -> str:
        return f"<IconHolder {self.name!r} icons={len(self.icons)}>"
