"""The Virtual Desktop (§6).

The desktop is an X window larger than the screen, child of the real
root; managed frames live on it and panning just moves the big window.
Because windows do not move relative to *their* root when the desktop
pans, they receive no ConfigureNotify events — the exact behaviour (and
compatibility headache) §6.3 describes.

The desktop's size is limited only by the usable area of an X window,
32767x32767 pixels (§6.1).
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from ..xserver import events as ev
from ..xserver.event_mask import EventMask
from ..xserver.geometry import Point, Rect, Size
from ..xserver.server import MAX_WINDOW_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from ..xserver.client import ClientConnection
    from ..xserver.screen import Screen


class VirtualDesktop:
    """One screen's Virtual Desktop window and pan state."""

    def __init__(
        self,
        conn: "ClientConnection",
        screen: "Screen",
        size: Size,
        background: Optional[str] = None,
    ):
        if size.width > MAX_WINDOW_SIZE or size.height > MAX_WINDOW_SIZE:
            raise ValueError(
                f"Virtual Desktop larger than {MAX_WINDOW_SIZE} pixels"
            )
        if size.width < screen.width or size.height < screen.height:
            raise ValueError("Virtual Desktop smaller than the screen")
        self.conn = conn
        self.screen = screen
        self.size = size
        self.pan_x = 0
        self.pan_y = 0
        self.window = conn.create_window(
            screen.root.id,
            0,
            0,
            size.width,
            size.height,
            override_redirect=True,
            event_mask=EventMask.SubstructureRedirect
            | EventMask.SubstructureNotify
            | EventMask.ButtonPress
            | EventMask.KeyPress,
            background=background or "gray",
        )
        conn.map_window(self.window)
        conn.lower_window(self.window)

    # -- geometry ------------------------------------------------------------

    @property
    def rect(self) -> Rect:
        return Rect(0, 0, self.size.width, self.size.height)

    def view_rect(self) -> Rect:
        """The visible viewport, in desktop coordinates."""
        return Rect(self.pan_x, self.pan_y, self.screen.width, self.screen.height)

    def view_to_desktop(self, x: int, y: int) -> Point:
        return Point(x + self.pan_x, y + self.pan_y)

    def desktop_to_view(self, x: int, y: int) -> Point:
        return Point(x - self.pan_x, y - self.pan_y)

    def max_pan(self) -> Tuple[int, int]:
        return (
            max(0, self.size.width - self.screen.width),
            max(0, self.size.height - self.screen.height),
        )

    # -- panning ----------------------------------------------------------------

    def pan_to(self, x: int, y: int) -> Tuple[int, int]:
        """Pan so the viewport's upper-left sits at desktop (x, y),
        clamped to the desktop bounds.  Returns the actual offset."""
        max_x, max_y = self.max_pan()
        self.pan_x = max(0, min(x, max_x))
        self.pan_y = max(0, min(y, max_y))
        self.conn.move_window(self.window, -self.pan_x, -self.pan_y)
        return self.pan_x, self.pan_y

    def pan_by(self, dx: int, dy: int) -> Tuple[int, int]:
        return self.pan_to(self.pan_x + dx, self.pan_y + dy)

    def center_view_on(self, x: int, y: int) -> Tuple[int, int]:
        """Pan so desktop point (x, y) is centered in the viewport."""
        return self.pan_to(
            x - self.screen.width // 2, y - self.screen.height // 2
        )

    # -- resizing -----------------------------------------------------------------

    def resize(self, width: int, height: int) -> None:
        """Resize the desktop (the panner's resize drives this, §6.1);
        re-clamps the pan offset."""
        width = min(max(width, self.screen.width), MAX_WINDOW_SIZE)
        height = min(max(height, self.screen.height), MAX_WINDOW_SIZE)
        self.size = Size(width, height)
        self.conn.resize_window(self.window, width, height)
        self.pan_to(self.pan_x, self.pan_y)

    def __repr__(self) -> str:
        return (
            f"<VirtualDesktop {self.size.width}x{self.size.height}"
            f" pan=({self.pan_x},{self.pan_y})>"
        )
