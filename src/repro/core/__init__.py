"""swm: the window manager shell (the paper's contribution)."""

from .bindings import (
    Binding,
    BindingParseError,
    FunctionCall,
    parse_bindings,
)
from .functions import FunctionError, Invocation, function_names
from .managed import ManagedWindow
from .objects import Button, Menu, Panel, SwmObject, TextObject
from .panel_spec import ObjectSpec, PanelSpecError, parse_panel_spec
from .panner import Panner
from .swmcmd import swmcmd
from .templates import (
    DEFAULT_TEMPLATE,
    MOTIF_TEMPLATE,
    OPENLOOK_TEMPLATE,
    ROOT_PANEL_TEMPLATE,
    TEMPLATES,
    load_template,
)
from .virtual import VirtualDesktop
from .wm import SWM_ROOT_PROPERTY, Swm
from .xrdb import database_from_root, xrdb_load, xrdb_merge, xrdb_query

__all__ = [
    "Binding",
    "BindingParseError",
    "Button",
    "DEFAULT_TEMPLATE",
    "FunctionCall",
    "FunctionError",
    "Invocation",
    "MOTIF_TEMPLATE",
    "ManagedWindow",
    "Menu",
    "OPENLOOK_TEMPLATE",
    "ObjectSpec",
    "Panel",
    "PanelSpecError",
    "Panner",
    "ROOT_PANEL_TEMPLATE",
    "SWM_ROOT_PROPERTY",
    "SwmObject",
    "Swm",
    "TEMPLATES",
    "TextObject",
    "VirtualDesktop",
    "database_from_root",
    "function_names",
    "load_template",
    "parse_bindings",
    "parse_panel_spec",
    "swmcmd",
    "xrdb_load",
    "xrdb_merge",
    "xrdb_query",
]
