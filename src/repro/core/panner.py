"""The Virtual Desktop panner (§6.1, Figure 3).

The panner shows a miniature of the whole desktop: tiny rectangles for
every window plus an outline marking the current viewport.  Button 1
drags the viewport outline (panning on release); button 2 on a
miniature starts a window move — dropping inside the panner repositions
the window anywhere on the desktop, and dragging *out* of the panner
switches to a full-size outline on the visible screen, fine-tuning the
placement (and vice versa: a move started on the client window can be
dropped into the panner).

Resizing the panner resizes the underlying Virtual Desktop (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from ..toolkit.attributes import AttributeContext
from ..xserver.geometry import Point, Rect, Size
from .virtual import VirtualDesktop

if TYPE_CHECKING:  # pragma: no cover
    from ..xserver.client import ClientConnection
    from .managed import ManagedWindow

#: Desktop pixels per panner pixel (the fixed miniature scale).
DEFAULT_SCALE = 16


@dataclass
class PannerDrag:
    """An in-progress drag within (or out of) the panner."""

    kind: str  # "viewport" or "window"
    managed: Optional["ManagedWindow"] = None
    #: Last pointer position, in panner-local coordinates.
    x: int = 0
    y: int = 0
    #: True once the pointer left the panner (full-size outline mode).
    outside: bool = False
    #: Grab offset within the miniature/viewport, in desktop pixels.
    grip_dx: int = 0
    grip_dy: int = 0


class Panner:
    """The panner object for one screen's Virtual Desktop."""

    def __init__(
        self,
        conn: "ClientConnection",
        ctx: AttributeContext,
        vdesk: VirtualDesktop,
        get_windows: Callable[[], List[Tuple[Rect, "ManagedWindow"]]],
        move_window: Callable[["ManagedWindow", int, int], None],
        scale: Optional[int] = None,
    ):
        self.conn = conn
        self.ctx = ctx
        self.vdesk = vdesk
        self.get_windows = get_windows
        self.move_window = move_window
        self.scale = scale or ctx.get_int(["panner", "panner"], "scale", DEFAULT_SCALE)
        self.drag: Optional[PannerDrag] = None

        width = max(8, vdesk.size.width // self.scale)
        height = max(8, vdesk.size.height // self.scale)
        # The panner's client window; the WM reparents/manages it like
        # any other client (and marks it sticky so it never pans away).
        from ..xserver.event_mask import EventMask

        self.window = conn.create_window(
            vdesk.screen.root.id,
            vdesk.screen.width - width - 8,
            vdesk.screen.height - height - 8,
            width,
            height,
            border_width=1,
            event_mask=EventMask.ButtonPress
            | EventMask.ButtonRelease
            | EventMask.PointerMotion
            | EventMask.Exposure,
            background=ctx.get_string(["panner", "panner"], "background", "white"),
        )

    # -- coordinate mapping ---------------------------------------------------

    def panner_size(self) -> Size:
        _, _, width, height, _ = self.conn.get_geometry(self.window)
        return Size(width, height)

    def desktop_to_panner(self, x: int, y: int) -> Point:
        return Point(x // self.scale, y // self.scale)

    def panner_to_desktop(self, x: int, y: int) -> Point:
        return Point(x * self.scale, y * self.scale)

    def miniature_rects(self) -> List[Tuple[Rect, "ManagedWindow"]]:
        """Miniatures of all windows currently on the desktop."""
        minis = []
        for rect, managed in self.get_windows():
            mini = Rect(
                rect.x // self.scale,
                rect.y // self.scale,
                max(1, rect.width // self.scale),
                max(1, rect.height // self.scale),
            )
            minis.append((mini, managed))
        return minis

    def viewport_outline(self) -> Rect:
        view = self.vdesk.view_rect()
        return Rect(
            view.x // self.scale,
            view.y // self.scale,
            max(1, view.width // self.scale),
            max(1, view.height // self.scale),
        )

    def miniature_at(self, x: int, y: int) -> Optional["ManagedWindow"]:
        """Topmost miniature under panner-local (x, y)."""
        hit = None
        for mini, managed in self.miniature_rects():
            if mini.contains(x, y):
                hit = managed
        return hit

    # -- interaction ------------------------------------------------------------

    def press(self, button: int, x: int, y: int) -> Optional[PannerDrag]:
        """Button press at panner-local (x, y)."""
        if button == 1:
            self.drag = PannerDrag(kind="viewport", x=x, y=y)
            return self.drag
        if button == 2:
            managed = self.miniature_at(x, y)
            if managed is None:
                return None
            desk = self.panner_to_desktop(x, y)
            frame_rect = self._frame_rect(managed)
            self.drag = PannerDrag(
                kind="window",
                managed=managed,
                x=x,
                y=y,
                grip_dx=desk.x - frame_rect.x,
                grip_dy=desk.y - frame_rect.y,
            )
            return self.drag
        return None

    def begin_window_drag_from_screen(
        self, managed: "ManagedWindow", x: int, y: int
    ) -> PannerDrag:
        """A window move started on the client window entered the
        panner: continue it as a miniature drag (§6.1)."""
        self.drag = PannerDrag(kind="window", managed=managed, x=x, y=y)
        return self.drag

    def motion(self, x: int, y: int) -> None:
        """Pointer motion during a drag, panner-local coordinates (may
        run outside the panner bounds)."""
        if self.drag is None:
            return
        size = self.panner_size()
        self.drag.x = x
        self.drag.y = y
        self.drag.outside = not (0 <= x < size.width and 0 <= y < size.height)

    def release(self, x: int, y: int) -> Optional[str]:
        """Button release: commit the drag.  Returns what happened
        ("panned", "moved", "moved-outside", or None)."""
        drag = self.drag
        if drag is None:
            return None
        self.drag = None
        self.motion_commit = (x, y)
        size = self.panner_size()
        inside = 0 <= x < size.width and 0 <= y < size.height

        if drag.kind == "viewport":
            desk = self.panner_to_desktop(x, y)
            self.vdesk.center_view_on(desk.x, desk.y)
            return "panned"

        managed = drag.managed
        if managed is None:
            return None
        if inside:
            desk = self.panner_to_desktop(x, y)
            self.move_window(
                managed, desk.x - drag.grip_dx, desk.y - drag.grip_dy
            )
            return "moved"
        # Released outside the panner: full-size outline mode — the
        # pointer position is screen coordinates; place the window at
        # the corresponding desktop position in the current view.
        panner_origin = self._panner_screen_origin()
        screen_x = panner_origin.x + x
        screen_y = panner_origin.y + y
        desk = self.vdesk.view_to_desktop(screen_x, screen_y)
        self.move_window(managed, desk.x, desk.y)
        return "moved-outside"

    def _panner_screen_origin(self) -> Point:
        x, y, _ = self.conn.translate_coordinates(
            self.window, self.vdesk.screen.root.id, 0, 0
        )
        return Point(x, y)

    def _frame_rect(self, managed: "ManagedWindow") -> Rect:
        x, y, width, height, _ = self.conn.get_geometry(managed.frame)
        return Rect(x, y, width, height)

    # -- resizing -------------------------------------------------------------------

    def resized(self, width: int, height: int) -> None:
        """The panner window was resized: resize the Virtual Desktop to
        match at the fixed scale (§6.1)."""
        self.vdesk.resize(width * self.scale, height * self.scale)

    def __repr__(self) -> str:
        size = self.panner_size()
        return f"<Panner {size.width}x{size.height} scale={self.scale}>"
