"""Regenerating the paper's figures.

The original figures are screen photographs; we regenerate their
*structure* from the same panel definitions, as deterministic char-cell
renderings:

- Figure 1: an OpenLook+-decorated client window,
- Figure 2: the reparented RootPanel (quit/restart/... button grid),
- Figure 3: the Virtual Desktop panner with miniatures + viewport.
"""

from __future__ import annotations

from typing import Optional

from .core.wm import Swm
from .xserver import XServer
from .xserver.geometry import Rect
from .xserver.render import Canvas, render_window


#: Char-cell granularity for the decoration figures: fine enough that
#: every titlebar button is visible.
FIGURE_CELL = (4, 8)


def figure1_decoration(server: XServer, wm: Swm, client: int) -> str:
    """Render a managed client's decoration panel (Figure 1)."""
    managed = wm.managed[client]
    frame = server.window(managed.frame)
    return render_window(
        frame,
        server.atoms,
        cell_w=FIGURE_CELL[0],
        cell_h=FIGURE_CELL[1],
        clip=frame.rect_in_root(),
    )


def figure2_root_panel(server: XServer, wm: Swm, name: str = "RootPanel") -> str:
    """Render a root panel (Figure 2) — reparented like a client, so we
    render its whole frame."""
    managed = wm.screens[0].root_panels[name]
    frame = server.window(managed.frame)
    return render_window(
        frame,
        server.atoms,
        cell_w=FIGURE_CELL[0],
        cell_h=FIGURE_CELL[1],
        clip=frame.rect_in_root(),
    )


def figure3_panner(wm: Swm, screen: int = 0) -> str:
    """Render the panner (Figure 3): miniature windows as ``#`` boxes
    with the viewport outline drawn in ``:``."""
    sc = wm.screens[screen]
    panner = sc.panner
    if panner is None:
        raise ValueError("no panner on this screen")
    size = panner.panner_size()
    # One canvas cell per 2x4 panner pixels keeps the aspect readable.
    cell_w, cell_h = 2, 4
    canvas = Canvas(
        max(1, size.width // cell_w), max(1, size.height // cell_h)
    )

    def draw(rect: Rect, border: Optional[str], fill: Optional[str]) -> None:
        col0 = rect.x // cell_w
        row0 = rect.y // cell_h
        cols = max(1, rect.width // cell_w)
        rows = max(1, rect.height // cell_h)
        if fill:
            canvas.fill_rect(col0, row0, cols, rows, fill)
        if border is None:
            canvas.frame(col0, row0, cols, rows)
        else:
            canvas.hline(col0, row0, cols, border)
            canvas.hline(col0, row0 + rows - 1, cols, border)
            canvas.vline(col0, row0, rows, border)
            canvas.vline(col0 + cols - 1, row0, rows, border)

    draw(panner.viewport_outline(), ":", None)
    for mini, managed in panner.miniature_rects():
        draw(mini, None, "#")
    return canvas.to_string()
