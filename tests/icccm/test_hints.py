"""ICCCM hint encode/decode and constraint logic."""

import pytest
from hypothesis import given, strategies as st

from repro.icccm import (
    ICONIC_STATE,
    NORMAL_STATE,
    P_POSITION,
    SizeHints,
    US_POSITION,
    WITHDRAWN_STATE,
    WMHints,
    WMState,
)
from repro.icccm.hints import (
    ICON_POSITION_HINT,
    P_BASE_SIZE,
    P_MAX_SIZE,
    P_MIN_SIZE,
    P_RESIZE_INC,
    STATE_HINT,
)


class TestSizeHints:
    def test_roundtrip(self):
        hints = SizeHints(
            flags=US_POSITION | P_MIN_SIZE,
            x=100,
            y=200,
            min_width=10,
            min_height=20,
        )
        assert SizeHints.decode(hints.encode()) == hints

    def test_position_flags(self):
        assert SizeHints(flags=US_POSITION).user_position
        assert not SizeHints(flags=US_POSITION).program_position
        assert SizeHints(flags=P_POSITION).program_position

    def test_decode_short_data(self):
        hints = SizeHints.decode([US_POSITION, 5, 6])
        assert hints.x == 5 and hints.y == 6

    def test_constrain_min(self):
        hints = SizeHints(flags=P_MIN_SIZE, min_width=50, min_height=40)
        assert hints.constrain_size(10, 10) == (50, 40)

    def test_constrain_max(self):
        hints = SizeHints(flags=P_MAX_SIZE, max_width=100, max_height=90)
        assert hints.constrain_size(500, 500) == (100, 90)

    def test_constrain_increments(self):
        # xterm-style: base 8x8, increments 6x13.
        hints = SizeHints(
            flags=P_RESIZE_INC | P_BASE_SIZE,
            base_width=8,
            base_height=8,
            width_inc=6,
            height_inc=13,
        )
        width, height = hints.constrain_size(100, 100)
        assert (width - 8) % 6 == 0
        assert (height - 8) % 13 == 0
        assert width <= 100 and height <= 100

    def test_constrain_no_flags_identity(self):
        assert SizeHints().constrain_size(123, 456) == (123, 456)

    @given(st.integers(1, 2000), st.integers(1, 2000))
    def test_constrain_always_positive(self, w, h):
        hints = SizeHints(
            flags=P_MIN_SIZE | P_RESIZE_INC,
            min_width=5,
            min_height=5,
            width_inc=7,
            height_inc=7,
        )
        cw, ch = hints.constrain_size(w, h)
        assert cw >= 1 and ch >= 1


class TestWMHints:
    def test_roundtrip(self):
        hints = WMHints(
            flags=STATE_HINT | ICON_POSITION_HINT,
            initial_state=ICONIC_STATE,
            icon_x=10,
            icon_y=20,
        )
        assert WMHints.decode(hints.encode()) == hints

    def test_start_iconic(self):
        assert WMHints(flags=STATE_HINT, initial_state=ICONIC_STATE).start_iconic
        assert not WMHints(flags=STATE_HINT, initial_state=NORMAL_STATE).start_iconic
        assert not WMHints(initial_state=ICONIC_STATE).start_iconic

    def test_icon_position(self):
        assert WMHints(flags=ICON_POSITION_HINT).has_icon_position
        assert not WMHints().has_icon_position


class TestWMState:
    def test_roundtrip(self):
        state = WMState(state=ICONIC_STATE, icon_window=42)
        assert WMState.decode(state.encode()) == state

    def test_names(self):
        assert WMState(NORMAL_STATE).name == "NormalState"
        assert WMState(ICONIC_STATE).name == "IconicState"
        assert WMState(WITHDRAWN_STATE).name == "WithdrawnState"
        assert "Unknown" in WMState(99).name
