"""ICCCM property accessors over the simulated server."""

import pytest

from repro import icccm
from repro.icccm import SizeHints, WMHints, WMState
from repro.icccm.hints import ICONIC_STATE, US_POSITION
from repro.xserver import ClientConnection, XServer


@pytest.fixture
def env():
    server = XServer(screens=[(1000, 800, 8)])
    conn = ClientConnection(server, "app")
    wid = conn.create_window(conn.root_window(), 0, 0, 100, 100)
    return server, conn, wid


class TestStringProperties:
    def test_wm_name(self, env):
        _, conn, wid = env
        icccm.set_wm_name(conn, wid, "xclock")
        assert icccm.get_wm_name(conn, wid) == "xclock"

    def test_wm_icon_name(self, env):
        _, conn, wid = env
        icccm.set_wm_icon_name(conn, wid, "clock")
        assert icccm.get_wm_icon_name(conn, wid) == "clock"

    def test_wm_class(self, env):
        _, conn, wid = env
        icccm.set_wm_class(conn, wid, "xclock", "XClock")
        assert icccm.get_wm_class(conn, wid) == ("xclock", "XClock")

    def test_wm_class_missing(self, env):
        _, conn, wid = env
        assert icccm.get_wm_class(conn, wid) is None

    def test_wm_client_machine(self, env):
        _, conn, wid = env
        icccm.set_wm_client_machine(conn, wid, "expo.lcs.mit.edu")
        assert icccm.get_wm_client_machine(conn, wid) == "expo.lcs.mit.edu"


class TestWMCommand:
    def test_argv_roundtrip(self, env):
        _, conn, wid = env
        argv = ["oclock", "-geom", "100x100"]
        icccm.set_wm_command(conn, wid, argv)
        assert icccm.get_wm_command(conn, wid) == argv

    def test_command_string_quotes(self, env):
        _, conn, wid = env
        icccm.set_wm_command(conn, wid, ["xterm", "-title", "my shell"])
        cmd = icccm.get_wm_command_string(conn, wid)
        assert cmd == "xterm -title 'my shell'"

    def test_missing_command(self, env):
        _, conn, wid = env
        assert icccm.get_wm_command(conn, wid) is None
        assert icccm.get_wm_command_string(conn, wid) is None


class TestStructuredHints:
    def test_normal_hints_roundtrip(self, env):
        _, conn, wid = env
        hints = SizeHints(flags=US_POSITION, x=1010, y=359, width=120, height=120)
        icccm.set_wm_normal_hints(conn, wid, hints)
        assert icccm.get_wm_normal_hints(conn, wid) == hints

    def test_wm_hints_roundtrip(self, env):
        _, conn, wid = env
        hints = WMHints(flags=2, initial_state=ICONIC_STATE)
        icccm.set_wm_hints(conn, wid, hints)
        assert icccm.get_wm_hints(conn, wid) == hints

    def test_wm_state(self, env):
        _, conn, wid = env
        icccm.set_wm_state(conn, wid, WMState(state=ICONIC_STATE, icon_window=7))
        state = icccm.get_wm_state(conn, wid)
        assert state.state == ICONIC_STATE and state.icon_window == 7

    def test_transient_for(self, env):
        _, conn, wid = env
        leader = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        icccm.set_wm_transient_for(conn, wid, leader)
        assert icccm.get_wm_transient_for(conn, wid) == leader

    def test_protocols(self, env):
        _, conn, wid = env
        icccm.set_wm_protocols(conn, wid, ["WM_DELETE_WINDOW", "WM_TAKE_FOCUS"])
        assert icccm.get_wm_protocols(conn, wid) == [
            "WM_DELETE_WINDOW",
            "WM_TAKE_FOCUS",
        ]

    def test_missing_hints_are_none(self, env):
        _, conn, wid = env
        assert icccm.get_wm_normal_hints(conn, wid) is None
        assert icccm.get_wm_hints(conn, wid) is None
        assert icccm.get_wm_state(conn, wid) is None
        assert icccm.get_wm_transient_for(conn, wid) is None
        assert icccm.get_wm_protocols(conn, wid) == []
