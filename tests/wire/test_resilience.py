"""Wire resilience: heartbeats, parking, resume, replay, link faults.

Covers the connection-lifecycle layer end to end, deterministically —
every scenario runs over the synchronous :class:`FramedHost` harness
(manual clock, no sockets), so park-grace expiry, reconnect races and
seeded link chaos are plain inputs, not timing weather:

- unit behaviour of :class:`Backoff`, :class:`ReplayRing`,
  :class:`ClientSession` (sequence dedup / gap / reconcile) and
  :class:`SessionTable`;
- the resume handshake at the frame level: cached-reply resend
  (exactly-once execution), retransmit-after-loss, ledger divergence,
  unknown tokens;
- park + resume through a real client: windows survive a cut link,
  ``record.parked`` is visible to oracles, events delivered while
  parked replay in order;
- the degradation ladder's bottom rungs: ring overflow and grace
  expiry end in a clean close (never a hang), including a reconnect
  racing the expiry from both sides of the deadline;
- the :class:`LinkFaultInjector` kinds one by one, plus a seeded
  mixed-chaos run that must heal every flap and replay bit-identically.
"""

import random

import pytest

from repro.xserver import (
    ClientConnection,
    ConnectionClosed,
    EventMask,
    XServer,
)
from repro.xserver import events as ev
from repro.xserver.faults import (
    CORRUPT,
    DUPLICATE,
    LAG,
    PARTITION,
    REORDER,
    TRUNCATE,
    FaultPlan,
    FaultRule,
)
from repro.xserver.wire import (
    EVENT,
    HELLO,
    PING,
    PONG,
    REPLY,
    REQUEST,
    RESUME,
    RESUMED,
    SEQ,
    WELCOME,
    Backoff,
    ClientSession,
    FrameDecoder,
    FramedHost,
    FramedTransport,
    LinkDesync,
    LinkFaultInjector,
    ManualClock,
    ReplayRing,
    ResilienceConfig,
    SessionLost,
    SessionTable,
    WireProtocolError,
    WireTimeouts,
    encode_frame,
    encode_request,
    encode_value,
    decode_value,
)


@pytest.fixture
def server():
    return XServer()


def make_host(server, seed=0, **overrides):
    cfg = ResilienceConfig(seed=seed, **overrides)
    return FramedHost(server, cfg)


def connect(server, host, plan=None, name="app"):
    transport = FramedTransport(host, plan, sleep=host.advance)
    return ClientConnection(name=name, transport=transport), transport


class RawPeer:
    """Hand-rolled client for frame-level handshake tests."""

    def __init__(self, link):
        self.link = link
        self.decoder = FrameDecoder()

    def send(self, kind, opcode, payload):
        self.link.send(encode_frame(kind, opcode, payload))

    def request(self, name, *args):
        self.send(REQUEST, *encode_request(name, args, {}))
        return self.recv()

    def recv(self):
        return self.decoder.feed(self.link.take())


def raw_hello(host, name="raw"):
    peer = RawPeer(host.open_link())
    peer.send(HELLO, 0, encode_value({"name": name, "coalesce": True}))
    (welcome,) = peer.recv()
    assert welcome.kind == WELCOME
    return peer, decode_value(welcome.payload)


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------


class TestBackoff:
    def test_bounded_exponential_with_seeded_jitter(self, wire_seed):
        cfg = ResilienceConfig(
            backoff_base=0.05, backoff_cap=2.0, max_attempts=6,
            jitter=0.25,
        )
        delays = list(Backoff(cfg, random.Random(wire_seed)).delays())
        assert len(delays) == cfg.max_attempts
        for attempt, delay in enumerate(delays):
            base = min(cfg.backoff_cap, cfg.backoff_base * 2 ** attempt)
            assert base <= delay <= base * (1 + cfg.jitter)
        # Same seed, same jitter sequence — reconnect timing replays.
        again = list(Backoff(cfg, random.Random(wire_seed)).delays())
        assert delays == again

    def test_zero_jitter_is_pure_exponential(self):
        cfg = ResilienceConfig(
            backoff_base=0.1, backoff_cap=0.4, max_attempts=4, jitter=0.0
        )
        delays = list(Backoff(cfg, random.Random(1)).delays())
        assert delays == [0.1, 0.2, 0.4, 0.4]


class TestReplayRing:
    def test_ack_trims_and_replay_filters(self):
        ring = ReplayRing(capacity=8)
        for seq in range(1, 6):
            ring.append(seq, 7, b"e%d" % seq)
        ring.ack(3)
        assert len(ring) == 2
        assert ring.replay_from(3) == [(4, 7, b"e4"), (5, 7, b"e5")]
        assert ring.replay_from(4) == [(5, 7, b"e5")]
        assert ring.replay_from(5) == []

    def test_overflow_remembers_what_it_dropped(self):
        ring = ReplayRing(capacity=3)
        for seq in range(1, 8):
            ring.append(seq, 7, b"")
        assert len(ring) == 3
        assert ring.dropped_through == 4
        # A client that saw less than the dropped range cannot resume.
        assert ring.replay_from(2) is None
        assert ring.replay_from(4) == [(5, 7, b""), (6, 7, b""), (7, 7, b"")]


class TestWireTimeouts:
    def test_uniform_maps_the_legacy_single_knob(self):
        t = WireTimeouts.uniform(2.5)
        assert (t.connect, t.handshake, t.rpc, t.shutdown) == (2.5,) * 4

    def test_defaults_match_the_old_hardcoded_ten_seconds(self):
        t = WireTimeouts()
        assert (t.connect, t.handshake, t.rpc, t.shutdown) == (10.0,) * 4


class TestClientSession:
    def make(self, **kw):
        return ClientSession("app", True, **kw)

    def test_event_sequencing_dedup_and_gap(self):
        cs = self.make()
        assert cs.accept_event(SEQ.pack(1) + b"a") == b"a"
        assert cs.accept_event(SEQ.pack(2) + b"b") == b"b"
        # Duplicate (replay overlap): dropped, counted, no state change.
        assert cs.accept_event(SEQ.pack(2) + b"b") is None
        assert cs.dup_events == 1
        assert cs.events_seen == 2
        # A gap means bytes vanished on a live link: poison.
        with pytest.raises(LinkDesync):
            cs.accept_event(SEQ.pack(4) + b"d")
        with pytest.raises(WireProtocolError):
            cs.accept_event(b"\x00")  # no sequence prefix

    def test_ack_due_every_n_events(self):
        cs = self.make(ack_every=3)
        for seq in range(1, 3):
            cs.accept_event(SEQ.pack(seq) + b"x")
            assert cs.ack_due() is None
        cs.accept_event(SEQ.pack(3) + b"x")
        assert cs.ack_due() == 3
        assert cs.ack_due() is None  # not due again until 3 more

    def test_reconcile_retransmit_cached_and_divergence(self):
        cs = self.make()
        cs.requests_sent, cs.replies_seen = 5, 4
        # Server never executed the in-flight request: retransmit.
        assert cs.reconcile(4) is True
        # Server executed it (cached reply on the way): no retransmit.
        assert cs.reconcile(5) is False
        # Nothing in flight and counts agree: no retransmit.
        cs.replies_seen = 5
        assert cs.reconcile(5) is False
        # Anything else is divergence.
        with pytest.raises(SessionLost):
            cs.reconcile(7)


class TestSessionTable:
    def test_expiry_is_clock_driven(self):
        clock = ManualClock()
        table = SessionTable(clock=clock)
        assert table.mint() != table.mint()
        ring = ReplayRing(4)

        def park(token, deadline):
            server = XServer()
            conn = ClientConnection(server, "p")
            from repro.xserver.wire.resilience import ParkedSession

            parked = ParkedSession(
                token=token, record=server.clients[conn.client_id],
                ring=ring, last_seq=0, executed=0, last_reply=None,
                deadline=deadline,
            )
            table.park(parked)
            return parked

        park("a", deadline=10.0)
        kept = park("b", deadline=20.0)
        clock.advance(10.0)
        expired = table.expire()
        assert [p.token for p in expired] == ["a"]
        assert table.parked_count() == 1
        assert table.claim("b") is kept
        assert table.claim("b") is None


# ---------------------------------------------------------------------------
# Frame-level resume handshake (exactly-once semantics)
# ---------------------------------------------------------------------------


class TestResumeHandshake:
    def test_welcome_advertises_resilience(self, server):
        host = make_host(server)
        _, welcome = raw_hello(host)
        assert welcome["resume_token"] == "swm-sess-000001"
        assert welcome["heartbeat_interval"] == 1.0
        assert welcome["miss_budget"] == 3
        assert welcome["ack_every"] == 64

    def test_no_resilience_means_no_token_and_close_on_cut(self, server):
        host = FramedHost(server)  # resilience off
        peer, welcome = raw_hello(host)
        assert "resume_token" not in welcome
        cid = welcome["client_id"]
        peer.link.cut()
        # Old behaviour bit-for-bit: the client closes outright.
        assert cid not in server.clients
        assert host.sessions.parked_count() == 0

    def test_cached_reply_resent_never_reexecuted(self, server):
        host = make_host(server)
        peer, welcome = raw_hello(host)
        (reply,) = peer.request("intern_atom", "FIRST")
        assert reply.kind == REPLY
        # The link dies between execute and reply: the server executed
        # request #2 but we never read the answer.
        peer.send(REQUEST, *encode_request("intern_atom", ("SECOND",), {}))
        executed = peer.link.session.executed
        assert executed == 2
        peer.link.cut()
        assert host.sessions.parked_count() == 1

        peer2 = RawPeer(host.open_link())
        peer2.send(RESUME, 0, encode_value({
            "token": welcome["resume_token"],
            "events_seen": 0, "requests_sent": 2, "replies_seen": 1,
        }))
        frames = peer2.recv()
        assert [f.kind for f in frames] == [RESUMED, REPLY]
        verdict = decode_value(frames[0].payload)
        assert verdict["ok"] is True
        assert verdict["executed"] == 2
        assert verdict["client_id"] == welcome["client_id"]
        # Exactly-once: the resume resent the cached reply instead of
        # running the request again.
        assert peer2.link.session.executed == 2
        assert server.stats().wire_count("framed", "replayed_replies") == 1

    def test_lost_request_is_retransmitted_not_assumed(self, server):
        host = make_host(server)
        peer, welcome = raw_hello(host)
        peer.request("intern_atom", "FIRST")
        # Request #2 was lost on the wire: the client counted it, the
        # server never saw it.
        peer.link.cut()
        peer2 = RawPeer(host.open_link())
        peer2.send(RESUME, 0, encode_value({
            "token": welcome["resume_token"],
            "events_seen": 0, "requests_sent": 2, "replies_seen": 1,
        }))
        (resumed,) = peer2.recv()
        verdict = decode_value(resumed.payload)
        assert verdict["ok"] is True
        assert verdict["executed"] == 1  # client must retransmit
        (reply,) = peer2.request("intern_atom", "SECOND")
        assert reply.kind == REPLY
        assert peer2.link.session.executed == 2

    def test_diverged_ledger_is_session_lost_with_close(self, server):
        host = make_host(server)
        peer, welcome = raw_hello(host)
        cid = welcome["client_id"]
        peer.request("intern_atom", "FIRST")
        peer.link.cut()
        peer2 = RawPeer(host.open_link())
        peer2.send(RESUME, 0, encode_value({
            "token": welcome["resume_token"],
            "events_seen": 0, "requests_sent": 5, "replies_seen": 0,
        }))
        (resumed,) = peer2.recv()
        verdict = decode_value(resumed.payload)
        assert verdict["ok"] is False
        assert verdict["reason"] == "request-ledger-diverged"
        # Bottom rung: ordinary close ran, nothing parked, link cut.
        assert cid not in server.clients
        assert host.sessions.parked_count() == 0
        assert not peer2.link.up
        assert server.stats().wire_count("framed", "sessions_lost") == 1

    def test_unknown_token_rejected_cleanly(self, server):
        host = make_host(server)
        peer2 = RawPeer(host.open_link())
        peer2.send(RESUME, 0, encode_value({
            "token": "swm-sess-bogus",
            "events_seen": 0, "requests_sent": 0, "replies_seen": 0,
        }))
        (resumed,) = peer2.recv()
        assert decode_value(resumed.payload) == {
            "ok": False, "reason": "unknown-token",
        }
        assert not peer2.link.up
        assert host.errors == []

    def test_ping_answered_with_pong_even_before_hello(self, server):
        host = make_host(server)
        peer = RawPeer(host.open_link())
        peer.send(PING, 0, SEQ.pack(7))
        (pong,) = peer.recv()
        assert pong.kind == PONG
        assert pong.payload == SEQ.pack(7)


# ---------------------------------------------------------------------------
# Park + resume through a real client
# ---------------------------------------------------------------------------


class TestParkAndResume:
    def test_windows_survive_a_cut_link(self, server):
        host = make_host(server)
        conn, transport = connect(server, host)
        wid = conn.create_window(conn.root_window(), 0, 0, 60, 40)
        conn.map_window(wid)
        cid = conn.client_id

        transport._link.cut()
        # Parked: the record (windows, XIDs, quotas) stays registered
        # and is flagged for the oracles.
        record = server.clients[cid]
        assert record.parked is True
        assert host.sessions.parked_count() == 1
        assert server.stats().wire_count("framed", "parked") == 1

        # The next request transparently reconnects and resumes.
        assert conn.window_exists(wid) is True
        assert transport.reconnects == 1
        assert len(transport.delays) == 1
        assert server.clients[cid] is record
        assert record.parked is False
        assert server.stats().wire_count("framed", "resumed") == 1
        # Same client id, same session — not a new registration.
        assert conn.client_id == cid

    def test_events_delivered_while_parked_replay_in_order(self, server):
        host = make_host(server, ack_every=100)
        conn, transport = connect(server, host)
        wid = conn.create_window(conn.root_window(), 0, 0, 60, 40)
        conn.select_input(wid, EventMask.StructureNotify)
        conn.map_window(wid)
        conn.events()  # drain the setup noise

        transport._link.cut()
        driver = ClientConnection(server, "driver")
        for x in range(5):
            driver.move_window(wid, 10 + x, 20)
        # The parked session absorbed those into its replay ring.
        assert server.clients[conn.client_id].parked is True

        events = conn.events()  # pump -> recover -> resume -> replay
        moves = [e for e in events if isinstance(e, ev.ConfigureNotify)]
        assert [e.x for e in moves] == [10, 11, 12, 13, 14]
        assert transport.reconnects == 1
        assert server.stats().wire_count("framed", "replayed_events") == 5
        # No duplicates slipped through the seq filter.
        assert transport._cs.dup_events == 0

    def test_heartbeat_reaps_silent_peer_into_park(self, server):
        host = make_host(server, miss_budget=2)
        conn, transport = connect(server, host)
        cid = conn.client_id
        # The client goes silent; the server probes, then reaps.
        for _ in range(4):
            host.heartbeat_tick()
        assert server.stats().wire_count("framed", "peers_reaped") == 1
        assert server.stats().wire_count("framed", "pings_out") >= 1
        assert host.sessions.parked_count() == 1
        assert server.clients[cid].parked is True
        # Reaped is parked, not closed: the client comes back.
        assert conn.intern_atom("BACK") > 0
        assert transport.reconnects == 1

    def test_client_probes_flush_a_lagged_reply(self, server, wire_seed):
        host = make_host(server, seed=wire_seed)
        plan = FaultPlan(wire_seed)
        rule = plan.rule(
            LAG, probability=1.0, lag=2, direction="s2c", arm_after=1,
            max_fires=1, name="hold-reply",
        )
        conn, transport = connect(server, host, plan)
        # The reply to this request is held by the lag fault; the
        # transport's PING probes age it loose — no reconnect needed.
        assert conn.intern_atom("LAGGED") > 0
        assert rule.fires == 1
        assert transport.reconnects == 0
        assert transport._probes >= 1


# ---------------------------------------------------------------------------
# Degradation ladder: overflow, expiry, and the reconnect race
# ---------------------------------------------------------------------------


class TestDegradation:
    def overflow_setup(self, server):
        host = make_host(server, ring_capacity=3, ack_every=100)
        conn, transport = connect(server, host)
        wid = conn.create_window(conn.root_window(), 0, 0, 60, 40)
        conn.select_input(wid, EventMask.StructureNotify)
        conn.map_window(wid)
        conn.events()
        transport._link.cut()
        driver = ClientConnection(server, "driver")
        for x in range(10):  # 10 events into a 3-slot ring
            driver.move_window(wid, x, 0)
        return host, conn, transport, wid

    def test_ring_overflow_is_clean_session_loss(self, server):
        host, conn, transport, wid = self.overflow_setup(server)
        cid = conn.client_id
        with pytest.raises(SessionLost) as excinfo:
            conn.intern_atom("TOO-LATE")
        assert excinfo.value.reason == "event-ring-overflow"
        # The ordinary close path ran: record gone, windows destroyed,
        # nothing parked, nothing hung.
        assert cid not in server.clients
        assert wid not in server.windows
        assert host.sessions.parked_count() == 0
        assert server.stats().wire_count("framed", "sessions_lost") == 1
        assert not transport.is_alive()
        # SessionLost IS a ConnectionClosed: old handlers already cope.
        assert isinstance(excinfo.value, ConnectionClosed)

    def test_park_grace_expiry_rescues_the_estate(self, server):
        host = make_host(server, park_grace=30.0)
        conn, transport = connect(server, host)
        wid = conn.create_window(conn.root_window(), 0, 0, 60, 40)
        cid = conn.client_id
        transport._link.cut()
        host.advance(31.0)
        assert server.stats().wire_count("framed", "park_expired") == 1
        assert cid not in server.clients
        assert wid not in server.windows
        with pytest.raises(SessionLost) as excinfo:
            conn.intern_atom("GONE")
        assert excinfo.value.reason == "unknown-token"
        assert host.errors == []

    def test_reconnect_wins_the_race_just_inside_grace(self, server):
        host = make_host(server, park_grace=30.0)
        conn, transport = connect(server, host)
        wid = conn.create_window(conn.root_window(), 0, 0, 60, 40)
        transport._link.cut()
        host.advance(29.9)
        assert conn.window_exists(wid) is True
        assert transport.reconnects == 1
        assert server.stats().wire_count("framed", "park_expired") == 0

    def test_reconnect_loses_the_race_at_the_deadline(self, server):
        host = make_host(server, park_grace=30.0)
        conn, transport = connect(server, host)
        conn.create_window(conn.root_window(), 0, 0, 60, 40)
        transport._link.cut()
        host.advance(30.0)  # deadline inclusive: the session expired
        with pytest.raises(SessionLost):
            conn.intern_atom("LATE")
        assert not transport.is_alive()
        assert host.sessions.parked_count() == 0
        assert host.errors == []

    def test_backoff_sleeps_can_cross_the_deadline(self, server):
        # The grace clock keeps running while the client backs off: a
        # park_grace shorter than the first backoff delay expires the
        # session mid-recovery, and the client gets a clean loss.
        host = make_host(
            server, park_grace=0.01, backoff_base=0.05, jitter=0.0
        )
        conn, transport = connect(server, host)
        transport._link.cut()
        with pytest.raises(SessionLost) as excinfo:
            conn.intern_atom("RACED")
        assert excinfo.value.reason == "unknown-token"
        assert server.stats().wire_count("framed", "park_expired") == 1


# ---------------------------------------------------------------------------
# Link fault injector, kind by kind
# ---------------------------------------------------------------------------


def one_shot(kind, **kw):
    plan = FaultPlan(1)
    plan.rule(kind, probability=1.0, max_fires=1, **kw)
    return plan


REQ_FRAME = encode_frame(REQUEST, *encode_request("intern_atom", ("A",), {}))
EVT_FRAME = encode_frame(EVENT, 3, SEQ.pack(1) + b"body")


class TestLinkFaultInjector:
    def test_partition_drops_frame_and_cuts(self):
        inj = LinkFaultInjector(one_shot(PARTITION), "c2s")
        out, cut = inj.transit(REQ_FRAME)
        assert out == [] and cut is True

    def test_truncate_emits_half_then_cuts(self):
        inj = LinkFaultInjector(one_shot(TRUNCATE), "c2s")
        out, cut = inj.transit(REQ_FRAME)
        assert cut is True
        assert out == [REQ_FRAME[: len(REQ_FRAME) // 2]]

    def test_corrupt_poisons_the_decoder_deterministically(self):
        inj = LinkFaultInjector(one_shot(CORRUPT), "c2s")
        out, cut = inj.transit(REQ_FRAME)
        assert cut is False and len(out) == 1
        with pytest.raises(WireProtocolError):
            FrameDecoder().feed(out[0])

    def test_duplicate_hits_events_not_requests(self):
        plan = FaultPlan(1)
        plan.rule(DUPLICATE, probability=1.0, name="dup")
        inj = LinkFaultInjector(plan, "s2c")
        # A REQUEST/REPLY frame is not dedupable: the rule never
        # matches it (no draw, no fire) and the frame passes through.
        out, cut = inj.transit(REQ_FRAME)
        assert out == [REQ_FRAME] and cut is False
        assert plan.rules[0].fires == 0
        # An EVENT frame carries a sequence number: fair game.
        out, cut = inj.transit(EVT_FRAME)
        assert out == [EVT_FRAME, EVT_FRAME] and cut is False
        assert plan.rules[0].fires == 1

    def test_lag_holds_until_later_traffic_releases(self):
        inj = LinkFaultInjector(one_shot(LAG, lag=2), "s2c")
        out, _ = inj.transit(b"AAAAAAAA")
        assert out == []  # held
        out, _ = inj.transit(b"BBBBBBBB")
        assert out == [b"BBBBBBBB"]  # one transit aged, still held
        out, _ = inj.transit(b"CCCCCCCC")
        assert out == [b"CCCCCCCC", b"AAAAAAAA"]  # released after lag=2

    def test_reorder_swaps_adjacent_frames(self):
        inj = LinkFaultInjector(one_shot(REORDER), "s2c")
        out, _ = inj.transit(b"AAAAAAAA")
        assert out == []
        out, _ = inj.transit(b"BBBBBBBB")
        assert out == [b"BBBBBBBB", b"AAAAAAAA"]

    def test_partition_loses_held_frames_too(self):
        plan = FaultPlan(1)
        plan.rule(LAG, probability=1.0, lag=5, max_fires=1)
        plan.rule(PARTITION, probability=1.0, max_fires=1)
        inj = LinkFaultInjector(plan, "s2c")
        out, cut = inj.transit(b"AAAAAAAA")
        assert out == [] and cut is False
        out, cut = inj.transit(b"BBBBBBBB")
        assert out == [] and cut is True  # held frame died with the link

    def test_direction_filter(self):
        plan = FaultPlan(1)
        plan.rule(PARTITION, probability=1.0, direction="s2c")
        inj = LinkFaultInjector(plan, "c2s")
        out, cut = inj.transit(REQ_FRAME)
        assert out == [REQ_FRAME] and cut is False

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(PARTITION, direction="sideways")

    def test_every_injection_lands_in_the_plan_log(self):
        plan = FaultPlan(1)
        plan.rule(PARTITION, probability=1.0, max_fires=1, name="cutter")
        inj = LinkFaultInjector(plan, "c2s")
        inj.transit(REQ_FRAME)
        assert [f.kind for f in plan.log] == [PARTITION]
        assert plan.log[0].target == "link:c2s"
        assert plan.counts[PARTITION] == 1


# ---------------------------------------------------------------------------
# Seeded mixed chaos: heal everything, replay bit-identically
# ---------------------------------------------------------------------------


def chaos_plan(seed):
    plan = FaultPlan(seed)
    plan.rule(PARTITION, probability=0.01, arm_after=10, name="part")
    plan.rule(LAG, probability=0.02, lag=2, direction="s2c", name="lag")
    plan.rule(REORDER, probability=0.02, name="reorder")
    plan.rule(CORRUPT, probability=0.005, name="corrupt")
    plan.rule(DUPLICATE, probability=0.02, name="dup")
    return plan


def chaos_run(seed, steps=250):
    server = XServer()
    host = FramedHost(server, ResilienceConfig(seed=seed, park_grace=60.0))
    plan = chaos_plan(seed)
    conn, transport = connect(server, host, plan)
    wid = conn.create_window(conn.root_window(), 0, 0, 60, 40)
    conn.select_input(wid, EventMask.StructureNotify)
    conn.map_window(wid)
    rng = random.Random(seed ^ 0x5EED)
    observed = []
    for step in range(steps):
        x = rng.randint(0, 500)
        conn.move_window(wid, x, 0)
        if step % 10 == 0:
            host.heartbeat_tick()
        for event in conn.events():
            observed.append((type(event).__name__, getattr(event, "x", None)))
    assert conn.window_exists(wid) is True
    assert host.errors == []
    faults = [(f.serial, f.kind, f.target, f.detail) for f in plan.log]
    return {
        "reconnects": transport.reconnects,
        "delays": list(transport.delays),
        "faults": faults,
        "observed": observed,
        "lost": server.stats().wire_count("framed", "sessions_lost"),
    }


class TestSeededChaos:
    def test_mixed_faults_all_heal(self, wire_seed):
        result = chaos_run(wire_seed)
        assert result["faults"], "plan injected nothing — rules miswired"
        assert result["lost"] == 0
        assert result["reconnects"] >= 1

    def test_same_seed_replays_bit_identically(self, wire_seed):
        first = chaos_run(wire_seed)
        second = chaos_run(wire_seed)
        assert first == second


# ---------------------------------------------------------------------------
# Quota accounting across park / resume / session loss
# ---------------------------------------------------------------------------


class TestQuotaAccounting:
    """The quota ledger and the resilience layer must agree: a parked
    (link-lost) client's charges survive park -> resume intact, and a
    true SessionLost refunds everything through the ordinary close
    path's save-set rescue."""

    def charged_setup(self, server, **overrides):
        host = make_host(server, **overrides)
        conn, transport = connect(server, host)
        wids = [
            conn.create_window(conn.root_window(), 10 * i, 0, 60, 40)
            for i in range(3)
        ]
        for wid in wids:
            conn.map_window(wid)
        conn.set_string_property(wids[0], "WM_NAME", "quota-probe" * 8)
        return host, conn, transport, wids

    def test_charges_survive_park_and_resume(self, server):
        from repro.testing import quota_problems

        host, conn, transport, wids = self.charged_setup(server)
        cid = conn.client_id
        windows_before = server.quotas.windows[cid]
        bytes_before = server.quotas.prop_bytes[cid]
        assert windows_before == len(wids)
        assert bytes_before > 0

        transport._link.cut()
        # Parked, not closed: the estate stays registered and charged —
        # a flapping link must not be a quota-reset primitive.
        assert server.clients[cid].parked is True
        assert server.quotas.windows[cid] == windows_before
        assert server.quotas.prop_bytes[cid] == bytes_before
        assert quota_problems(server) == []

        # Resume; the charges carry over (no refund, no double-charge).
        assert conn.window_exists(wids[0]) is True
        assert transport.reconnects == 1
        assert server.quotas.windows[cid] == windows_before
        assert server.quotas.prop_bytes[cid] == bytes_before

        # New work charges on top of the preserved base.
        extra = conn.create_window(conn.root_window(), 0, 50, 30, 30)
        assert server.quotas.windows[cid] == windows_before + 1
        conn.destroy_window(extra)
        assert server.quotas.windows[cid] == windows_before
        assert quota_problems(server) == []

    def test_session_lost_refunds_every_charge(self, server):
        from repro.testing import quota_problems

        host, conn, transport, wids = self.charged_setup(
            server, park_grace=30.0
        )
        cid = conn.client_id
        assert server.quotas.windows[cid] == len(wids)
        assert server.quotas.prop_bytes[cid] > 0

        transport._link.cut()
        host.advance(31.0)  # grace expires: save-set rescue runs
        assert server.stats().wire_count("framed", "park_expired") == 1
        assert cid not in server.clients
        # Full refund: no window or byte charge outlives the client.
        assert server.quotas.windows[cid] == 0
        assert server.quotas.prop_bytes[cid] == 0
        assert quota_problems(server) == []
        with pytest.raises(SessionLost):
            conn.intern_atom("GONE")
        assert host.errors == []
