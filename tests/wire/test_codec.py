"""Codec round-trips: every request, every event, every error shape.

The contract under test is *exactness*: ``decode(encode(x)) == x``
including types that Python would happily conflate — tuples stay
tuples, ``EventMask`` stays an ``EventMask``, bools stay bools — plus
the defensive half: malformed bytes and unknown opcodes always raise
``WireProtocolError``, never anything else.
"""

import dataclasses
import random

import pytest

from repro.xserver import events as ev
from repro.xserver.bitmap import Bitmap
from repro.xserver.errors import (
    BadAccess,
    BadAlloc,
    BadAtom,
    BadMatch,
    BadValue,
    BadWindow,
    XError,
)
from repro.xserver.event_mask import EventMask
from repro.xserver.faults import ConnectionClosed, WMCrash
from repro.xserver.fuzz import FRAME_ATTACKS, malformed_frames
from repro.xserver.properties import Property
from repro.xserver.quotas import QuotaExceeded
from repro.xserver.wire import (
    EVENT,
    REQUEST,
    FrameDecoder,
    WireProtocolError,
    decode_error,
    decode_event,
    decode_request,
    decode_value,
    encode_error,
    encode_event,
    encode_frame,
    encode_request,
    encode_value,
)
from repro.xserver.wire.codec import EVENT_CLASSES, EVENT_OPCODES, REQUESTS


def roundtrip(value):
    return decode_value(encode_value(value))


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 255, 2**40, -(2**40),
        0.0, 1.5, -273.15, "", "hello", "üñíçødé ☃",
        b"", b"\x00\xff" * 8, [], [1, 2, 3], (), (1, "two", None),
        {}, {"a": 1, 2: "b"}, [[1, [2, [3]]]],
        EventMask.NoEvent, EventMask.Exposure | EventMask.KeyPress,
    ])
    def test_exact_round_trip(self, value, wire_seed):
        decoded = roundtrip(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_tuple_list_distinction_survives(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert roundtrip([1, 2]) == [1, 2]
        assert type(roundtrip((1, 2))) is tuple
        assert type(roundtrip([1, 2])) is list
        # Nested mixes too (ClientMessage.data is a tuple inside a dict).
        decoded = roundtrip({"data": (1, 2), "kids": [3, 4]})
        assert type(decoded["data"]) is tuple
        assert type(decoded["kids"]) is list

    def test_event_mask_keeps_its_type(self):
        mask = EventMask.SubstructureRedirect | EventMask.SubstructureNotify
        decoded = roundtrip(mask)
        assert decoded == mask
        assert isinstance(decoded, EventMask)

    def test_bools_are_not_ints(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True

    def test_property_round_trips(self):
        for prop in [
            Property(31, 8, b"hello\0"),
            Property(31, 8, b""),              # empty
            Property(6, 32, [1, 2, 3]),
            Property(6, 16, []),
        ]:
            decoded = roundtrip(prop)
            assert decoded == prop
            assert isinstance(decoded, Property)

    def test_bitmap_round_trips(self, wire_seed):
        rng = random.Random(wire_seed)
        for width, height in [(1, 1), (3, 5), (16, 16), (33, 7)]:
            rows = [[rng.random() < 0.5 for _ in range(width)]
                    for _ in range(height)]
            bitmap = Bitmap(width, height, rows)
            decoded = roundtrip(bitmap)
            assert decoded == bitmap

    def test_random_nested_values(self, wire_seed):
        rng = random.Random(wire_seed)

        def make(depth):
            kinds = ["int", "str", "bool", "none", "float", "bytes", "mask"]
            if depth < 3:
                kinds += ["list", "tuple", "dict"]
            kind = rng.choice(kinds)
            if kind == "int":
                return rng.randrange(-2**48, 2**48)
            if kind == "str":
                return "".join(chr(rng.randrange(32, 1000))
                               for _ in range(rng.randrange(8)))
            if kind == "bool":
                return rng.random() < 0.5
            if kind == "none":
                return None
            if kind == "float":
                return rng.uniform(-1e9, 1e9)
            if kind == "bytes":
                return bytes(rng.randrange(256)
                             for _ in range(rng.randrange(16)))
            if kind == "mask":
                return EventMask(rng.choice(list(EventMask)))
            if kind == "list":
                return [make(depth + 1) for _ in range(rng.randrange(4))]
            if kind == "tuple":
                return tuple(make(depth + 1) for _ in range(rng.randrange(4)))
            return {
                str(i): make(depth + 1) for i in range(rng.randrange(4))
            }

        for _ in range(200):
            value = make(0)
            assert roundtrip(value) == value

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireProtocolError):
            decode_value(encode_value(1) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireProtocolError):
            decode_value(b"\xf0")

    def test_truncated_values_rejected(self):
        for value in [12345, "hello", b"bytes", [1, 2, 3], 2.5]:
            data = encode_value(value)
            for cut in range(1, len(data)):
                with pytest.raises(WireProtocolError):
                    decode_value(data[:cut])


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------


def sample_event(cls, rng):
    """Build one instance of *cls* with randomised field values."""
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name == "data":          # ClientMessage payload
            kwargs[field.name] = tuple(
                rng.randrange(2**20) for _ in range(rng.randrange(6))
            )
        elif field.name == "keysym":
            kwargs[field.name] = rng.choice(["", "a", "F1", "Return"])
        elif field.type in ("bool",) or field.name in (
            "send_event", "override_redirect", "from_configure",
            "is_hint", "shaped",
        ):
            kwargs[field.name] = rng.random() < 0.5
        else:
            kwargs[field.name] = rng.randrange(-100, 2**24)
    return cls(**kwargs)


class TestEventCodec:
    def test_registry_covers_every_event_subclass(self):
        def walk(cls):
            yield cls
            for sub in cls.__subclasses__():
                yield from walk(sub)

        for cls in walk(ev.Event):
            assert cls in EVENT_OPCODES, f"{cls.__name__} has no wire opcode"

    def test_every_event_class_round_trips(self, wire_seed):
        rng = random.Random(wire_seed)
        for cls in EVENT_CLASSES:
            for _ in range(10):
                event = sample_event(cls, rng)
                opcode, payload = encode_event(event)
                decoded = decode_event(payload)
                assert type(decoded) is cls
                assert decoded == event
                # The wire must preserve the serial, not re-mint one.
                assert decoded.serial == event.serial

    def test_degenerate_client_message(self):
        empty = ev.ClientMessage(window=5, message_type=1, data=())
        decoded = decode_event(encode_event(empty)[1])
        assert decoded == empty
        assert decoded.data == ()

    def test_event_inside_value_codec(self):
        # SendEvent carries an event *inside* a request payload.
        event = ev.Expose(window=7, x=1, y=2, width=3, height=4, count=0)
        decoded = roundtrip(event)
        assert decoded == event

    def test_unknown_event_opcode_rejected(self):
        with pytest.raises(WireProtocolError):
            decode_event(b"\xf7\x01\x00")

    def test_field_count_mismatch_rejected(self):
        opcode, payload = encode_event(ev.Expose(window=1))
        # Claim the right class but lie about the field count.
        with pytest.raises(WireProtocolError):
            decode_event(payload[:1] + b"\x02" + payload[2:])


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


def sample_request(name, rng):
    """(args, kwargs) exercising *name*'s real wire shape."""
    w = rng.randrange(1, 2**24)
    samples = {
        "create_window": (
            (w, 256, 0, 0, 100, 80),
            {"border_width": 1, "win_class": 1, "override_redirect": False,
             "event_mask": EventMask.Exposure, "background": "gray",
             "cursor": None},
        ),
        "destroy_window": ((w,), {}),
        "destroy_subwindows": ((w,), {}),
        "map_window": ((w,), {}),
        "map_subwindows": ((w,), {}),
        "unmap_window": ((w,), {}),
        "reparent_window": ((w, w + 1, 10, -5), {}),
        "configure_window": (
            (w, 0x3),
            {"x": 5, "y": -7, "width": 0, "height": 0, "border_width": 0,
             "sibling": 0, "stack_mode": 0},
        ),
        "circulate_window": ((w, 0), {}),
        "change_window_attributes": (
            (w,), {"event_mask": EventMask.KeyPress | EventMask.KeyRelease}
        ),
        "change_property": (
            (w, 39, 31, 8, "x" * rng.choice([0, 1, 4096]), 0), {}
        ),
        "get_property": ((w, 39), {}),
        "delete_property": ((w, 39), {}),
        "list_properties": ((w,), {}),
        "send_event": (
            (w, ev.ClientMessage(window=w, message_type=9, data=(1, 2, 3)),
             EventMask.NoEvent, False),
            {},
        ),
        "query_tree": ((w,), {}),
        "get_geometry": ((w,), {}),
        "get_window_attributes": ((w,), {}),
        "translate_coordinates": ((w, w + 1, 3, 4), {}),
        "query_pointer": ((w,), {}),
        "window_exists": ((w,), {}),
        "set_input_focus": ((w, 1), {}),
        "get_input_focus": ((), {}),
        "change_save_set": ((w, 0), {}),
        "grab_pointer": ((w, EventMask.ButtonPress, False, None), {}),
        "ungrab_pointer": ((), {}),
        "grab_button": ((w, 1, 0, EventMask.ButtonPress, True, "fleur"), {}),
        "ungrab_button": ((w, 1, 0), {}),
        "grab_key": ((w, "F1", 4, False), {}),
        "warp_pointer": ((w, 10, 20), {}),
        "shape_set_mask": (
            (w, Bitmap(2, 2, [[True, False], [False, True]])),
            {"x_offset": 1, "y_offset": 2},
        ),
        "window_is_shaped": ((w,), {}),
        "intern_atom": (("WM_NAME", False), {}),
        "get_atom_name": ((39,), {}),
        "root_window": ((0,), {}),
        "screen_count": ((), {}),
        "screen_info": ((0,), {}),
        "set_coalescing": ((False,), {}),
        "note_drained": ((0,), {}),
        "count_discards": ((["Expose", "MotionNotify"],), {}),
        "close": ((), {}),
        "execute_batch": (
            (
                [
                    ("configure_window", (w, 3), {"x": 5, "y": 7}),
                    ("change_property", (w, 39, 31, 8, "swm", 0), {}),
                    ("delete_property", (w, 39), {}),
                ],
            ),
            {},
        ),
    }
    return samples[name]


class TestRequestCodec:
    def test_every_request_round_trips(self, wire_seed):
        rng = random.Random(wire_seed)
        for name in REQUESTS:
            args, kwargs = sample_request(name, rng)
            opcode, payload = encode_request(name, args, kwargs)
            back_name, back_args, back_kwargs = decode_request(opcode, payload)
            assert back_name == name
            assert back_args == args
            assert back_kwargs == kwargs

    def test_sample_table_covers_every_request(self, wire_seed):
        # The parametrised shapes above must not silently fall behind
        # the registry when a request is added.
        rng = random.Random(wire_seed)
        for name in REQUESTS:
            sample_request(name, rng)

    def test_max_length_swmcmd_string(self):
        # swmcmd-style property payloads: a maximal 8-bit string.
        text = "f.menu \"root\" " + "x" * 4096
        opcode, payload = encode_request(
            "change_property", (5, 39, 31, 8, text, 0), {}
        )
        _, args, _ = decode_request(opcode, payload)
        assert args[4] == text

    def test_unknown_request_opcode_rejected(self):
        opcode, payload = encode_request("map_window", (1,), {})
        with pytest.raises(WireProtocolError):
            decode_request(0x7777, payload)
        with pytest.raises(WireProtocolError):
            decode_request(0, payload)

    def test_malformed_request_payloads_rejected(self):
        opcode, _ = encode_request("map_window", (1,), {})
        for payload in [b"", b"\xff" * 4, encode_value([1, 2]),
                        encode_value((1,)) + b"junk"]:
            with pytest.raises(WireProtocolError):
                decode_request(opcode, payload)

    def test_non_string_keyword_rejected(self):
        opcode, _ = encode_request("map_window", (1,), {})
        payload = encode_value((1,)) + encode_value({1: 2})
        with pytest.raises(WireProtocolError):
            decode_request(opcode, payload)


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------


class TestErrorCodec:
    @pytest.mark.parametrize("error", [
        BadWindow(1234),
        BadWindow(1234, "gone"),
        BadValue(-1, "no such screen"),
        BadMatch(7, "not viewable"),
        BadAtom(99),
        BadAccess(256, "already redirected"),
        BadAlloc(None, "out of ids"),
        QuotaExceeded(5, "windows"),
    ])
    def test_x_errors_keep_class_resource_and_text(self, error):
        decoded = decode_error(encode_error(error))
        assert type(decoded) is type(error)
        assert decoded.resource == error.resource
        assert str(decoded) == str(error)
        assert isinstance(decoded, XError)

    def test_quota_exceeded_stays_distinct_from_bad_alloc(self):
        decoded = decode_error(encode_error(QuotaExceeded(3, "grabs")))
        assert isinstance(decoded, QuotaExceeded)
        assert type(decoded) is not BadAlloc

    def test_connection_closed_keeps_client_id(self):
        decoded = decode_error(encode_error(ConnectionClosed(42)))
        assert isinstance(decoded, ConnectionClosed)
        assert decoded.client_id == 42

    def test_wm_crash_keeps_crash_point(self):
        decoded = decode_error(encode_error(WMCrash("manage", 7)))
        assert isinstance(decoded, WMCrash)
        assert decoded.crash_point == "manage"
        assert decoded.client_id == 7

    def test_arbitrary_exception_degrades_to_protocol_error(self):
        decoded = decode_error(encode_error(RuntimeError("internal")))
        assert isinstance(decoded, WireProtocolError)
        assert "RuntimeError" in str(decoded)

    def test_malformed_error_payload_rejected(self):
        with pytest.raises(WireProtocolError):
            decode_error(encode_value("not a dict"))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_chunked_feed_reassembles_frames(self, wire_seed):
        rng = random.Random(wire_seed)
        frames = []
        blob = b""
        for i in range(20):
            opcode, payload = encode_request(
                "map_window", (rng.randrange(2**20),), {}
            )
            frames.append((REQUEST, opcode, payload))
            blob += encode_frame(REQUEST, opcode, payload)
        opcode, payload = encode_event(ev.Expose(window=1))
        frames.append((EVENT, opcode, payload))
        blob += encode_frame(EVENT, opcode, payload)

        decoder = FrameDecoder()
        got = []
        pos = 0
        while pos < len(blob):
            step = rng.randrange(1, 7)
            got.extend(decoder.feed(blob[pos:pos + step]))
            pos += step
        assert [(f.kind, f.opcode, f.payload) for f in got] == frames
        assert decoder.buffered == 0

    @pytest.mark.parametrize("family", FRAME_ATTACKS)
    def test_malformed_corpus_never_crashes(self, family, wire_seed):
        """Every corpus entry either poisons the decoder or decodes into
        frames whose payloads fail cleanly — WireProtocolError, nothing
        else, no exception escapes uncontrolled."""
        rng = random.Random(wire_seed)
        entries = [e for e in malformed_frames(rng) if e[0] == family]
        assert entries, f"corpus family {family} is empty"
        for _, data in entries:
            decoder = FrameDecoder()
            try:
                frames = decoder.feed(data)
            except WireProtocolError:
                # Poisoned: every further feed must also raise.
                with pytest.raises(WireProtocolError):
                    decoder.feed(b"\x00")
                continue
            # Structurally valid frames: the payload layer must reject
            # garbage with the same error type (or decode fully — e.g.
            # a truncated prefix that simply buffers).
            for frame in frames:
                try:
                    if frame.kind == REQUEST:
                        decode_request(frame.opcode, frame.payload)
                    else:
                        decode_value(frame.payload)
                except WireProtocolError:
                    pass

    def test_oversized_outgoing_frame_is_our_error(self):
        from repro.xserver.wire import MAX_FRAME_SIZE, WireError
        with pytest.raises(WireError):
            encode_frame(REQUEST, 1, b"\x00" * (MAX_FRAME_SIZE + 1))
