"""Seeding for the wire suite.

Same discipline as the chaos suite: one base seed from the environment
(``WIRE_SEED``, falling back to ``CHAOS_SEED``, default 1337), mixed
with each test's node id so adding a test never shifts its neighbours'
random streams.  Replay a CI failure with::

    WIRE_SEED=<seed> PYTHONPATH=src python -m pytest tests/wire -q
"""

import os
import zlib

import pytest

DEFAULT_SEED = 1337
_SPREAD = 2654435761


def base_seed() -> int:
    raw = os.environ.get("WIRE_SEED") or os.environ.get("CHAOS_SEED")
    return int(raw) if raw else DEFAULT_SEED


def derive_seed(base: int, token: str) -> int:
    return (base * _SPREAD + zlib.crc32(token.encode())) % 2**31


@pytest.fixture
def wire_seed(request) -> int:
    """This test's private seed, derived from WIRE_SEED + node id."""
    return derive_seed(base_seed(), request.node.nodeid)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    terminalreporter.write_line(
        f"wire base seed: {base_seed()} "
        f"(replay: WIRE_SEED={base_seed()} pytest tests/wire -q)"
    )
