"""TCP integration: real sockets, a real WM, hostile peers.

The headline test runs 8 concurrent real-socket clients — seven benign
``TcpTransport`` connections doing ordinary window work and one hostile
raw socket that floods pipelined requests without ever reading — to
completion with zero unhandled exceptions, clean consistency + quota
oracles, and BackpressureStage throttling observable as TCP write
pauses in ``server.stats()``.
"""

import random
import socket
import struct
import threading
import time

import pytest

from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.testing import quota_problems, wm_consistency_problems
from repro.xserver import ClientConnection, EventMask, XServer
from repro.xserver import events as ev
from repro.xserver.faults import ConnectionClosed
from repro.xserver.fuzz import malformed_frames
from repro.xserver.quotas import QuotaLimits
from repro.xserver.wire import (
    ERROR,
    HELLO,
    REPLY,
    REQUEST,
    WELCOME,
    FrameDecoder,
    ResilienceConfig,
    SessionLost,
    TcpTransport,
    WireServer,
    decode_value,
    encode_frame,
    encode_request,
    encode_value,
)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def server():
    # Tight water marks so backpressure engages within test-sized
    # floods (same idiom as the quota suite).
    return XServer(quota_limits=QuotaLimits(
        high_water=64, low_water=16, hard_cap=256, coalesce_scan=16,
    ))


@pytest.fixture
def wire(server):
    # Small socket/write buffers so a non-reading peer triggers
    # pause_writing within test-sized floods.
    ws = WireServer(server, write_high_water=16 * 1024, sndbuf=8 * 1024)
    ws.start()
    yield ws
    ws.stop()


def connect(wire, name, coalesce=True):
    return ClientConnection(
        name=name,
        coalesce=coalesce,
        transport=TcpTransport(port=wire.port),
    )


def tiny_rcvbuf_socket(port):
    """A raw connection whose kernel receive buffer is as small as the
    OS allows, so a non-reading peer backs the server's writes up into
    the asyncio buffer quickly (deterministic pause_writing)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    sock.settimeout(10)
    sock.connect(("127.0.0.1", port))
    return sock


def tcp_pauses(wire):
    return wire.call(
        lambda: wire.server.stats().wire_count("tcp", "pauses")
    )


class TestTcpBasics:
    def test_request_reply_events_and_errors(self, server, wire):
        conn = connect(wire, "basic")
        root = conn.root_window()
        wid = conn.create_window(root, 1, 2, 30, 20)
        conn.select_input(wid, EventMask.StructureNotify)
        assert conn.map_window(wid) is True
        assert conn.get_geometry(wid) == (1, 2, 30, 20, 0)
        assert conn.window_exists(wid)
        assert not conn.window_exists(wid + 999)

        from repro.xserver import BadWindow
        with pytest.raises(BadWindow):
            conn.map_window(wid + 999)

        assert wait_until(lambda: conn.pending() > 0)
        assert any(
            isinstance(e, ev.MapNotify) for e in conn.flush_events()
        )
        conn.close()
        assert not conn.is_alive()
        assert wait_until(
            lambda: wire.call(lambda: conn.client_id not in server.clients)
        )
        assert wire.errors == []

    def test_properties_and_atoms_across_the_wire(self, server, wire):
        conn = connect(wire, "props")
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.set_string_property(wid, "WM_NAME", "remote")
        assert conn.get_string_property(wid, "WM_NAME") == "remote"
        atom = conn.intern_atom("WM_NAME")
        assert conn.get_atom_name(atom) == "WM_NAME"
        assert atom in conn.list_properties(wid)
        assert conn.screen_info()["root"] == conn.root_window()
        conn.close()
        assert wire.errors == []

    def test_handlers_fire_for_pushed_events(self, server, wire):
        conn = connect(wire, "reactive")
        seen = []
        conn.event_handlers.append(lambda e: seen.append(type(e).__name__))
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.select_input(wid, EventMask.StructureNotify)
        conn.map_window(wid)
        assert wait_until(lambda: (conn.pending(), "MapNotify" in seen)[1])
        conn.close()
        assert wire.errors == []

    def test_server_side_kill_reaches_the_client(self, server, wire):
        conn = connect(wire, "victim")
        assert conn.is_alive()
        wire.call(server.close_client, conn.client_id)
        assert wait_until(lambda: not conn.is_alive())
        with pytest.raises(ConnectionClosed):
            conn.create_window(conn.root_window(), 0, 0, 5, 5)
        assert wire.errors == []


class TestMalformedFrames:
    def test_corpus_against_live_server(self, server, wire, wire_seed):
        """Every malformed byte string costs at most its own connection:
        the server counts a protocol error, drops the peer, and keeps
        serving well-behaved clients."""
        rng = random.Random(wire_seed)
        corpus = malformed_frames(rng)
        for label, data in corpus:
            with socket.create_connection(
                ("127.0.0.1", wire.port), timeout=5
            ) as sock:
                sock.sendall(data)
                sock.settimeout(5)
                # The server answers with an ERROR frame and/or closes;
                # either way the stream ends.  Entries that are mere
                # truncated prefixes just buffer until our close.
                try:
                    while sock.recv(4096):
                        pass
                except OSError:
                    pass
        # A fresh benign client still gets full service.
        conn = connect(wire, "survivor")
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        assert conn.map_window(wid)
        conn.close()
        stats = wire.call(lambda: server.stats().snapshot())
        assert stats["wire"]["tcp"]["protocol_errors"] > 0
        assert wire.errors == []

    def test_poisoned_connection_is_dropped(self, server, wire):
        with socket.create_connection(
            ("127.0.0.1", wire.port), timeout=5
        ) as sock:
            sock.sendall(struct.pack(">I", 0xFFFFFFFF))  # absurd length
            sock.settimeout(5)
            chunks = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    chunks += chunk
            except OSError:
                pass
        # Connection ended; no record leaked behind it.
        assert wire.call(lambda: len(server.clients)) == 0
        assert wire.errors == []


class TestEightClientIntegration:
    def benign_worker(self, wire, index, rng_seed, failures):
        try:
            rng = random.Random(rng_seed)
            conn = connect(wire, f"benign-{index}")
            root = conn.root_window()
            windows = []
            for step in range(30):
                action = rng.randrange(5)
                if action == 0 or not windows:
                    wid = conn.create_window(
                        root, rng.randrange(200), rng.randrange(200),
                        20 + rng.randrange(80), 20 + rng.randrange(80),
                    )
                    conn.select_input(
                        wid, EventMask.StructureNotify | EventMask.Exposure
                    )
                    windows.append(wid)
                elif action == 1:
                    conn.map_window(rng.choice(windows))
                elif action == 2:
                    conn.configure_window(
                        rng.choice(windows),
                        x=rng.randrange(300), y=rng.randrange(300),
                    )
                elif action == 3:
                    wid = rng.choice(windows)
                    conn.set_string_property(
                        wid, "WM_NAME", f"win-{index}-{step}"
                    )
                    assert conn.get_string_property(
                        wid, "WM_NAME"
                    ) == f"win-{index}-{step}"
                else:
                    conn.flush_events()
            assert conn.is_alive()
            conn.flush_events()
            conn.close()
        except Exception as err:  # noqa: BLE001 - the oracle is "none"
            failures.append((index, repr(err)))

    def read_frame(self, sock, decoder, pending, kinds=(REPLY, ERROR)):
        """Next frame of the wanted kinds; events interleave freely."""
        while True:
            while pending:
                frame = pending.pop(0)
                if frame.kind in kinds:
                    return frame
            chunk = sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed during handshake")
            pending.extend(decoder.feed(chunk))

    def hostile_worker(self, wire, failures):
        """A raw socket that handshakes politely, subscribes to events,
        then floods pipelined requests without ever reading again —
        reply and event frames back up in the kernel + asyncio write
        buffer until the server pauses, its server-side queue grows,
        and backpressure sheds/throttles.  The finale is a malformed
        frame, which costs it the connection."""
        try:
            sock = tiny_rcvbuf_socket(wire.port)
            decoder = FrameDecoder()
            pending = []
            sock.sendall(encode_frame(HELLO, 0, encode_value(
                {"name": "hostile", "coalesce": False}
            )))
            welcome = decode_value(
                self.read_frame(sock, decoder, pending,
                                kinds=(WELCOME,)).payload
            )
            wid = welcome["xid_base"]

            def ask(name, *args, **kwargs):
                op, payload = encode_request(name, args, kwargs)
                sock.sendall(encode_frame(REQUEST, op, payload))
                return decode_value(
                    self.read_frame(sock, decoder, pending).payload
                )

            root = ask("root_window")
            ask("create_window", wid, root, 0, 0, 32, 32,
                event_mask=EventMask.Exposure | EventMask.StructureNotify)
            ask("map_window", wid)
            # Storm: every request both awaits no reply and queues an
            # Expose at our own never-drained connection.
            op, payload = encode_request(
                "send_event",
                (wid, ev.Expose(window=wid, width=1, height=1),
                 EventMask.Exposure, False),
                {},
            )
            blob = encode_frame(REQUEST, op, payload) * 50
            for _ in range(100):
                try:
                    sock.sendall(blob)
                except OSError:
                    return  # server hung up on us: acceptable
            # Hold the socket open (still not reading) until the
            # server's replies have demonstrably backed up into a TCP
            # write pause; only then deliver the malformed goodbye.
            wait_until(lambda: tcp_pauses(wire) > 0, timeout=30)
            try:
                sock.sendall(b"\xde\xad\xbe\xef" * 4)  # malformed goodbye
            except OSError:
                pass  # already RST by the server: acceptable
            sock.close()
        except Exception as err:  # noqa: BLE001
            failures.append(("hostile", repr(err)))

    def test_eight_concurrent_clients_with_oracles(self, server, wire,
                                                   wire_seed):
        # A real WM manages the server over loopback while remote
        # clients work it over TCP; its handlers run reactively on the
        # wire server's loop thread.
        wm = wire.call(
            lambda: Swm(server, load_template("OpenLook+"),
                        places_path="/tmp/swm-wire-test.places")
        )
        failures = []
        threads = [
            threading.Thread(
                target=self.benign_worker,
                args=(wire, i, wire_seed + i, failures),
            )
            for i in range(7)
        ]
        threads.append(
            threading.Thread(target=self.hostile_worker,
                             args=(wire, failures))
        )
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 60
        for thread in threads:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        assert not any(t.is_alive() for t in threads), "worker wedged"

        # Zero unhandled exceptions anywhere: workers, loop, protocol.
        assert failures == []
        assert wire.errors == []

        # Oracles run on the loop thread, against quiesced state.
        assert wire.call(lambda: quota_problems(server)) == []
        assert wire.call(lambda: wm_consistency_problems(wm)) == []

        stats = wire.call(lambda: server.stats().snapshot())
        wire_stats = stats["wire"]["tcp"]
        # Backpressure became real flow control: the non-reading peer
        # forced actual TCP write pauses...
        assert wire_stats["pauses"] > 0
        # ...and the server-side queue hit the water marks hard enough
        # to throttle or shed (the hostile peer's queue was bounded).
        throttled = sum(stats["quotas"]["throttles"].values())
        shed = sum(stats["quotas"]["shed"].values())
        forced = sum(stats["quotas"]["force_coalesced"].values())
        assert throttled + shed + forced > 0
        assert wire_stats["frames_in"] > 1000
        assert wire_stats["bytes_out"] > 0

        # Malformed frames are counted and contained, even after the
        # storm.  (The hostile's goodbye races against the server
        # dropping it at the hard cap, so assert on a fresh socket.)
        with socket.create_connection(("127.0.0.1", wire.port),
                                      timeout=5) as sock:
            sock.sendall(b"\xde\xad\xbe\xef" * 4)
            assert wait_until(
                lambda: wire.call(
                    lambda: server.stats().wire_count(
                        "tcp", "protocol_errors")
                ) > 0
            )


class TestStartupFailure:
    def test_port_conflict_surfaces_on_start(self, server):
        """Satellite check: start() must raise the loop thread's bind
        error instead of returning as if listening."""
        first = WireServer(server)
        first.start()
        try:
            second = WireServer(XServer(), port=first.port)
            with pytest.raises(OSError):
                second.start()
        finally:
            first.stop()


class TestAbruptDisconnect:
    """A peer that vanishes at the worst possible byte costs exactly
    its own connection: the record is cleaned up (save-set rescue runs)
    and no exception escapes to the loop."""

    def handshake(self, sock, name="abrupt"):
        sock.sendall(encode_frame(HELLO, 0, encode_value(
            {"name": name, "coalesce": True}
        )))
        decoder = FrameDecoder()
        frames = []
        while not frames:
            chunk = sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed during handshake")
            frames.extend(decoder.feed(chunk))
        assert frames[0].kind == WELCOME
        return decode_value(frames[0].payload), decoder

    def request_frame(self):
        return encode_frame(
            REQUEST, *encode_request("intern_atom", ("ABRUPT",), {})
        )

    def assert_cleaned_up(self, wire, server, cid):
        assert wait_until(
            lambda: wire.call(lambda: cid not in server.clients)
        )
        assert wire.errors == []

    def test_close_mid_frame_header(self, server, wire):
        with socket.create_connection(
            ("127.0.0.1", wire.port), timeout=5
        ) as sock:
            welcome, _ = self.handshake(sock)
            sock.sendall(self.request_frame()[:5])  # half a header
        self.assert_cleaned_up(wire, server, welcome["client_id"])

    def test_close_mid_frame_payload(self, server, wire):
        with socket.create_connection(
            ("127.0.0.1", wire.port), timeout=5
        ) as sock:
            welcome, _ = self.handshake(sock)
            frame = self.request_frame()
            sock.sendall(frame[:-3])  # header complete, payload short
        self.assert_cleaned_up(wire, server, welcome["client_id"])

    def test_half_close_during_reply(self, server, wire):
        """The peer shuts its write side while a reply is in flight:
        the reply is still delivered, then the stream ends cleanly."""
        with socket.create_connection(
            ("127.0.0.1", wire.port), timeout=5
        ) as sock:
            welcome, decoder = self.handshake(sock)
            sock.sendall(self.request_frame())
            sock.shutdown(socket.SHUT_WR)
            got = []
            sock.settimeout(10)
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    got.extend(decoder.feed(chunk))
            except OSError:
                pass
            assert any(f.kind == REPLY for f in got)
        self.assert_cleaned_up(wire, server, welcome["client_id"])

    def test_windows_are_rescued_on_abrupt_close(self, server, wire):
        transport = TcpTransport(port=wire.port)
        conn = ClientConnection(name="doomed", transport=transport)
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.map_window(wid)
        cid = conn.client_id
        # Yank the socket out from under the transport: no goodbye.
        transport._sock.close()
        self.assert_cleaned_up(wire, server, cid)
        assert wire.call(lambda: wid not in server.windows)


@pytest.fixture
def rserver():
    return XServer()


@pytest.fixture
def rwire(rserver):
    # Long heartbeat so reaping never interferes with reconnect tests;
    # the reap test builds its own server with a twitchy heartbeat.
    ws = WireServer(rserver, resilience=ResilienceConfig(
        seed=7, heartbeat_interval=5.0, park_grace=30.0,
    ))
    ws.start()
    yield ws
    ws.stop()


def resilient_transport(port, seed):
    return TcpTransport(port=port, resilience=ResilienceConfig(
        seed=seed, backoff_base=0.01, backoff_cap=0.1, max_attempts=8,
    ))


class TestTcpResilience:
    def test_reconnect_resumes_with_windows_intact(self, rserver, rwire,
                                                   wire_seed):
        transport = resilient_transport(rwire.port, wire_seed)
        conn = ClientConnection(name="phoenix", transport=transport)
        wid = conn.create_window(conn.root_window(), 0, 0, 20, 20)
        conn.map_window(wid)
        cid = conn.client_id

        # Yank the socket; the server notices the EOF and parks.
        transport._sock.shutdown(socket.SHUT_RDWR)
        assert wait_until(
            lambda: rwire.call(lambda: rserver.clients[cid].parked)
        )
        assert rwire.call(lambda: rwire.sessions.parked_count()) == 1

        # The next request transparently reconnects and resumes: same
        # client id, same windows, no exception surfaced.
        assert conn.window_exists(wid) is True
        assert transport.reconnects == 1
        assert len(transport.delays) >= 1
        assert conn.client_id == cid
        assert rwire.call(lambda: rserver.clients[cid].parked) is False
        assert rwire.call(
            lambda: rserver.stats().wire_count("tcp", "resumed")
        ) == 1
        conn.close()
        assert rwire.errors == []

    def test_repeated_flaps_keep_healing(self, rserver, rwire, wire_seed):
        transport = resilient_transport(rwire.port, wire_seed)
        conn = ClientConnection(name="flappy", transport=transport)
        wid = conn.create_window(conn.root_window(), 0, 0, 20, 20)
        cid = conn.client_id
        for flap in range(3):
            transport._sock.shutdown(socket.SHUT_RDWR)
            assert wait_until(
                lambda: rwire.call(lambda: rserver.clients[cid].parked)
            )
            conn.move_window(wid, flap, 0)
            assert conn.get_geometry(wid)[0] == flap
        assert transport.reconnects == 3
        conn.close()
        assert rwire.errors == []

    def test_silent_peer_is_reaped_parked_then_rescued(self, rserver):
        ws = WireServer(rserver, resilience=ResilienceConfig(
            seed=7, heartbeat_interval=0.05, miss_budget=2,
            park_grace=0.5,
        ))
        ws.start()
        try:
            sock = socket.create_connection(
                ("127.0.0.1", ws.port), timeout=5
            )
            sock.sendall(encode_frame(HELLO, 0, encode_value(
                {"name": "silent", "coalesce": True}
            )))
            decoder = FrameDecoder()
            frames = []
            while not frames:
                frames.extend(decoder.feed(sock.recv(4096)))
            cid = decode_value(frames[0].payload)["client_id"]
            # Go silent: never answer the server's PING probes.  The
            # server burns the miss budget, reaps us into a parked
            # session, then expires the park and rescues the estate.
            assert wait_until(
                lambda: ws.call(lambda: rserver.stats().wire_count(
                    "tcp", "peers_reaped")) == 1
            )
            assert wait_until(
                lambda: ws.call(lambda: rserver.stats().wire_count(
                    "tcp", "park_expired")) == 1
            )
            assert ws.call(lambda: cid not in rserver.clients)
            assert ws.call(lambda: ws.sessions.parked_count()) == 0
            sock.close()
            assert ws.errors == []
        finally:
            ws.stop()

    def test_dead_server_is_a_clean_session_loss(self, wire_seed):
        server = XServer()
        ws = WireServer(server, resilience=ResilienceConfig(seed=7))
        ws.start()
        transport = resilient_transport(ws.port, wire_seed)
        conn = ClientConnection(name="orphan", transport=transport)
        assert conn.intern_atom("ALIVE") > 0
        ws.stop()
        # Every reconnect attempt fails; the bottom rung is a clean,
        # bounded SessionLost — never a hang.
        with pytest.raises(SessionLost):
            conn.intern_atom("DEAD")
        assert not transport.is_alive()
        assert len(transport.delays) == 8  # all attempts, all backed off


class TestBackpressureFlowControl:
    def test_non_reading_client_is_paused_then_bounded(self, server, wire):
        """Flood one non-reading socket with events; the write pause
        must show up in stats and the server-side queue must stay under
        the hard cap (BackpressureStage did its job through the wire)."""
        sender = connect(wire, "sender")
        lurker_sock = tiny_rcvbuf_socket(wire.port)
        lurker_sock.sendall(encode_frame(HELLO, 0, encode_value(
            {"name": "lurker", "coalesce": False}
        )))
        # Let the server register the lurker, find its id + a window.
        assert wait_until(lambda: wire.call(lambda: len(server.clients)) >= 2)
        lurker_id = wire.call(
            lambda: next(cid for cid, sink in server.clients.items()
                         if sink.name == "lurker")
        )
        root = sender.root_window()

        def select_for_lurker():
            record = server.clients[lurker_id]
            # The lurker never reads its WELCOME — irrelevant; select
            # events on its behalf server-side to aim the flood.
            wid = server.create_window(
                lurker_id, record.xids.allocate(), root, 0, 0, 10, 10,
                event_mask=EventMask.Exposure,
            ).id
            server.map_window(lurker_id, wid)
            return wid

        wid = wire.call(select_for_lurker)
        # Hammer Expose at the lurker via SendEvent from the sender.
        for burst in range(60):
            for i in range(20):
                sender.send_event(
                    wid,
                    ev.Expose(window=wid, x=i, y=burst, width=1, height=1),
                    EventMask.Exposure,
                )
        stats = wire.call(lambda: server.stats().snapshot())
        queue_len = wire.call(
            lambda: len(server.clients[lurker_id]._queue)
            if lurker_id in server.clients else 0
        )
        hard_cap = server.quotas.limits.hard_cap
        assert queue_len <= hard_cap
        assert stats["wire"]["tcp"]["pauses"] > 0
        assert wire.call(lambda: quota_problems(server)) == []
        sender.close()
        lurker_sock.close()
        assert wire.errors == []
