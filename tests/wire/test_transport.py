"""The ClientConnection split: proxy + ServerConnection over loopback.

Regression coverage for the refactor's contracts: the server-side
record is what ``server.clients`` holds (with the attributes the
oracles, fault plans and chaos predicates read), the loopback proxy
shares its queue with the record (synchronous delivery is unchanged),
and the two satellite fixes — close() after a server-side teardown is a
no-op, and flush_events/QueueEmpty route through the transport without
double-counting drops.
"""

import pytest

from repro.xserver import (
    ClientConnection,
    ConnectionClosed,
    EventMask,
    QueueEmpty,
    XServer,
)
from repro.xserver import events as ev
from repro.xserver.wire import LoopbackTransport, ServerConnection


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def conn(server):
    return ClientConnection(server, "app")


def make_window(conn, mask=EventMask.StructureNotify | EventMask.Exposure):
    wid = conn.create_window(conn.root_window(), 0, 0, 50, 50)
    conn.select_input(wid, mask)
    conn.map_window(wid)
    return wid


class TestConnectionSplit:
    def test_server_registers_the_record_not_the_proxy(self, server, conn):
        record = server.clients[conn.client_id]
        assert isinstance(record, ServerConnection)
        assert record is not conn
        # The attributes the chaos predicates, fault plans and quota
        # oracle read off server.clients entries:
        assert record.name == "app"
        assert record._queue is conn._queue
        assert record.pipeline is conn.pipeline

    def test_loopback_queue_is_shared(self, server, conn):
        wid = make_window(conn)
        conn.flush_events()
        conn.unmap_window(wid)
        record = server.clients[conn.client_id]
        assert record._queue is conn._queue
        assert len(record._queue) > 0
        # Draining the proxy drains the record (same deque object).
        conn.flush_events()
        assert len(record._queue) == 0

    def test_record_queue_event_reaches_proxy_handlers(self, server, conn):
        seen = []
        conn.event_handlers.append(seen.append)
        record = server.clients[conn.client_id]
        event = ev.Expose(window=5)
        record.queue_event(event)
        assert seen == [event]
        assert conn.next_event() is event

    def test_transport_is_loopback_by_default(self, conn):
        assert isinstance(conn._transport, LoopbackTransport)
        assert conn.server is conn._transport.server

    def test_constructor_requires_server_or_transport(self):
        with pytest.raises(TypeError):
            ClientConnection()


class TestCloseIsAliveConvergence:
    """Satellite: voluntary close() after a server-side teardown must
    not re-enter close_client."""

    def count_close_calls(self, server, monkeypatch):
        calls = []
        original = server.close_client

        def counting(client_id):
            calls.append(client_id)
            original(client_id)

        monkeypatch.setattr(server, "close_client", counting)
        return calls

    def test_close_after_server_side_kill_is_noop(
        self, server, conn, monkeypatch
    ):
        calls = self.count_close_calls(server, monkeypatch)
        server.close_client(conn.client_id)  # fault KILL path
        assert not conn.is_alive()
        assert calls == [conn.client_id]

        conn.close()  # voluntary close on the corpse
        assert calls == [conn.client_id], "close() re-entered close_client"
        assert conn.closed
        assert not conn.is_alive()

    def test_close_after_abandon_is_noop(self, server, conn, monkeypatch):
        wid = make_window(conn)
        calls = self.count_close_calls(server, monkeypatch)
        server.abandon_client(conn.client_id)  # RetainPermanent
        assert not conn.is_alive()

        conn.close()
        assert calls == [], "close() re-entered close_client after abandon"
        # The abandoned window must survive the voluntary close — the
        # whole point of RetainPermanent zombies.
        assert not server.window(wid).destroyed

    def test_voluntary_close_still_tears_down(self, server, conn, monkeypatch):
        wid = make_window(conn)
        calls = self.count_close_calls(server, monkeypatch)
        conn.close()
        assert calls == [conn.client_id]
        assert conn.closed and not conn.is_alive()
        assert wid not in server.windows or server.windows[wid].destroyed

    def test_double_close_runs_teardown_once(self, server, conn, monkeypatch):
        calls = self.count_close_calls(server, monkeypatch)
        conn.close()
        conn.close()
        assert calls == [conn.client_id]

    def test_requests_after_server_side_kill_raise(self, server, conn):
        server.close_client(conn.client_id)
        with pytest.raises(ConnectionClosed):
            conn.create_window(256, 0, 0, 10, 10)

    def test_connection_closed_hook_fires_once(self, server, conn):
        fired = []
        record = server.clients[conn.client_id]
        record.on_closed = lambda: fired.append(True)
        server.close_client(conn.client_id)
        server.close_client(conn.client_id)  # second call: already gone
        assert fired == [True]

    def test_connection_closed_hook_fires_on_abandon(self, server, conn):
        fired = []
        record = server.clients[conn.client_id]
        record.on_closed = lambda: fired.append(True)
        server.abandon_client(conn.client_id)
        assert fired == [True]


class TestEventRouting:
    """Satellite: flush_events discards and QueueEmpty behave
    identically through the transport seam."""

    def test_queue_empty_raises_through_proxy(self, conn):
        with pytest.raises(QueueEmpty):
            conn.next_event()
        # QueueEmpty subclasses IndexError for legacy callers.
        with pytest.raises(IndexError):
            conn.next_event()

    def test_flush_discards_counted_once(self, server, conn):
        wid = make_window(conn)
        conn.flush_events()  # drop setup noise
        server.stats().reset()
        conn.unmap_window(wid)
        conn.map_window(wid)  # UnmapNotify + MapNotify (+ Expose)
        before = server.stats().dropped_count(client_id=conn.client_id)
        kept = conn.flush_events(ev.MapNotify)
        assert [type(e).__name__ for e in kept] == ["MapNotify"]
        after = server.stats().dropped_count(client_id=conn.client_id)
        discarded = after - before
        # Exactly the non-matching events, each counted exactly once.
        assert discarded == server.stats().dropped_count(
            "UnmapNotify", conn.client_id
        ) + server.stats().dropped_count("Expose", conn.client_id)
        assert server.stats().dropped_count("UnmapNotify", conn.client_id) == 1

    def test_flush_without_filter_counts_nothing(self, server, conn):
        wid = make_window(conn)
        server.stats().reset()
        conn.unmap_window(wid)
        conn.flush_events()
        assert server.stats().dropped_count(client_id=conn.client_id) == 0

    def test_drain_feeds_quota_watchdog(self, server, conn):
        # next_event reports the drain exactly once per event popped.
        wid = make_window(conn)
        assert conn.pending() > 0
        drained_before = conn.client_id in server.quotas._drained
        server.quotas._drained.discard(conn.client_id)
        conn.next_event()
        assert conn.client_id in server.quotas._drained

    def test_is_alive_tracks_record_removal(self, server, conn):
        assert conn.is_alive()
        del server.clients[conn.client_id]  # server lost the record
        assert not conn.is_alive()
