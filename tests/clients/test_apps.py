"""Canned clients: option parsing, ICCCM properties, behaviours."""

import pytest

from repro import icccm
from repro.clients import (
    APP_REGISTRY,
    CmdTool,
    CommandLineError,
    MultiWindowApp,
    OClock,
    XClock,
    XTerm,
    launch_command,
    parse_xt_options,
    parse_xview_options,
)
from repro.icccm.hints import ICONIC_STATE, P_RESIZE_INC, US_POSITION, US_SIZE
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


class TestXtOptionParsing:
    def test_geometry(self):
        options = parse_xt_options(["xclock", "-geometry", "100x100+10+20"])
        geo = options["geometry"]
        assert (geo.width, geo.x) == (100, 10)

    def test_geom_alias(self):
        options = parse_xt_options(["oclock", "-geom", "100x100"])
        assert options["geometry"].width == 100

    def test_iconic_and_title(self):
        options = parse_xt_options(["xterm", "-iconic", "-title", "shell"])
        assert options["iconic"] is True
        assert options["title"] == "shell"

    def test_missing_value(self):
        with pytest.raises(CommandLineError):
            parse_xt_options(["xclock", "-geometry"])

    def test_unknown_options_kept(self):
        options = parse_xt_options(["xterm", "-e", "vi"])
        assert options["extra"] == ["-e", "vi"]


class TestXViewOptionParsing:
    def test_position_and_size(self):
        options = parse_xview_options(["cmdtool", "-Wp", "10", "20", "-Ws", "600", "400"])
        assert options["position"] == (10, 20)
        assert options["size"] == (600, 400)

    def test_icon_position(self):
        options = parse_xview_options(["cmdtool", "-WP", "5", "6"])
        assert options["icon_position"] == (5, 6)

    def test_iconic(self):
        assert parse_xview_options(["cmdtool", "-Wi"])["iconic"] is True


class TestAppCreation:
    def test_xclock_properties(self, server):
        app = XClock(server, ["xclock", "-geometry", "120x120+50+60"])
        conn = app.conn
        assert icccm.get_wm_class(conn, app.wid) == ("xclock", "XClock")
        assert icccm.get_wm_name(conn, app.wid) == "xclock"
        assert icccm.get_wm_command(conn, app.wid) == [
            "xclock", "-geometry", "120x120+50+60",
        ]
        assert icccm.get_wm_client_machine(conn, app.wid) == "localhost"
        x, y, w, h, _ = conn.get_geometry(app.wid)
        assert (x, y, w, h) == (50, 60, 120, 120)

    def test_geometry_sets_usposition(self, server):
        app = XClock(server, ["xclock", "-geometry", "+10+10"])
        hints = icccm.get_wm_normal_hints(app.conn, app.wid)
        assert hints.flags & US_POSITION

    def test_no_position_no_flags(self, server):
        app = XClock(server, ["xclock"])
        hints = icccm.get_wm_normal_hints(app.conn, app.wid)
        assert not hints.user_position and not hints.program_position

    def test_program_position_override(self, server):
        app = XClock(
            server, ["xclock", "-geometry", "+10+10"], user_positioned=False
        )
        hints = icccm.get_wm_normal_hints(app.conn, app.wid)
        assert hints.program_position and not hints.user_position

    def test_negative_geometry_resolves_against_screen(self, server):
        app = XClock(server, ["xclock", "-geometry", "100x100-0-0"])
        x, y, w, h, _ = app.conn.get_geometry(app.wid)
        assert (x, y) == (1152 - 100, 900 - 100)

    def test_iconic_initial_state(self, server):
        app = XClock(server, ["xclock", "-iconic"])
        hints = icccm.get_wm_hints(app.conn, app.wid)
        assert hints.start_iconic

    def test_oclock_is_shaped(self, server):
        app = OClock(server, ["oclock"])
        assert app.conn.window_is_shaped(app.wid)

    def test_xterm_resize_increments(self, server):
        app = XTerm(server, ["xterm"])
        hints = icccm.get_wm_normal_hints(app.conn, app.wid)
        assert hints.flags & P_RESIZE_INC
        assert hints.width_inc == 6 and hints.height_inc == 13

    def test_cmdtool_xview_geometry(self, server):
        app = CmdTool(server, ["cmdtool", "-Wp", "100", "150", "-Ws", "500", "300"])
        x, y, w, h, _ = app.conn.get_geometry(app.wid)
        assert (x, y, w, h) == (100, 150, 500, 300)

    def test_quit_destroys_window(self, server):
        app = XClock(server, ["xclock"])
        wid = app.wid
        app.quit()
        probe = XClock(server, ["xclock"])
        assert not probe.conn.window_exists(wid)


class TestRegistry:
    def test_launch_by_name(self, server):
        app = launch_command(server, ["xclock", "-geometry", "+1+2"])
        assert isinstance(app, XClock)

    def test_launch_with_path(self, server):
        app = launch_command(server, ["/usr/bin/X11/xterm"])
        assert isinstance(app, XTerm)

    def test_unknown_command(self, server):
        with pytest.raises(CommandLineError):
            launch_command(server, ["emacs"])

    def test_empty_command(self, server):
        with pytest.raises(CommandLineError):
            launch_command(server, [])

    def test_registry_covers_classics(self):
        for name in ("xclock", "oclock", "xterm", "xbiff", "cmdtool"):
            assert name in APP_REGISTRY


class TestMultiWindow:
    def test_secondary_window_usposition(self, server):
        app = MultiWindowApp(server, ["multiwin"])
        aux = app.open_secondary(500, 40)
        hints = icccm.get_wm_normal_hints(app.conn, aux)
        assert hints.user_position
        assert icccm.get_wm_transient_for(app.conn, aux) == app.wid

    def test_secondary_pposition(self, server):
        app = MultiWindowApp(server, ["multiwin"])
        aux = app.open_secondary(500, 40, user_position=False)
        hints = icccm.get_wm_normal_hints(app.conn, aux)
        assert hints.program_position


class TestPopups:
    def test_popup_near_window(self, server):
        app = XClock(server, ["xclock", "-geometry", "100x100+200+200"])
        popup = app.popup_at_offset(10, 10)
        x, y, _, _, _ = app.conn.get_geometry(popup)
        assert (x, y) == (210, 210)

    def test_popup_clamped_to_screen(self, server):
        app = XClock(server, ["xclock", "-geometry", "100x100+1000+800"])
        popup = app.popup_at_offset(200, 200, width=80, height=60)
        x, y, _, _, _ = app.conn.get_geometry(popup)
        assert x <= 1152 - 80 and y <= 900 - 60

    def test_close_popups(self, server):
        app = XClock(server, ["xclock"])
        popup = app.popup_at_offset(0, 0)
        app.close_popups()
        assert not app.conn.window_exists(popup)
