"""The twm-like baseline."""

import pytest

from repro import icccm
from repro.baselines import Twm, TwmConfig, TwmrcError
from repro.clients import XClock, XTerm
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.xserver import XServer

TWMRC = """
# comment
BorderWidth 3
TitleFont "8x13"
NoTitle { "xclock" "xbiff" }
Color { BorderColor "maroon" TitleBackground "gray" }
Button1 = : title : f.raise
Button3 = : title : f.iconify
"""


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


class TestTwmrcParsing:
    def test_full_config(self):
        config = TwmConfig.parse(TWMRC)
        assert config.border_width == 3
        assert config.title_font == "8x13"
        assert config.no_title == ["xclock", "xbiff"]
        assert config.colors["BorderColor"] == "maroon"
        assert config.bindings[(1, "title")] == "f.raise"
        assert config.bindings[(3, "title")] == "f.iconify"

    def test_multiline_block(self):
        config = TwmConfig.parse('NoTitle {\n "a"\n "b"\n}\n')
        assert config.no_title == ["a", "b"]

    def test_bad_line(self):
        with pytest.raises(TwmrcError):
            TwmConfig.parse("FlyingToasters on\n")

    def test_bad_binding(self):
        with pytest.raises(TwmrcError):
            TwmConfig.parse("Button1 = whatever\n")

    def test_unterminated_block(self):
        with pytest.raises(TwmrcError):
            TwmConfig.parse('NoTitle { "a"\n')

    def test_defaults(self):
        config = TwmConfig.parse("")
        assert config.border_width == 2


class TestTwmManagement:
    def test_manage_with_title(self, server):
        twm = Twm(server, TWMRC)
        app = XTerm(server, ["xterm"])
        twm.process_pending()
        entry = twm.windows[app.wid]
        assert entry.title_bar is not None
        assert server.window(app.wid).viewable

    def test_no_title_list(self, server):
        """The one policy knob twm has: titles on or off per class."""
        twm = Twm(server, TWMRC)
        clock = XClock(server, ["xclock"])
        twm.process_pending()
        entry = twm.windows[clock.wid]
        assert entry.title_bar is None

    def test_title_binding_dispatch(self, server):
        twm = Twm(server, TWMRC)
        a = XTerm(server, ["xterm", "-geometry", "+50+50"])
        twm.process_pending()
        entry = twm.windows[a.wid]
        origin = server.window(entry.title_bar).position_in_root()
        server.motion(origin.x + 4, origin.y + 4)
        server.button_press(3)
        server.button_release(3)
        twm.process_pending()
        assert entry.state == ICONIC_STATE

    def test_fixed_icon_representation(self, server):
        twm = Twm(server, TWMRC)
        app = XTerm(server, ["xterm"])
        twm.process_pending()
        entry = twm.windows[app.wid]
        twm.iconify(entry)
        assert entry.icon is not None
        assert server.window(entry.icon).mapped
        twm.deiconify(entry)
        assert not server.window(entry.icon).mapped
        assert entry.state == NORMAL_STATE

    def test_configure_request_resizes_frame(self, server):
        twm = Twm(server, TWMRC)
        app = XTerm(server, ["xterm"])
        twm.process_pending()
        app.conn.resize_window(app.wid, 6 * 90 + 16, 13 * 30 + 16)
        twm.process_pending()
        entry = twm.windows[app.wid]
        _, _, fw, fh, _ = twm.conn.get_geometry(entry.frame)
        _, _, cw, ch, _ = twm.conn.get_geometry(app.wid)
        assert fw == cw
        assert fh == ch + twm.title_height()

    def test_quit_releases(self, server):
        twm = Twm(server, TWMRC)
        app = XTerm(server, ["xterm"])
        twm.process_pending()
        twm.quit()
        _, parent, _ = app.conn.query_tree(app.wid)
        assert parent == app.conn.root_window()

    def test_no_per_screen_config(self, server):
        """Structural contrast with swm: one global config object, no
        per-screen/per-client resource machinery."""
        twm = Twm(server, TWMRC)
        assert not hasattr(twm, "screens")
        assert isinstance(twm.config, TwmConfig)


class TestRawWM:
    def test_map_request_granted(self, server):
        from repro.baselines import RawWM

        raw = RawWM(server)
        app = XTerm(server, ["xterm"])
        raw.process_pending()
        assert server.window(app.wid).mapped
        # No reparenting: still a child of the root.
        _, parent, _ = app.conn.query_tree(app.wid)
        assert parent == app.conn.root_window()

    def test_configure_passthrough(self, server):
        from repro.baselines import RawWM

        raw = RawWM(server)
        app = XTerm(server, ["xterm"])
        raw.process_pending()
        app.conn.move_resize_window(app.wid, 5, 6, 622, 433)
        raw.process_pending()
        x, y, width, height, _ = app.conn.get_geometry(app.wid)
        # Passthrough: no size-hint rounding at all.
        assert (x, y, width, height) == (5, 6, 622, 433)

    def test_iconify_is_bare_unmap(self, server):
        from repro.baselines import RawWM

        raw = RawWM(server)
        app = XTerm(server, ["xterm"])
        raw.process_pending()
        raw.iconify(app.wid)
        assert not server.window(app.wid).mapped
        assert icccm.get_wm_state(app.conn, app.wid).state == ICONIC_STATE
        raw.deiconify(app.wid)
        assert server.window(app.wid).mapped
