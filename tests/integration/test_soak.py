"""A long deterministic soak: hundreds of mixed operations against a
fully-featured swm, ending with a session roundtrip."""

import random

import pytest

from repro.clients import APP_REGISTRY, launch_command
from repro.core.templates import ROOT_PANEL_TEMPLATE, load_template
from repro.core.wm import Swm
from repro.icccm.hints import NORMAL_STATE
from repro.session import Launcher, replay_places
from repro.xserver import XServer

PROGRAMS = ["xterm", "xclock", "xload", "xlogo", "oclock", "cmdtool"]


def full_wm(server, places):
    db = load_template("OpenLook+")
    db.load_string(ROOT_PANEL_TEMPLATE)
    db.put("swm*rootPanels", "RootPanel")
    db.put("swm*panel.RootPanel.geometry", "+700+700")
    db.put("swm*virtualDesktop", "3000x2400")
    db.put("swm*virtualDesktops", "2")
    db.put("swm*scrollbars", "True")
    db.put("swm*iconHolders", "stash")
    db.put("swm*holder.stash.classes", "XTerm")
    db.put("swm*holder.stash.geometry", "+900+10")
    return Swm(server, db, places_path=places)


def test_soak_500_operations(tmp_path):
    rng = random.Random(1990)
    server = XServer(screens=[(1152, 900, 8)])
    wm = full_wm(server, str(tmp_path / "places"))
    apps = []

    for step in range(500):
        live = [a for a in apps if a.wid in wm.managed]
        roll = rng.random()
        if roll < 0.15 and len(live) < 12:
            program = rng.choice(PROGRAMS)
            argv = [program]
            if program != "cmdtool" and rng.random() < 0.7:
                argv += ["-geometry",
                         f"+{rng.randint(0, 900)}+{rng.randint(0, 700)}"]
            apps.append(launch_command(server, argv))
            wm.process_pending()
        elif not live:
            continue
        else:
            managed = wm.managed[rng.choice(live).wid]
            action = rng.randint(0, 9)
            if action == 0:
                wm.iconify(managed)
            elif action == 1:
                wm.deiconify(managed)
            elif action == 2:
                wm.move_managed_to(
                    managed, rng.randint(0, 2500), rng.randint(0, 2000)
                )
            elif action == 3:
                wm.resize_managed(
                    managed, rng.randint(40, 700), rng.randint(40, 500)
                )
            elif action == 4:
                wm.raise_managed(managed)
            elif action == 5 and managed.state == NORMAL_STATE:
                (wm.unstick if managed.sticky else wm.stick)(managed)
            elif action == 6:
                wm.pan_to(0, rng.randint(0, 1848), rng.randint(0, 1500))
            elif action == 7:
                wm.switch_desktop(0, rng.randint(0, 1))
            elif action == 8 and not managed.sticky:
                wm.send_to_desktop(managed, rng.randint(0, 1))
            elif action == 9 and rng.random() < 0.3:
                for app in live:
                    if app.wid == managed.client:
                        app.quit()
                        break
            wm.process_pending()

    # Everything still consistent.
    for client, managed in wm.managed.items():
        assert server.window(client).id == client
        assert wm.frames[managed.frame] is managed

    # The whole mess survives a session roundtrip.
    script = wm.save_places()
    saved = sum(
        1 for m in wm.managed.values()
        if not m.is_internal
    )
    server.reset()
    launcher = Launcher(server)
    replay_places(script, launcher)
    wm2 = full_wm(server, str(tmp_path / "places2"))
    wm2.process_pending()
    restored = sum(1 for m in wm2.managed.values() if not m.is_internal)
    assert restored == saved
