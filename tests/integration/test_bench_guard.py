"""tools/bench_guard.py trajectory mode: the rolling ``--keep`` window
retains exactly the newest N dates, never silently erases history, and
rejects a window that would retain nothing (the old negated-keep slice
turned ``--keep 0`` into "delete every run")."""

import importlib.util
import json
import pathlib
import sys
from argparse import Namespace

import pytest

TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"


def load_bench_guard():
    spec = importlib.util.spec_from_file_location(
        "bench_guard", TOOLS / "bench_guard.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_guard", module)
    spec.loader.exec_module(module)
    return module


bench_guard = load_bench_guard()


def results_file(tmp_path, mean=0.002):
    """A minimal pytest-benchmark JSON with the reference + one guard."""
    payload = {
        "benchmarks": [
            {
                "group": "t7",
                "name": bench_guard.REFERENCE,
                "stats": {"mean": 0.001},
            },
            {
                "group": "t7",
                "name": "test_t7_property_churn",
                "stats": {"mean": mean},
            },
        ]
    }
    path = tmp_path / "benchmark-results.json"
    path.write_text(json.dumps(payload))
    return str(path)


def trajectory_args(tmp_path, date, keep=90):
    return Namespace(
        results=results_file(tmp_path),
        trajectory=str(tmp_path / "BENCH_trajectory.json"),
        date=date,
        run_id="",
        keep=keep,
    )


def run_dates(tmp_path):
    with open(tmp_path / "BENCH_trajectory.json") as fh:
        return sorted(json.load(fh)["runs"])


class TestTrajectoryKeep:
    def test_window_keeps_the_newest_n_dates(self, tmp_path):
        for day in range(1, 6):
            args = trajectory_args(tmp_path, f"2026-08-{day:02d}", keep=3)
            assert bench_guard.cmd_trajectory(args) == 0
        assert run_dates(tmp_path) == [
            "2026-08-03", "2026-08-04", "2026-08-05"
        ]

    def test_under_capacity_prunes_nothing(self, tmp_path):
        for day in range(1, 4):
            args = trajectory_args(tmp_path, f"2026-08-{day:02d}", keep=90)
            bench_guard.cmd_trajectory(args)
        assert run_dates(tmp_path) == [
            "2026-08-01", "2026-08-02", "2026-08-03"
        ]

    def test_keep_one_is_a_single_run_window(self, tmp_path):
        for day in range(1, 4):
            args = trajectory_args(tmp_path, f"2026-08-{day:02d}", keep=1)
            bench_guard.cmd_trajectory(args)
        assert run_dates(tmp_path) == ["2026-08-03"]

    def test_same_day_rerun_overwrites_not_accumulates(self, tmp_path):
        for _ in range(2):
            args = trajectory_args(tmp_path, "2026-08-08", keep=3)
            bench_guard.cmd_trajectory(args)
        assert run_dates(tmp_path) == ["2026-08-08"]

    @pytest.mark.parametrize("keep", [0, -1, -90])
    def test_retain_nothing_is_rejected_not_erased(self, tmp_path, keep):
        good = trajectory_args(tmp_path, "2026-08-01", keep=90)
        bench_guard.cmd_trajectory(good)
        bad = trajectory_args(tmp_path, "2026-08-02", keep=keep)
        with pytest.raises(bench_guard.GuardError) as excinfo:
            bench_guard.cmd_trajectory(bad)
        assert excinfo.value.code == bench_guard.EXIT_BAD_INPUT
        # The refusal must leave the existing trajectory untouched.
        assert run_dates(tmp_path) == ["2026-08-01"]
