"""Golden-file tests: figure renderings are fully deterministic.

If a rendering change is intentional, regenerate the goldens with the
snippet in tests/data/README (or this module's `build_scene`).
"""

import pathlib

import pytest

from repro.clients import NaiveApp
from repro.core.templates import ROOT_PANEL_TEMPLATE, load_template
from repro.core.wm import Swm
from repro.figures import (
    figure1_decoration,
    figure2_root_panel,
    figure3_panner,
)
from repro.xserver import XServer

DATA = pathlib.Path(__file__).resolve().parents[1] / "data"


def build_scene():
    server = XServer(screens=[(1152, 900, 8)])
    db = load_template("OpenLook+")
    db.load_string(ROOT_PANEL_TEMPLATE)
    db.put("swm*rootPanels", "RootPanel")
    db.put("swm*panel.RootPanel.geometry", "+400+400")
    db.put("swm*virtualDesktop", "3000x2400")
    wm = Swm(server, db, places_path="/tmp/golden.places")
    app = NaiveApp(server, ["naivedemo", "-geometry", "300x200+80+60"])
    NaiveApp(server, ["naivedemo", "-geometry", "400x300+1800+1200"])
    wm.process_pending()
    wm.pan_to(0, 300, 200)
    return server, wm, app


@pytest.fixture(scope="module")
def scene():
    return build_scene()


class TestGoldenFigures:
    def test_figure1_stable(self, scene):
        server, wm, app = scene
        assert figure1_decoration(server, wm, app.wid) == (
            (DATA / "figure1.txt").read_text()
        )

    def test_figure2_stable(self, scene):
        server, wm, _ = scene
        assert figure2_root_panel(server, wm) == (
            (DATA / "figure2.txt").read_text()
        )

    def test_figure3_stable(self, scene):
        _, wm, _ = scene
        assert figure3_panner(wm) == (DATA / "figure3.txt").read_text()

    def test_rebuild_is_deterministic(self):
        """Two independent builds of the same scene render identically
        (no hidden global state, no ordering dependence)."""
        server_a, wm_a, app_a = build_scene()
        server_b, wm_b, app_b = build_scene()
        assert figure1_decoration(server_a, wm_a, app_a.wid) == (
            figure1_decoration(server_b, wm_b, app_b.wid)
        )
        assert figure3_panner(wm_a) == figure3_panner(wm_b)
