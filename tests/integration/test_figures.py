"""Figure regeneration (F1/F2/F3) and end-to-end scenarios."""

import pytest

from repro.clients import NaiveApp, OClock, XClock, XTerm
from repro.core.templates import ROOT_PANEL_TEMPLATE, load_template
from repro.core.wm import Swm
from repro.figures import (
    figure1_decoration,
    figure2_root_panel,
    figure3_panner,
)
from repro.xserver import XServer
from repro.xserver.render import render_window


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def full_wm(server):
    db = load_template("OpenLook+")
    db.load_string(ROOT_PANEL_TEMPLATE)
    db.put("swm*rootPanels", "RootPanel")
    db.put("swm*panel.RootPanel.geometry", "+400+400")
    db.put("swm*virtualDesktop", "3000x2400")
    return Swm(server, db)


class TestFigure1:
    def test_decoration_structure(self, server, full_wm):
        """Figure 1: pulldown, centered name, nail, client below."""
        app = NaiveApp(server, ["naivedemo", "-geometry", "300x200+80+60"])
        full_wm.process_pending()
        art = figure1_decoration(server, full_wm, app.wid)
        assert "naivedemo" in art  # the name button shows WM_NAME
        lines = art.splitlines()
        assert lines[0].startswith("+")  # framed
        # The title row sits above the client area.
        title_row = next(i for i, l in enumerate(lines) if "naivedemo" in l)
        assert title_row <= 2

    def test_shaped_client_renders_round(self, server, full_wm):
        app = OClock(server, ["oclock", "-geometry", "+500+100"])
        full_wm.process_pending()
        managed = full_wm.managed[app.wid]
        frame = server.window(managed.frame)
        art = render_window(frame, server.atoms, cell_w=4, cell_h=8,
                            clip=frame.rect_in_root())
        # Shaped cells are drawn as '@' and the corners are cut.
        assert "@" in art
        first = art.splitlines()[0]
        assert not first.strip().startswith("@") or first.index("@") > 0


class TestFigure2:
    def test_root_panel_grid(self, server, full_wm):
        art = figure2_root_panel(server, full_wm)
        for label in ("quit", "restart", "iconify", "deiconify",
                      "move", "resize", "raise", "lower"):
            assert label in art
        lines = art.splitlines()
        quit_row = next(i for i, l in enumerate(lines) if "quit" in l)
        move_row = next(i for i, l in enumerate(lines) if "move" in l)
        assert move_row > quit_row  # two rows, as in the paper

    def test_root_panel_is_reparented(self, server, full_wm):
        """Figure 2's caption: 'a reparented root panel'."""
        managed = full_wm.screens[0].root_panels["RootPanel"]
        assert managed.frame != managed.client

    def test_root_panel_buttons_work(self, server, full_wm):
        """The iconify(multiple) button prompts for windows."""
        app = XTerm(server, ["xterm", "-geometry", "+50+50"])
        full_wm.process_pending()
        panel = full_wm.screens[0].root_panel_objects["RootPanel"]
        button = panel.find("iconify")
        origin = server.window(button.window).position_in_root()
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(1)
        server.button_release(1)
        full_wm.process_pending()
        assert full_wm.selection is not None
        # Select the xterm.
        rect = full_wm.frame_rect(full_wm.managed[app.wid])
        server.motion(rect.x + 5, rect.y + 25)
        server.button_press(1)
        server.button_release(1)
        full_wm.process_pending()
        from repro.icccm.hints import ICONIC_STATE

        assert full_wm.managed[app.wid].state == ICONIC_STATE


class TestFigure3:
    def test_panner_shows_miniatures_and_viewport(self, server, full_wm):
        NaiveApp(server, ["naivedemo", "-geometry", "400x300+1800+1200"])
        full_wm.process_pending()
        full_wm.pan_to(0, 300, 200)
        art = figure3_panner(full_wm)
        assert "#" in art  # a miniature window
        assert ":" in art  # the viewport outline

    def test_viewport_moves_with_pan(self, server, full_wm):
        art_origin = figure3_panner(full_wm)
        full_wm.pan_to(0, 1000, 800)
        art_panned = figure3_panner(full_wm)
        assert art_origin != art_panned

    def test_no_panner_raises(self, server):
        db = load_template("OpenLook+")
        wm = Swm(server, db)
        with pytest.raises(ValueError):
            figure3_panner(wm)


class TestRoomsScenario:
    """§6: 'it is very easy to implement a rooms like environment by
    grouping windows into various quadrants of the desktop.'"""

    def test_quadrant_rooms(self, server, full_wm):
        rooms = {
            "mail": (0, 0),
            "code": (1500, 0),
            "docs": (0, 1200),
            "misc": (1500, 1200),
        }
        apps = {}
        for name, (x, y) in rooms.items():
            apps[name] = NaiveApp(
                server,
                ["naivedemo", "-geometry", f"300x200+{x + 100}+{y + 100}"],
            )
        full_wm.process_pending()
        # Visit each room: exactly one app visible per quadrant.
        for name, (x, y) in rooms.items():
            full_wm.pan_to(0, x, y)
            screen_rect = server.screens[0].rect
            visible = [
                other
                for other, app in apps.items()
                if server.window(app.wid).rect_in_root().intersects(screen_rect)
            ]
            assert visible == [name]
