"""Randomized WM workloads: swm's bookkeeping must stay consistent
under arbitrary sequences of client and user actions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import icccm
from repro.clients import NaiveApp, XTerm
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.xserver import XServer

OPS = st.sampled_from(
    ["launch", "iconify", "deiconify", "move", "resize", "raise",
     "stick", "unstick", "pan", "switch", "send", "quit_client"]
)


def check_wm_invariants(server, wm):
    sc = wm.screens[0]
    for client, managed in wm.managed.items():
        assert wm.frames[managed.frame] is managed
        client_window = server.window(client)
        frame_window = server.window(managed.frame)
        # The client sits inside its frame.
        assert frame_window.is_ancestor_of(client_window)
        # The frame's parent matches stickiness/desktop.
        parent = frame_window.parent
        if managed.sticky or not sc.vdesks:
            assert parent is server.screens[0].root
        else:
            assert parent.id == sc.vdesks[managed.desktop].window
        # WM_STATE agrees with our bookkeeping.
        state = icccm.get_wm_state(wm.conn, client)
        assert state is not None
        assert state.state == managed.state
        # Iconic windows: frame unmapped, icon mapped; normal windows:
        # frame mapped.
        if managed.state == ICONIC_STATE:
            assert not frame_window.mapped
            assert managed.icon is not None
        else:
            assert frame_window.mapped
            assert managed.icon is None
    # No stale object windows.
    for wid, (obj, managed, screen) in wm.object_windows.items():
        assert wm.conn.window_exists(wid)


class TestRandomWMWorkloads:
    @given(
        ops=st.lists(st.tuples(OPS, st.integers(0, 7), st.integers(0, 7)),
                     max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_ops(self, ops):
        server = XServer(screens=[(1152, 900, 8)])
        db = load_template("OpenLook+")
        db.put("swm*virtualDesktop", "3000x2400")
        db.put("swm*virtualDesktops", "2")
        wm = Swm(server, db, places_path="/tmp/inv.places")
        apps = []

        def alive():
            return [app for app in apps if app.wid in wm.managed]

        for op, a, b in ops:
            live = alive()
            target = wm.managed[live[a % len(live)].wid] if live else None
            if op == "launch":
                apps.append(
                    NaiveApp(server, ["naivedemo", "-geometry",
                                      f"+{a * 97}+{b * 83}"])
                )
            elif target is None:
                pass
            elif op == "iconify":
                wm.iconify(target)
            elif op == "deiconify":
                wm.deiconify(target)
            elif op == "move":
                wm.move_managed_to(target, a * 131, b * 117)
            elif op == "resize":
                wm.resize_managed(target, 50 + a * 23, 40 + b * 31)
            elif op == "raise":
                wm.raise_managed(target)
            elif op == "stick":
                if target.state == NORMAL_STATE:
                    wm.stick(target)
            elif op == "unstick":
                if target.state == NORMAL_STATE:
                    wm.unstick(target)
            elif op == "pan":
                wm.pan_to(0, a * 200, b * 160)
            elif op == "switch":
                wm.switch_desktop(0, a % 2)
            elif op == "send":
                if not target.sticky:
                    wm.send_to_desktop(target, b % 2)
            elif op == "quit_client":
                live[a % len(live)].quit()
            wm.process_pending()
            check_wm_invariants(server, wm)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_session_roundtrip_after_random_layout(self, seed):
        """f.places -> reset -> replay restores any randomly-arranged
        layout, not just the hand-picked ones."""
        import random

        from repro.session import Launcher, replay_places

        rng = random.Random(seed)
        server = XServer(screens=[(1152, 900, 8)])
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path="/tmp/rr.places")
        count = rng.randint(1, 4)
        for index in range(count):
            XTerm(server, ["xterm", "-title", f"t{index}", "-geometry",
                           f"+{rng.randint(0, 800)}+{rng.randint(0, 600)}"])
        wm.process_pending()
        for managed in list(wm.managed.values()):
            if managed.is_internal:
                continue
            if rng.random() < 0.4:
                wm.move_client_to(
                    managed, rng.randint(0, 900), rng.randint(0, 700)
                )
            if rng.random() < 0.3:
                wm.iconify(managed)

        def snapshot(current_wm):
            out = {}
            for managed in current_wm.managed.values():
                if managed.is_internal:
                    continue
                position = current_wm.client_desktop_position(managed)
                out[managed.name] = (tuple(position), managed.state)
            return out

        before = snapshot(wm)
        script = wm.save_places()
        server.reset()
        replay_places(script, Launcher(server))
        wm2 = Swm(server, db, places_path="/tmp/rr2.places")
        wm2.process_pending()
        assert snapshot(wm2) == before
