"""The Robot user-simulation driver, exercised end-to-end."""

import pytest

from repro.clients import XTerm
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.icccm.hints import ICONIC_STATE
from repro.testing import Robot, RobotError
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def wm(server, tmp_path):
    db = load_template("OpenLook+")
    db.put("swm*virtualDesktop", "3000x2400")
    return Swm(server, db, places_path=str(tmp_path / "p"))


@pytest.fixture
def robot(server, wm):
    return Robot(server, wm)


class TestRobotGestures:
    def test_click_name_raises(self, server, wm, robot):
        a = XTerm(server, ["xterm", "-geometry", "+50+50"])
        b = XTerm(server, ["xterm", "-geometry", "+80+80"])
        wm.process_pending()
        ma = wm.managed[a.wid]
        wm.lower_managed(ma)
        robot.click_object(ma, "name")
        frame = server.window(ma.frame)
        assert frame.parent.children[-1] is frame

    def test_drag_name_moves_window(self, server, wm, robot):
        """Button 2 on the name button is f.move in the template; the
        robot drags through interpolated motion."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        before = wm.frame_rect(managed)
        robot.drag_object(managed, "name", 90, 60, button=2)
        after = wm.frame_rect(managed)
        assert (after.x - before.x, after.y - before.y) == (90, 60)

    def test_menu_flow(self, server, wm, robot):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        robot.click_object(managed, "pulldown")
        robot.pick_menu_item("Iconify")
        assert managed.state == ICONIC_STATE

    def test_menu_missing_item(self, server, wm, robot):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        robot.click_object(wm.managed[app.wid], "pulldown")
        with pytest.raises(RobotError):
            robot.pick_menu_item("Defenestrate")

    def test_prompt_flow(self, server, wm, robot):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.execute_string("f.iconify")
        robot.answer_prompt(managed)
        assert managed.state == ICONIC_STATE

    def test_prompt_cancel(self, server, wm, robot):
        XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        wm.execute_string("f.iconify")
        robot.answer_prompt(None)
        assert wm.selection is None

    def test_prompt_errors_when_inactive(self, server, wm, robot):
        with pytest.raises(RobotError):
            robot.answer_prompt(None)

    def test_icon_object_lookup(self, server, wm, robot):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.iconify(managed)
        robot.click_object(managed, "iconimage")  # f.deiconify binding
        assert managed.state != ICONIC_STATE

    def test_missing_object(self, server, wm, robot):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        with pytest.raises(RobotError):
            robot.click_object(wm.managed[app.wid], "frobulator")

    def test_panner_click_pans(self, server, wm, robot):
        robot.in_panner_click(100, 80)
        vdesk = wm.screens[0].vdesk
        assert (vdesk.pan_x, vdesk.pan_y) != (0, 0)

    def test_key_typing(self, server, wm, robot):
        app = XTerm(server, ["xterm", "-geometry", "+100+300"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        managed.object_named("name").set_bindings(
            "<Key>F1 : f.iconify"
        )
        origin = robot.object_origin(managed, "name")
        robot.move_pointer(origin.x + 2, origin.y + 2)
        robot.type_key("F1")
        assert managed.state == ICONIC_STATE
