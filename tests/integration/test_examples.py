"""Every example script runs cleanly and prints what it promises."""

import io
import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["Managed windows:", "Figure 1"],
    "virtual_desktop_rooms.py": ["room", "Sticky clock stayed"],
    "session_roundtrip.py": ["Session restored exactly"],
    "custom_look_and_feel.py": ["OpenLook+ emulation", "OSF/Motif emulation",
                                "bottombar"],
    "swmcmd_remote_control.py": ["question_arrow", "prompt ended: True"],
    "multiple_desktops.py": ["desktop 0", "desktop 2",
                             "f.sendtodesktop"],
}


def run_example(name: str) -> str:
    captured = io.StringIO()
    stdout = sys.stdout
    sys.stdout = captured
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.stdout = stdout
    return captured.getvalue()


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name):
    output = run_example(name)
    for marker in EXPECTED_OUTPUT[name]:
        assert marker in output, f"{name}: missing {marker!r} in output"


def test_all_examples_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT)


def test_module_demo_runs(capsys):
    import repro.__main__ as demo

    assert demo.main([]) == 0
    output = capsys.readouterr().out
    assert "1010, 359" in output
