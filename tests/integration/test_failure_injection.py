"""Failure injection: clients racing, dying, and misbehaving.

A window manager lives in a hostile world — clients exit between the
MapRequest and the reparent, destroy windows the WM is about to
configure, and write garbage properties.  swm must survive all of it.
"""

import pytest

import repro.xserver.events as ev
from repro.clients import XClock, XTerm
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.xserver import BadWindow, ClientConnection, EventMask, XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def wm(server, tmp_path):
    db = load_template("OpenLook+")
    return Swm(server, db, places_path=str(tmp_path / "places"),
               manage_existing=True)


class TestClientRaces:
    def test_client_dies_before_manage(self, server, tmp_path):
        """The window is destroyed after the MapRequest is queued but
        before swm handles it."""
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        wm.conn.event_handlers.clear()  # hold events: manual pump
        app = XTerm(server, ["xterm"])
        app.quit()  # dies with the MapRequest still queued
        wm.process_pending()  # must not raise
        assert app.wid not in wm.managed

    def test_client_dies_during_session(self, server, wm):
        apps = [XTerm(server, ["xterm"]) for _ in range(3)]
        wm.process_pending()
        apps[1].quit()
        wm.process_pending()
        assert apps[1].wid not in wm.managed
        assert apps[0].wid in wm.managed
        assert apps[2].wid in wm.managed

    def test_iconified_client_dies(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.iconify(managed)
        icon_window = managed.icon.window
        app.quit()
        wm.process_pending()
        assert app.wid not in wm.managed
        assert not wm.conn.window_exists(icon_window)
        assert icon_window not in wm.icon_windows

    def test_client_dies_mid_selection(self, server, wm):
        """The prompt target disappears before the user clicks."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        rect = wm.frame_rect(wm.managed[app.wid])
        wm.execute_string("f.iconify")  # selection prompt active
        app.quit()
        wm.process_pending()
        server.motion(rect.x + 5, rect.y + 25)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()  # must not raise
        assert wm.selection is None

    def test_client_dies_mid_drag(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.begin_move(managed, (150, 150))
        app.quit()
        wm.process_pending()
        server.motion(400, 400)
        server.button_release(1)
        wm.process_pending()  # drag release against a dead window
        assert app.wid not in wm.managed

    def test_configure_request_for_dead_window(self, server, wm):
        """A ConfigureRequest referencing a window that died before the
        WM handled it."""
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.conn.event_handlers.clear()
        app.conn.resize_window(app.wid, 700, 500)  # queued at wm
        app.quit()
        wm.process_pending()  # must not raise
        assert app.wid not in wm.managed


class TestMisbehavingClients:
    def test_garbage_swm_command(self, server, wm):
        before = wm.beeps
        conn = ClientConnection(server)
        conn.set_string_property(
            conn.root_window(), "SWM_COMMAND", "!!! not a command !!!\n"
        )
        wm.process_pending()
        assert wm.beeps == before + 1  # rejected with a beep, no crash

    def test_bogus_wm_hints_data(self, server, wm):
        app = XTerm(server, ["xterm"])
        # Malformed short WM_HINTS.
        app.conn.change_property(app.wid, "WM_HINTS", "WM_HINTS", 32, [1])
        wm.process_pending()
        assert app.wid in wm.managed

    def test_client_with_no_properties_at_all(self, server, wm):
        """A bare window with no ICCCM properties still gets managed."""
        conn = ClientConnection(server, "rude")
        wid = conn.create_window(conn.root_window(), 10, 10, 100, 100)
        conn.map_window(wid)
        wm.process_pending()
        assert wid in wm.managed
        assert server.window(wid).viewable

    def test_very_long_wm_name(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        app.conn.set_string_property(app.wid, "WM_NAME", "x" * 500)
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.name == "x" * 500

    def test_rapid_map_unmap_cycles(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        for _ in range(5):
            app.conn.unmap_window(app.wid)
            wm.process_pending()
            assert app.wid not in wm.managed  # withdrawn
            app.conn.map_window(app.wid)
            wm.process_pending()
            assert app.wid in wm.managed  # re-managed

    def test_override_redirect_toggle(self, server, wm):
        """A window that flips to override-redirect before mapping is
        left alone."""
        conn = ClientConnection(server, "popup-app")
        wid = conn.create_window(conn.root_window(), 10, 10, 50, 50)
        conn.change_window_attributes(wid, override_redirect=True)
        conn.map_window(wid)
        wm.process_pending()
        assert wid not in wm.managed


class TestMultiScreen:
    def test_wm_manages_both_screens(self, tmp_path):
        server = XServer(screens=[(1152, 900, 8), (1024, 768, 1)])
        db = load_template("OpenLook+")
        db.put("swm.color.screen0*virtualDesktop", "3000x2400")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        assert len(wm.screens) == 2
        # Screen 0 has the desktop; mono screen 1 does not.
        assert wm.screens[0].vdesk is not None
        assert wm.screens[1].vdesk is None
        a = XTerm(server, ["xterm"], screen=0)
        b = XClock(server, ["xclock"], screen=1)
        wm.process_pending()
        assert wm.managed[a.wid].screen == 0
        assert wm.managed[b.wid].screen == 1
        # Frames live on their own screens.
        frame_a = server.window(wm.managed[a.wid].frame)
        frame_b = server.window(wm.managed[b.wid].frame)
        assert frame_a.root() is server.screens[0].root
        assert frame_b.root() is server.screens[1].root

    def test_mono_screen_colors_snap(self, tmp_path):
        server = XServer(screens=[(1152, 900, 8), (1024, 768, 1)])
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        color = wm.screens[0].ctx.get_color([], "background")
        mono = wm.screens[1].ctx.get_color([], "background")
        assert color == (255, 228, 196)  # bisque
        assert mono in ((0, 0, 0), (255, 255, 255))

    def test_pan_is_per_screen(self, tmp_path):
        server = XServer(screens=[(1152, 900, 8), (1024, 768, 8)])
        db = load_template("OpenLook+")
        db.put("swm*virtualDesktop", "3000x2400")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        wm.pan_to(0, 500, 400)
        assert wm.screens[0].vdesk.pan_x == 500
        assert wm.screens[1].vdesk.pan_x == 0
