"""Documentation cross-checks: the docs must track the code."""

import pathlib
import re

import pytest

from repro.core.functions import FUNCTIONS

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs"


class TestFunctionDoc:
    def test_every_function_documented(self):
        text = (DOCS / "FUNCTIONS.md").read_text()
        for name in FUNCTIONS:
            assert f"`f.{name}`" in text, f"f.{name} missing from FUNCTIONS.md"

    def test_no_phantom_functions_documented(self):
        text = (DOCS / "FUNCTIONS.md").read_text()
        documented = set(re.findall(r"^\| `f\.(\w+)`", text, re.MULTILINE))
        assert documented == set(FUNCTIONS)


class TestResourceDoc:
    def test_key_resources_documented(self):
        text = (DOCS / "RESOURCES.md").read_text()
        for resource in (
            "virtualDesktop",
            "virtualDesktops",
            "panner",
            "scrollbars",
            "rootPanels",
            "rootIcons",
            "iconHolders",
            "remoteStart",
            "decoration",
            "iconPanel",
            "sticky",
            "resizeCorners",
            "bindings",
            "hideWhenEmpty",
            "sizeToFit",
        ):
            assert resource in text, f"{resource} missing from RESOURCES.md"

    def test_templates_use_only_documented_object_attrs(self):
        """Every object attribute the stock templates set appears in
        RESOURCES.md."""
        from repro.core.templates import TEMPLATES

        text = (DOCS / "RESOURCES.md").read_text()
        attr_re = re.compile(
            r"^Swm\*(?:button|text|menu|panel)\.[\w+]+\.(\w+):",
            re.MULTILINE,
        )
        for template in TEMPLATES.values():
            for attr in attr_re.findall(template):
                assert attr in text, f"template attr {attr!r} undocumented"


class TestReadme:
    def test_readme_modules_exist(self):
        root = DOCS.parent
        readme = (root / "README.md").read_text()
        for example in re.findall(r"python (examples/\w+\.py)", readme):
            assert (root / example).exists(), f"{example} referenced but missing"
