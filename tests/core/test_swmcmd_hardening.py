"""SWM_COMMAND as hostile input: validation, rejection, resilience.

Any client can write the root command property, so the WM-side handler
must treat it as wire input — bound it, validate each line, reject with
a structured record instead of raising into the event loop, and never
let one bad line veto its neighbours.
"""

import pytest

from repro.clients import XTerm
from repro.core.swmcmd import (
    COMMAND_PROPERTY,
    MAX_COMMAND_LENGTH,
    MAX_PAYLOAD,
    SwmCmdError,
    parse_command,
    swmcmd,
    validate_command_stream,
)
from repro.icccm.hints import ICONIC_STATE
from repro.xserver import ClientConnection
from repro.xserver.properties import PROP_MODE_APPEND


def write_raw_command(server, payload, fmt=8, type_atom="STRING"):
    """A hostile client writing the property directly, bypassing the
    swmcmd client's pre-validation."""
    conn = ClientConnection(server, "hostile")
    try:
        conn.change_property(
            conn.root_window(0), COMMAND_PROPERTY, type_atom, fmt,
            payload, PROP_MODE_APPEND,
        )
    finally:
        conn.close()


class TestValidateStream:
    def test_well_formed_lines_pass(self):
        calls, rejected = validate_command_stream("f.raise\nf.beep\n")
        assert [c.name for c in calls] == ["raise", "beep"]
        assert rejected == []

    def test_bad_line_rejected_neighbours_survive(self):
        calls, rejected = validate_command_stream(
            "f.beep\nf.((broken\nf.refresh\n"
        )
        assert [c.name for c in calls] == ["beep", "refresh"]
        assert len(rejected) == 1
        assert rejected[0].line_no == 2

    def test_unknown_function_rejected_with_registry(self):
        calls, rejected = validate_command_stream(
            "f.beep\nf.noSuchFunction\n", known={"beep"}
        )
        assert [c.name for c in calls] == ["beep"]
        assert len(rejected) == 1
        assert "unknown function f.nosuchfunction" in rejected[0].reason

    def test_no_registry_means_no_name_check(self):
        calls, rejected = validate_command_stream("f.noSuchFunction\n")
        assert len(calls) == 1
        assert rejected == []

    def test_oversized_payload_rejected_whole(self):
        payload = "f.beep\n" * (MAX_PAYLOAD // 6)
        calls, rejected = validate_command_stream(payload)
        assert calls == []
        assert len(rejected) == 1
        assert "payload" in rejected[0].reason

    def test_overlong_line_rejected(self):
        line = "f.label(" + "x" * MAX_COMMAND_LENGTH + ")"
        calls, rejected = validate_command_stream(line)
        assert calls == []
        assert "exceeds" in rejected[0].reason

    def test_unprintable_line_rejected(self):
        calls, rejected = validate_command_stream("f.beep\x07\x1b\n")
        assert calls == []
        assert "unprintable" in rejected[0].reason

    def test_never_raises(self):
        for text in ("\0\0\0", "((((", "f.", "\n" * 50, "\x00f.beep"):
            validate_command_stream(text)  # must not raise


class TestParseCommandBounds:
    def test_overlong_command_raises(self):
        with pytest.raises(SwmCmdError):
            parse_command("f.label(" + "y" * MAX_COMMAND_LENGTH + ")")

    def test_unprintable_command_raises(self):
        with pytest.raises(SwmCmdError):
            parse_command("f.beep\x07")

    def test_normal_command_still_parses(self):
        call = parse_command("f.iconify(#0x12)")
        assert call.name == "iconify"


class TestWMHandler:
    def test_malformed_payload_logged_not_raised(self, server, wm):
        """Garbage in the property: the WM beeps, records rejections,
        and the event loop survives."""
        beeps = wm.beeps
        write_raw_command(server, "f.((broken\nnot a command at all((\n")
        wm.process_pending()
        assert wm.beeps == beeps + 1
        assert len(wm.requests.swmcmd_rejections) == 2
        # The property is consumed, not re-noticed forever.
        assert not wm.conn.get_string_property(
            wm.conn.root_window(), COMMAND_PROPERTY
        )

    def test_unknown_function_rejected_wm_side(self, server, wm):
        beeps = wm.beeps
        write_raw_command(server, "f.noSuchFunction\n")
        wm.process_pending()
        assert wm.beeps == beeps + 1
        assert any(
            "unknown function" in r.reason
            for r in wm.requests.swmcmd_rejections
        )

    def test_valid_lines_execute_around_bad_one(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        write_raw_command(
            server, f"f.((broken\nf.iconify(#{app.wid:#x})\n"
        )
        wm.process_pending()
        assert wm.managed[app.wid].state == ICONIC_STATE
        assert len(wm.requests.swmcmd_rejections) == 1

    def test_wrong_format_property_consumed(self, server, wm):
        """A format-32 write is unreadable as text; it must still be
        deleted so it cannot wedge the handler."""
        write_raw_command(
            server, [1, 2, 3], fmt=32, type_atom="CARDINAL"
        )
        wm.process_pending()
        assert wm.conn.get_property(
            wm.conn.root_window(), COMMAND_PROPERTY
        ) is None

    def test_oversized_payload_rejected(self, server, wm):
        beeps = wm.beeps
        write_raw_command(server, "f.beep\n" * 2000)
        wm.process_pending()
        assert wm.beeps == beeps + 1  # one rejection beep, zero executions

    def test_client_side_swmcmd_still_prevalidates(self, server):
        with pytest.raises(SwmCmdError):
            swmcmd(server, "not ( a ) command (")
