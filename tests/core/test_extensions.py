"""Extension features: multiple Virtual Desktops, scrollbars, resize
corners, Enter/Leave bindings, and the RESOURCE_MANAGER property."""

import pytest

from repro.clients import NaiveApp, XClock, XTerm
from repro.core.bindings import FunctionCall
from repro.core.templates import load_template
from repro.core.wm import Swm


@pytest.fixture
def multi_db(db):
    db.put("swm*virtualDesktop", "3000x2400")
    db.put("swm*virtualDesktops", "3")
    return db


@pytest.fixture
def mwm(server, multi_db, tmp_path):
    return Swm(server, multi_db, places_path=str(tmp_path / "places"))


class TestMultipleDesktops:
    """§6.3: 'this would also allow swm to implement multiple Virtual
    Desktops' — implemented as an extension."""

    def test_three_desktops_created(self, server, mwm):
        sc = mwm.screens[0]
        assert len(sc.vdesks) == 3
        assert server.window(sc.vdesks[0].window).mapped
        assert not server.window(sc.vdesks[1].window).mapped
        assert not server.window(sc.vdesks[2].window).mapped

    def test_switch_desktop_swaps_visibility(self, server, mwm):
        sc = mwm.screens[0]
        mwm.switch_desktop(0, 1)
        assert sc.current_desktop == 1
        assert not server.window(sc.vdesks[0].window).mapped
        assert server.window(sc.vdesks[1].window).mapped

    def test_windows_stay_on_their_desktop(self, server, mwm):
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        assert managed.desktop == 0
        assert server.window(app.wid).viewable
        mwm.switch_desktop(0, 1)
        # The window is on desktop 0, which is unmapped -> not viewable.
        assert not server.window(app.wid).viewable
        mwm.switch_desktop(0, 0)
        assert server.window(app.wid).viewable

    def test_new_windows_land_on_current_desktop(self, server, mwm):
        mwm.switch_desktop(0, 2)
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        mwm.process_pending()
        assert mwm.managed[app.wid].desktop == 2
        assert server.window(app.wid).viewable

    def test_sticky_windows_on_every_desktop(self, server, mwm):
        clock = XClock(server, ["xclock", "-geometry", "+10+10"])
        mwm.process_pending()
        assert mwm.managed[clock.wid].sticky
        for index in range(3):
            mwm.switch_desktop(0, index)
            assert server.window(clock.wid).viewable

    def test_send_to_desktop(self, server, mwm):
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        mwm.send_to_desktop(managed, 2)
        assert managed.desktop == 2
        assert not server.window(app.wid).viewable
        mwm.switch_desktop(0, 2)
        assert server.window(app.wid).viewable
        # Desktop coordinates preserved across the move.
        assert tuple(mwm.client_desktop_position(managed)) == (100, 100)

    def test_swm_root_tracks_desktop(self, server, mwm):
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        sc = mwm.screens[0]
        prop = app.conn.get_property(app.wid, "SWM_ROOT")
        assert prop.data[0] == sc.vdesks[0].window
        mwm.send_to_desktop(managed, 1)
        prop = app.conn.get_property(app.wid, "SWM_ROOT")
        assert prop.data[0] == sc.vdesks[1].window

    def test_desktop_functions(self, server, mwm):
        sc = mwm.screens[0]
        mwm.execute(FunctionCall("nextdesktop"))
        assert sc.current_desktop == 1
        mwm.execute(FunctionCall("prevdesktop"))
        assert sc.current_desktop == 0
        mwm.execute(FunctionCall("gotodesktop", "2"))
        assert sc.current_desktop == 2
        app = NaiveApp(server, ["naivedemo", "-geometry", "+5+5"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        mwm.execute(FunctionCall("sendtodesktop", "0"), context=managed)
        assert managed.desktop == 0

    def test_switch_wraps_modulo(self, server, mwm):
        sc = mwm.screens[0]
        mwm.execute(FunctionCall("gotodesktop", "5"))
        assert sc.current_desktop == 5 % 3

    def test_panner_follows_current_desktop(self, server, mwm):
        sc = mwm.screens[0]
        a = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        mwm.process_pending()
        assert len(sc.panner.miniature_rects()) == 1
        mwm.switch_desktop(0, 1)
        assert sc.panner.miniature_rects() == []
        b = NaiveApp(server, ["naivedemo", "-geometry", "+200+200"])
        mwm.process_pending()
        assert len(sc.panner.miniature_rects()) == 1

    def test_independent_pan_offsets(self, server, mwm):
        sc = mwm.screens[0]
        mwm.pan_to(0, 500, 400)
        mwm.switch_desktop(0, 1)
        assert (sc.vdesk.pan_x, sc.vdesk.pan_y) == (0, 0)
        mwm.switch_desktop(0, 0)
        assert (sc.vdesk.pan_x, sc.vdesk.pan_y) == (500, 400)


class TestScrollbars:
    @pytest.fixture
    def swm_with_bars(self, server, db, tmp_path):
        db.put("swm*virtualDesktop", "3000x2400")
        db.put("swm*scrollbars", "True")
        return Swm(server, db, places_path=str(tmp_path / "places"))

    def test_bars_created(self, server, swm_with_bars):
        bars = swm_with_bars.screens[0].scrollbars
        assert bars is not None
        assert server.window(bars.vertical).mapped
        assert server.window(bars.horizontal).mapped

    def test_no_bars_by_default(self, server, vwm):
        assert vwm.screens[0].scrollbars is None

    def test_click_pans_vertically(self, server, swm_with_bars):
        wm = swm_with_bars
        bars = wm.screens[0].scrollbars
        origin = server.window(bars.vertical).position_in_root()
        # Click near the bottom of the trough.
        server.motion(origin.x + 5, origin.y + bars.trough_length(True) - 10)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()
        vdesk = wm.screens[0].vdesk
        assert vdesk.pan_y > 0

    def test_click_pans_horizontally(self, server, swm_with_bars):
        wm = swm_with_bars
        bars = wm.screens[0].scrollbars
        origin = server.window(bars.horizontal).position_in_root()
        server.motion(origin.x + bars.trough_length(False) - 10, origin.y + 5)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()
        assert wm.screens[0].vdesk.pan_x > 0

    def test_thumb_reflects_view(self, server, swm_with_bars):
        wm = swm_with_bars
        bars = wm.screens[0].scrollbars
        assert bars.thumb(True).y == 0
        wm.pan_to(0, 0, 1200)
        thumb = bars.thumb(True)
        trough = bars.trough_length(True)
        assert abs(thumb.y - trough * 1200 // 2400) <= 1

    def test_thumb_extent_proportional(self, server, swm_with_bars):
        bars = swm_with_bars.screens[0].scrollbars
        thumb = bars.thumb(False)
        trough = bars.trough_length(False)
        assert abs(thumb.width - trough * 1152 // 3000) <= 1


class TestResizeCorners:
    def test_corners_created_for_openlook(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.resize_corners
        corners = [wid for wid, owner in wm.corner_windows.items()
                   if owner is managed]
        assert len(corners) == 4

    def test_corner_click_starts_resize(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        rect = wm.frame_rect(managed)
        # The very corner pixel is outside every decoration object.
        server.motion(rect.x, rect.y + rect.height - 1)
        server.button_press(1)
        wm.process_pending()
        assert wm.drag is not None and wm.drag.kind == "resize"
        server.button_release(1)
        wm.process_pending()

    def test_corners_do_not_cover_buttons(self, server, wm):
        """The pulldown button still gets its clicks (corners stack
        below the objects)."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        button = managed.object_named("pulldown")
        origin = server.window(button.window).position_in_root()
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()
        assert wm.active_menu is not None  # the menu opened, no resize
        assert wm.drag is None

    def test_no_corners_without_resource(self, server, db, tmp_path):
        db.put("swm*panel.openLook.resizeCorners", "False")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert not wm.managed[app.wid].resize_corners
        assert wm.corner_windows == {}


class TestCrossingBindings:
    def test_enter_binding_focus_follows_mouse(self, server, db, tmp_path):
        db.put("swm*panel.openLook.bindings",
               "<Btn1> : f.raise <Enter> : f.focus")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        rect = wm.frame_rect(managed)
        server.motion(900, 800)
        wm.process_pending()
        server.motion(rect.x + 1, rect.y + rect.height // 2)
        wm.process_pending()
        focus, _ = app.conn.get_input_focus()
        assert focus == app.wid

    def test_leave_binding(self, server, db, tmp_path):
        db.put("swm*button.nail.bindings", "<Leave> : f.beep")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        nail = managed.object_named("nail")
        origin = server.window(nail.window).position_in_root()
        server.motion(origin.x + 2, origin.y + 2)
        wm.process_pending()
        before = wm.beeps
        server.motion(900, 800)
        wm.process_pending()
        assert wm.beeps == before + 1
