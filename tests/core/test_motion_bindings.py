"""<BtnNMotion> / <Motion> bindings: drag-to-move and hover actions."""

import pytest

from repro.clients import XTerm
from repro.core.bindings import bindings_for_motion, parse_bindings
import repro.xserver.events as ev


class TestMotionMatching:
    def test_button_motion_requires_button_held(self):
        clauses = parse_bindings("<Btn2Motion> : f.move")
        assert bindings_for_motion(clauses, ev.BUTTON2_MASK) is not None
        assert bindings_for_motion(clauses, 0) is None
        assert bindings_for_motion(clauses, ev.BUTTON1_MASK) is None

    def test_plain_motion_always_matches(self):
        clauses = parse_bindings("<Motion> : f.beep")
        assert bindings_for_motion(clauses, 0) is not None
        assert bindings_for_motion(clauses, ev.BUTTON1_MASK) is not None

    def test_modifier_constrained_motion(self):
        clauses = parse_bindings("Shift<Btn1Motion> : f.move")
        held = ev.BUTTON1_MASK | ev.SHIFT_MASK
        assert bindings_for_motion(clauses, held) is not None
        assert bindings_for_motion(clauses, ev.BUTTON1_MASK) is None


class TestDragToMove:
    def test_btn_motion_starts_move(self, server, db, tmp_path):
        """The classic 'drag the titlebar to move' idiom as one
        resource line."""
        from repro.core.wm import Swm

        db.put("swm*button.name.bindings",
               "<Btn1> : f.raise <Btn1Motion> : f.move")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        start = wm.frame_rect(managed)
        name_obj = managed.object_named("name")
        origin = server.window(name_obj.window).position_in_root()
        server.motion(origin.x + 4, origin.y + 4)
        server.button_press(1)
        wm.process_pending()
        assert wm.drag is None  # press alone just raises
        server.motion(origin.x + 10, origin.y + 8)  # drag begins
        wm.process_pending()
        assert wm.drag is not None and wm.drag.kind == "move"
        server.motion(origin.x + 64, origin.y + 44)
        server.button_release(1)
        wm.process_pending()
        after = wm.frame_rect(managed)
        # The move started at the first motion (origin+10, +8) and
        # ended at (origin+64, +44): a 54x36 displacement.
        assert (after.x - start.x, after.y - start.y) == (54, 36)

    def test_motion_without_binding_is_ignored(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        name_obj = managed.object_named("name")
        origin = server.window(name_obj.window).position_in_root()
        server.motion(origin.x + 4, origin.y + 4)
        server.button_press(4)
        server.motion(origin.x + 10, origin.y + 8)
        wm.process_pending()
        assert wm.drag is None
        server.button_release(4)
        wm.process_pending()
