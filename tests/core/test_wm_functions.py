"""Window manager functions and their invocation modes (§5)."""

import pytest

import repro.xserver.events as ev
from repro.clients import XClock, XTerm
from repro.core.bindings import FunctionCall
from repro.core.functions import FunctionError
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE


def managed_of(wm, app):
    wm.process_pending()
    return wm.managed[app.wid]


def frame_index(server, managed):
    frame = server.window(managed.frame)
    return frame.parent.children.index(frame)


class TestStackingFunctions:
    def test_raise_and_lower(self, server, wm):
        a = XTerm(server, ["xterm", "-geometry", "+10+10"])
        b = XTerm(server, ["xterm", "-geometry", "+20+20"])
        ma = managed_of(wm, a)
        mb = wm.managed[b.wid]
        wm.execute_string(f"f.raise(#{ma.client:#x})")
        assert frame_index(server, ma) > frame_index(server, mb)
        wm.execute(FunctionCall("lower"), context=ma)
        assert frame_index(server, ma) < frame_index(server, mb)

    def test_raiselower_toggles(self, server, wm):
        a = XTerm(server, ["xterm", "-geometry", "+10+10"])
        b = XTerm(server, ["xterm", "-geometry", "+20+20"])
        ma = managed_of(wm, a)
        wm.execute(FunctionCall("raiselower"), context=ma)
        assert frame_index(server, ma) == 1
        wm.execute(FunctionCall("raiselower"), context=ma)
        assert frame_index(server, ma) == 0

    def test_circleup(self, server, wm):
        a = XTerm(server, ["xterm", "-geometry", "+10+10"])
        b = XTerm(server, ["xterm", "-geometry", "+20+20"])
        ma = managed_of(wm, a)
        before = frame_index(server, ma)
        wm.execute(FunctionCall("circleup"))
        wm.process_pending()
        assert frame_index(server, ma) > before


class TestGeometryFunctions:
    def test_moveto(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+10+10"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("moveto", "400 300"), context=managed)
        rect = wm.frame_rect(managed)
        assert (rect.x, rect.y) == (400, 300)

    def test_resizeto(self, server, wm):
        app = XClock(server, ["xclock"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("resizeto", "200 220"), context=managed)
        _, _, width, height, _ = app.conn.get_geometry(app.wid)
        assert (width, height) == (200, 220)

    def test_save_zoom_restore_cycle(self, server, wm):
        """The paper's '<Btn2> : f.save f.zoom'."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        managed = managed_of(wm, app)
        original = wm.frame_rect(managed)
        wm.execute(FunctionCall("save"), context=managed)
        wm.execute(FunctionCall("zoom"), context=managed)
        zoomed = wm.frame_rect(managed)
        assert zoomed.width > original.width
        assert managed.zoomed
        # Zoom again restores.
        wm.execute(FunctionCall("zoom"), context=managed)
        restored = wm.frame_rect(managed)
        assert (restored.x, restored.y) == (original.x, original.y)
        assert abs(restored.width - original.width) <= 2
        assert not managed.zoomed

    def test_zoom_fills_screen(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("zoom"), context=managed)
        rect = wm.frame_rect(managed)
        assert rect.width >= server.screens[0].width - 10

    def test_restore_without_save_is_noop(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+50+50"])
        managed = managed_of(wm, app)
        before = wm.frame_rect(managed)
        wm.execute(FunctionCall("restore"), context=managed)
        assert wm.frame_rect(managed) == before

    def test_moveto_bad_args(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        with pytest.raises(FunctionError):
            wm.execute(FunctionCall("moveto", "banana"), context=managed)


class TestStateFunctions:
    def test_iconify_deiconify(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("iconify"), context=managed)
        assert managed.state == ICONIC_STATE
        assert not server.window(managed.frame).mapped
        assert server.window(managed.icon.window).mapped
        wm.execute(FunctionCall("deiconify"), context=managed)
        assert managed.state == NORMAL_STATE
        assert server.window(managed.frame).mapped

    def test_focus(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("focus"), context=managed)
        focus, _ = app.conn.get_input_focus()
        assert focus == app.wid

    def test_destroy(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("destroy"), context=managed)
        wm.process_pending()
        assert app.wid not in wm.managed
        assert not app.conn.window_exists(app.wid)

    def test_delete_without_protocol_destroys(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("delete"), context=managed)
        wm.process_pending()
        assert not app.conn.window_exists(app.wid)

    def test_delete_with_protocol_sends_message(self, server, wm):
        from repro import icccm

        app = XTerm(server, ["xterm"])
        icccm.set_wm_protocols(app.conn, app.wid, ["WM_DELETE_WINDOW"])
        managed = managed_of(wm, app)
        app.conn.events()
        wm.execute(FunctionCall("delete"), context=managed)
        messages = [e for e in app.conn.events() if isinstance(e, ev.ClientMessage)]
        assert messages
        assert app.conn.window_exists(app.wid)  # client decides


class TestInvocationModes:
    def test_class_mode_hits_all_matching(self, server, wm):
        """f.iconify(XTerm) iconifies every xterm (§5)."""
        terms = [XTerm(server, ["xterm"]) for _ in range(3)]
        clock = XClock(server, ["xclock"])
        wm.process_pending()
        wm.execute(FunctionCall("iconify", "XTerm"))
        for term in terms:
            assert wm.managed[term.wid].state == ICONIC_STATE
        assert wm.managed[clock.wid].state == NORMAL_STATE

    def test_instance_mode(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.execute(FunctionCall("iconify", "xterm"))
        assert wm.managed[app.wid].state == ICONIC_STATE

    def test_window_id_mode(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("iconify", f"#{app.wid:#x}"))
        assert managed.state == ICONIC_STATE

    def test_pointer_mode(self, server, wm):
        """f.raise(#$): the window under the mouse."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        managed = managed_of(wm, app)
        rect = wm.frame_rect(managed)
        server.motion(rect.x + 10, rect.y + 30)
        wm.process_pending()
        wm.execute(FunctionCall("iconify", "#$"))
        assert managed.state == ICONIC_STATE

    def test_pointer_mode_misses(self, server, wm):
        XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        server.motion(900, 850)  # over the root
        wm.process_pending()
        before = wm.beeps
        wm.execute(FunctionCall("iconify", "#$"))
        assert wm.beeps == before + 1

    def test_unknown_class_beeps(self, server, wm):
        before = wm.beeps
        wm.execute(FunctionCall("iconify", "NoSuchClass"))
        assert wm.beeps == before + 1

    def test_selection_mode_single(self, server, wm):
        """No argument and no context: prompt for a window."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("iconify"))  # no context -> prompt
        assert wm.selection is not None
        assert server.active_grab is not None
        rect = wm.frame_rect(managed)
        server.motion(rect.x + 5, rect.y + 25)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()
        assert managed.state == ICONIC_STATE
        assert wm.selection is None
        assert server.active_grab is None

    def test_selection_mode_multiple(self, server, wm):
        """f.iconify(multiple): prompt repeatedly until a root click."""
        apps = [
            XTerm(server, ["xterm", "-geometry", f"+{100 + i * 250}+100"])
            for i in range(2)
        ]
        wm.process_pending()
        wm.execute(FunctionCall("iconify", "multiple"))
        for app in apps:
            managed = wm.managed[app.wid]
            rect = wm.frame_rect(managed)
            server.motion(rect.x + 5, rect.y + 25)
            server.button_press(1)
            server.button_release(1)
            wm.process_pending()
            assert managed.state == ICONIC_STATE
            assert wm.selection is not None  # still prompting
        # Click on the root: prompt ends.
        server.motion(1000, 800)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()
        assert wm.selection is None

    def test_selection_uses_question_cursor(self, server, wm):
        wm.execute(FunctionCall("iconify"))
        assert server.active_grab.cursor == "question_arrow"
        # Cancel.
        server.motion(1100, 880)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()

    def test_bad_window_id(self, server, wm):
        with pytest.raises(FunctionError):
            wm.execute(FunctionCall("iconify", "#zzz"))

    def test_unknown_function(self, server, wm):
        with pytest.raises(FunctionError):
            wm.execute(FunctionCall("frobnicate"))


class TestMiscFunctions:
    def test_warpvertical(self, server, wm):
        server.motion(500, 500)
        wm.execute(FunctionCall("warpvertical", "-50"))
        assert server.pointer.y == 450

    def test_warphorizontal(self, server, wm):
        server.motion(500, 500)
        wm.execute(FunctionCall("warphorizontal", "30"))
        assert server.pointer.x == 530

    def test_exec_launches_client(self, server, wm):
        wm.execute(FunctionCall("exec", "xclock -geometry 100x100+5+5"))
        wm.process_pending()
        launched = wm.launched[-1]
        assert launched.wid in wm.managed

    def test_exec_needs_command(self, server, wm):
        with pytest.raises(FunctionError):
            wm.execute(FunctionCall("exec"))

    def test_beep(self, server, wm):
        before = wm.beeps
        wm.execute(FunctionCall("beep"))
        assert wm.beeps == before + 1

    def test_nop(self, server, wm):
        wm.execute(FunctionCall("nop"))

    def test_setimage_changes_button(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("setimage", "nail:xlogo16"), context=managed)
        nail = managed.object_named("nail")
        assert nail.image.width == 16

    def test_setlabel_changes_button(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = managed_of(wm, app)
        wm.execute(FunctionCall("setlabel", "name:BUSY"), context=managed)
        assert managed.object_named("name").display_label() == "BUSY"

    def test_setimage_unknown_object(self, server, wm):
        with pytest.raises(FunctionError):
            wm.execute(FunctionCall("setimage", "ghost:xlogo16"))

    def test_function_docs_present(self):
        from repro.core.functions import FUNCTIONS

        for name, spec in FUNCTIONS.items():
            assert spec.doc, f"f.{name} lacks a docstring"


class TestAxisZoom:
    def test_hzoom_full_width_only(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        managed = managed_of(wm, app)
        before = wm.frame_rect(managed)
        wm.execute(FunctionCall("hzoom"), context=managed)
        after = wm.frame_rect(managed)
        assert after.width >= server.screens[0].width - 10
        assert after.height == before.height
        assert after.y == before.y

    def test_vzoom_full_height_only(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        managed = managed_of(wm, app)
        before = wm.frame_rect(managed)
        wm.execute(FunctionCall("vzoom"), context=managed)
        after = wm.frame_rect(managed)
        assert after.height >= server.screens[0].height - 30
        assert abs(after.width - before.width) <= 6  # hint rounding
        assert after.x == before.x

    def test_axis_zoom_restores(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        managed = managed_of(wm, app)
        before = wm.frame_rect(managed)
        wm.execute(FunctionCall("hzoom"), context=managed)
        wm.execute(FunctionCall("hzoom"), context=managed)  # toggles back
        after = wm.frame_rect(managed)
        assert (after.x, after.y) == (before.x, before.y)
        assert abs(after.width - before.width) <= 6
