"""The shipped template files (§3): OpenLook+, Motif, default."""

import pytest

from repro.clients import OClock, XTerm
from repro.core.templates import (
    DEFAULT_TEMPLATE,
    MOTIF_TEMPLATE,
    OPENLOOK_TEMPLATE,
    TEMPLATES,
    load_template,
)
from repro.core.wm import Swm
from repro.figures import figure1_decoration
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


class TestTemplateLoading:
    def test_all_templates_parse(self):
        for name in TEMPLATES:
            db = load_template(name)
            assert len(db) > 0

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            load_template("CDE")

    def test_load_into_existing_db(self):
        db = load_template("OpenLook+")
        load_template("RootPanel", db)
        assert db.get(
            ["swm", "panel", "RootPanel"], ["Swm", "Panel", "RootPanel"]
        ) is not None

    def test_user_overrides_template(self):
        """§3: 'include and then override defaults in a standard
        template file'."""
        db = load_template("OpenLook+")
        db.put("swm*decoration", "myOwn")
        assert db.get(
            ["swm", "x", "decoration"], ["Swm", "X", "Decoration"]
        ) == "myOwn"


class TestMotifTemplate:
    @pytest.fixture
    def mwm(self, server, tmp_path):
        return Swm(server, load_template("Motif"),
                   places_path=str(tmp_path / "p"))

    def test_motif_decoration_structure(self, server, mwm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        assert managed.decoration_name == "motif"
        for name in ("menub", "name", "minimize", "maximize", "client"):
            assert managed.object_named(name) is not None

    def test_motif_minimize_button(self, server, mwm):
        from repro.icccm.hints import ICONIC_STATE

        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        button = managed.object_named("minimize")
        origin = server.window(button.window).position_in_root()
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(1)
        server.button_release(1)
        mwm.process_pending()
        assert managed.state == ICONIC_STATE

    def test_motif_maximize_button(self, server, mwm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        button = managed.object_named("maximize")
        origin = server.window(button.window).position_in_root()
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(1)
        server.button_release(1)
        mwm.process_pending()
        assert managed.zoomed
        assert wm_frame_covers_screen(server, mwm, managed)

    def test_motif_window_menu(self, server, mwm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        button = managed.object_named("menub")
        origin = server.window(button.window).position_in_root()
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(1)
        server.button_release(1)
        mwm.process_pending()
        assert mwm.active_menu is not None
        menu, _, _ = mwm.active_menu
        labels = [item.label for item in menu.items]
        assert labels == ["Restore", "Move", "Size", "Minimize",
                          "Maximize", "Lower", "Close"]

    def test_motif_shaped_clients_still_shapeit(self, server, mwm):
        app = OClock(server, ["oclock"])
        mwm.process_pending()
        assert mwm.managed[app.wid].decoration_name == "shapeit"

    def test_motif_icon_uses_text_object(self, server, mwm):
        app = XTerm(server, ["xterm"])
        mwm.process_pending()
        managed = mwm.managed[app.wid]
        mwm.iconify(managed)
        from repro.core.objects import TextObject

        assert isinstance(managed.icon.panel.find("iconname"), TextObject)

    def test_motif_figure_renders(self, server, mwm):
        app = XTerm(server, ["xterm", "-geometry", "40x12+40+40",
                             "-title", "mwm-demo"])
        mwm.process_pending()
        art = figure1_decoration(server, mwm, app.wid)
        assert "mwm-demo" in art


def wm_frame_covers_screen(server, wm, managed):
    rect = wm.frame_rect(managed)
    screen = server.screens[0]
    return rect.width >= screen.width - 10 and rect.height >= screen.height - 10


class TestDefaultTemplate:
    def test_minimal_titlebar(self, server, tmp_path):
        wm = Swm(server, load_template("default"),
                 places_path=str(tmp_path / "p"))
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.decoration_name == "default"
        assert managed.object_named("name") is not None
        assert managed.object_named("pulldown") is None

    def test_default_lacks_shaped_decoration(self, server, tmp_path):
        """The default template has no swm*shaped*decoration, so a
        shaped client falls back to the generic decoration."""
        wm = Swm(server, load_template("default"),
                 places_path=str(tmp_path / "p"))
        app = OClock(server, ["oclock"])
        wm.process_pending()
        assert wm.managed[app.wid].decoration_name == "default"


class TestTemplateEquivalence:
    def test_same_client_three_looks(self, server):
        """The policy-free pitch: one client, three decorations, zero
        code."""
        decorations = {}
        for name in ("OpenLook+", "Motif", "default"):
            srv = XServer(screens=[(1152, 900, 8)])
            wm = Swm(srv, load_template(name), places_path="/tmp/t.places")
            app = XTerm(srv, ["xterm", "-geometry", "+50+50"])
            wm.process_pending()
            decorations[name] = wm.managed[app.wid].decoration_name
        assert decorations == {
            "OpenLook+": "openLook",
            "Motif": "motif",
            "default": "default",
        }
