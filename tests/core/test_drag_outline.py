"""Interactive drag state: the outline the user sees, and circulate
request handling."""

import pytest

import repro.xserver.events as ev
from repro.clients import XTerm


class TestMoveOutline:
    def test_outline_tracks_pointer(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        start = wm.frame_rect(managed)
        wm.begin_move(managed, (150, 150))
        server.motion(180, 170)
        wm.process_pending()
        outline = wm.drag.current
        assert (outline.x, outline.y) == (start.x + 30, start.y + 20)
        # The frame itself has NOT moved yet (outline drag, not opaque).
        assert wm.frame_rect(managed) == start
        server.motion(250, 260)
        wm.process_pending()
        outline = wm.drag.current
        assert (outline.x, outline.y) == (start.x + 100, start.y + 110)
        server.button_release(1)
        wm.process_pending()
        moved = wm.frame_rect(managed)
        assert (moved.x, moved.y) == (start.x + 100, start.y + 110)

    def test_resize_outline_grows(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        start = wm.frame_rect(managed)
        wm.begin_resize(managed, (start.x2, start.y2))
        server.motion(start.x2 + 24, start.y2 + 26)
        wm.process_pending()
        outline = wm.drag.current
        assert outline.width == start.width + 24
        assert outline.height == start.height + 26
        server.button_release(1)
        wm.process_pending()

    def test_resize_never_collapses(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+300+300"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        start = wm.frame_rect(managed)
        wm.begin_resize(managed, (start.x2, start.y2))
        server.motion(start.x, start.y)  # drag far past the origin
        wm.process_pending()
        assert wm.drag.current.width >= 8
        assert wm.drag.current.height >= 8
        server.button_release(1)
        wm.process_pending()
        _, _, width, height, _ = app.conn.get_geometry(app.wid)
        assert width >= 1 and height >= 1

    def test_grab_cursor_during_move(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        wm.begin_move(wm.managed[app.wid], (150, 150))
        assert server.active_grab.cursor == "fleur"
        server.button_release(1)
        wm.process_pending()
        assert server.active_grab is None

    def test_grab_cursor_during_resize(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        wm.begin_resize(wm.managed[app.wid], (150, 150))
        assert server.active_grab.cursor == "sizing"
        server.button_release(1)
        wm.process_pending()


class TestCirculateRequest:
    def test_client_circulate_redirected_and_applied(self, server, wm):
        a = XTerm(server, ["xterm", "-geometry", "+10+10"])
        b = XTerm(server, ["xterm", "-geometry", "+20+20"])
        wm.process_pending()
        ma, mb = wm.managed[a.wid], wm.managed[b.wid]
        parent = server.window(ma.frame).parent
        # Circulating the frames' parent raises the lowest frame.
        bottom = parent.children[0]
        a.conn.circulate_window(parent.id, ev.RAISE_LOWEST)
        wm.process_pending()
        assert parent.children[-1] is bottom
