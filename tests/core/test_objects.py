"""The four swm object types."""

import pytest

from repro.core.objects import (
    Button,
    Menu,
    MenuParseError,
    Panel,
    SwmObject,
    TextObject,
    make_object,
    object_factory,
    parse_menu_spec,
)
from repro.core.panel_spec import PanelSpecError
from repro.toolkit import AttributeContext
from repro.xrm import ResourceDatabase
from repro.xserver import ClientConnection, XServer
from repro.xserver.geometry import Rect


@pytest.fixture
def db():
    db = ResourceDatabase()
    db.load_string(
        """
swm*font: 8x13
swm*button.ok.label: OK
swm*button.ok.bindings: <Btn1> : f.raise
swm*button.close.image: xlogo16
swm*text.title.label: Hello World
swm*panel.titlebar: button ok +0+0 text title +C+0
swm*panel.nested: panel titlebar +0+0 button extra +0+1
swm*panel.loop: panel loop +0+0
swm*menu.ops: Raise=f.raise; Zoom=f.save f.zoom
swm*button.ok.padding: 3
"""
    )
    return db


@pytest.fixture
def ctx(db):
    return AttributeContext(db, ["swm", "color", "screen0"],
                            ["Swm", "Color", "Screen"])


class TestFactory:
    def test_make_each_type(self, ctx):
        assert isinstance(make_object(ctx, "panel", "p"), Panel)
        assert isinstance(make_object(ctx, "button", "b"), Button)
        assert isinstance(make_object(ctx, "text", "t"), TextObject)
        assert isinstance(make_object(ctx, "menu", "m"), Menu)

    def test_unknown_type(self, ctx):
        with pytest.raises(ValueError):
            make_object(ctx, "widget", "w")

    def test_generic_attribute_interface(self, ctx):
        """OI-style: every object answers the same attribute queries."""
        for obj_type in ("panel", "button", "text", "menu"):
            obj = make_object(ctx, obj_type, "generic")
            assert obj.background is not None
            assert obj.font.char_width > 0
            assert isinstance(obj.cursor, str)
            assert obj.bindings == []


class TestButton:
    def test_label_from_resources(self, ctx):
        button = Button(ctx, "ok")
        assert button.label == "OK"

    def test_label_defaults_to_name(self, ctx):
        assert Button(ctx, "quit").label == "quit"

    def test_text_size(self, ctx):
        button = Button(ctx, "ok")
        size = button.natural_size()
        # "OK" at 8px/char + 2*padding(3) + 2.
        assert size.width == 2 * 8 + 6 + 2

    def test_image_size(self, ctx):
        button = Button(ctx, "close")
        size = button.natural_size()
        assert size.width == 16 + 2 * button.padding

    def test_dynamic_image_change(self, ctx):
        """§4.2: buttons change appearance dynamically."""
        button = Button(ctx, "ok")
        assert button.image is None
        button.set_image("xlogo32")
        assert button.image.width == 32
        button.clear_overrides()
        assert button.image is None

    def test_dynamic_label(self, ctx):
        button = Button(ctx, "ok")
        button.set_label("Changed")
        assert button.label == "Changed"

    def test_bindings_parsed(self, ctx):
        button = Button(ctx, "ok")
        assert button.bindings[0].functions[0].name == "raise"

    def test_dynamic_bindings_change(self, ctx):
        """§4.4: bindings can be changed at run time."""
        button = Button(ctx, "ok")
        button.set_bindings("<Btn1> : f.lower")
        assert button.bindings[0].functions[0].name == "lower"
        button.clear_binding_override()
        assert button.bindings[0].functions[0].name == "raise"


class TestText:
    def test_text_from_resources(self, ctx):
        text = TextObject(ctx, "title")
        assert text.text == "Hello World"

    def test_set_text(self, ctx):
        text = TextObject(ctx, "title")
        text.set_text("other")
        assert text.display_label() == "other"


class TestPanel:
    def test_build_from_definition(self, ctx):
        panel = Panel(ctx, "titlebar")
        panel.build(object_factory(ctx))
        assert [c.name for c in panel.children] == ["ok", "title"]

    def test_nested_panels(self, ctx):
        panel = Panel(ctx, "nested")
        panel.build(object_factory(ctx))
        inner = panel.children[0]
        assert isinstance(inner, Panel)
        assert [c.name for c in inner.children] == ["ok", "title"]

    def test_self_nesting_capped(self, ctx):
        panel = Panel(ctx, "loop")
        with pytest.raises(PanelSpecError):
            panel.build(object_factory(ctx))

    def test_layout_and_find(self, ctx):
        panel = Panel(ctx, "titlebar")
        panel.build(object_factory(ctx))
        layout = panel.compute_layout()
        assert layout.size.width > 0
        assert panel.find("title") is not None
        assert panel.find("missing") is None

    def test_undefined_panel_is_bare(self, ctx):
        panel = Panel(ctx, "nonexistent")
        panel.build(object_factory(ctx))
        assert panel.children == []

    def test_realize_tree(self, ctx):
        server = XServer(screens=[(500, 500, 8)])
        conn = ClientConnection(server)
        panel = Panel(ctx, "titlebar")
        panel.build(object_factory(ctx))
        layout = panel.compute_layout()
        window = panel.realize_tree(
            conn, conn.root_window(),
            Rect(10, 10, layout.size.width, layout.size.height),
        )
        assert conn.window_exists(window)
        for child in panel.children:
            assert conn.window_exists(child.window)
            _, parent, _ = conn.query_tree(child.window)
            assert parent == window


class TestMenu:
    def test_parse_menu_spec(self):
        items = parse_menu_spec("Raise=f.raise; Zoom=f.save f.zoom")
        assert [i.label for i in items] == ["Raise", "Zoom"]
        assert [f.name for f in items[1].functions] == ["save", "zoom"]

    def test_menu_from_resources(self, ctx):
        menu = Menu(ctx, "ops")
        assert len(menu.items) == 2

    def test_undefined_menu(self, ctx):
        menu = Menu(ctx, "ghost")
        with pytest.raises(MenuParseError):
            menu.items

    def test_bad_item(self):
        with pytest.raises(MenuParseError):
            parse_menu_spec("no-equals-here")

    def test_empty_menu(self):
        with pytest.raises(MenuParseError):
            parse_menu_spec(" ; ; ")

    def test_missing_label(self):
        with pytest.raises(MenuParseError):
            parse_menu_spec("=f.raise")

    def test_popup_and_popdown(self, ctx):
        server = XServer(screens=[(500, 500, 8)])
        conn = ClientConnection(server)
        menu = Menu(ctx, "ops")
        window = menu.popup(conn, conn.root_window(), 100, 100)
        assert conn.window_exists(window)
        assert len(menu.item_windows) == 2
        assert menu.item_at(menu.item_windows[1]).label == "Zoom"
        assert menu.item_at(999) is None
        menu.popdown(conn)
        assert not conn.window_exists(window)

    def test_natural_size_covers_items(self, ctx):
        menu = Menu(ctx, "ops")
        size = menu.natural_size()
        assert size.height >= 2 * menu.item_height()


class TestObjectShapeMasks:
    def test_shape_mask_attribute_shapes_window(self, ctx, db):
        """§5.1: per-object shape masks from a bitmap attribute."""
        db.put("swm*button.pin.shapeMask", "pushpin")
        server = XServer(screens=[(500, 500, 8)])
        conn = ClientConnection(server)
        from repro.core.objects import Button

        button = Button(ctx, "pin")
        from repro.xserver.geometry import Rect

        button.realize(conn, conn.root_window(), Rect(10, 10, 20, 20))
        assert conn.window_is_shaped(button.window)

    def test_no_shape_by_default(self, ctx):
        server = XServer(screens=[(500, 500, 8)])
        conn = ClientConnection(server)
        from repro.core.objects import Button
        from repro.xserver.geometry import Rect

        button = Button(ctx, "plain")
        button.realize(conn, conn.root_window(), Rect(10, 10, 20, 20))
        assert not conn.window_is_shaped(button.window)
