"""Bindings dispatch, menus, swmcmd, and interactive move/resize."""

import pytest

from repro.clients import XClock, XTerm
from repro.core.swmcmd import SwmCmdError, parse_command, parse_command_stream, swmcmd
from repro.icccm.hints import ICONIC_STATE


def object_origin(server, managed, name):
    obj = managed.object_named(name)
    return server.window(obj.window).position_in_root()


def click_at(server, x, y, button=1):
    server.motion(x, y)
    server.button_press(button)
    server.button_release(button)


class TestBindingsDispatch:
    def test_name_button_raise_binding(self, server, wm):
        """Template: <Btn1> on the name button raises."""
        a = XTerm(server, ["xterm", "-geometry", "+50+50"])
        b = XTerm(server, ["xterm", "-geometry", "+80+80"])
        wm.process_pending()
        ma = wm.managed[a.wid]
        origin = object_origin(server, ma, "name")
        click_at(server, origin.x + 2, origin.y + 2)
        wm.process_pending()
        frame = server.window(ma.frame)
        assert frame.parent.children[-1] is frame

    def test_nail_button_toggles_sticky(self, server, vwm):
        app = XTerm(server, ["xterm", "-geometry", "+50+50"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        origin = object_origin(server, managed, "nail")
        click_at(server, origin.x + 2, origin.y + 2)
        vwm.process_pending()
        assert managed.sticky

    def test_panel_binding_fallback(self, server, wm):
        """A click on the decoration panel itself (not a button) uses
        the panel's own bindings."""
        a = XTerm(server, ["xterm", "-geometry", "+50+50"])
        b = XTerm(server, ["xterm", "-geometry", "+300+50"])
        wm.process_pending()
        ma = wm.managed[a.wid]
        wm.lower_managed(ma)
        frame_rect = wm.frame_rect(ma)
        # Mid-left margin of the frame: panel area — not a button, and
        # away from the resize-corner hot zones.
        click_at(server, frame_rect.x + 1, frame_rect.y + frame_rect.height // 2)
        wm.process_pending()
        frame = server.window(ma.frame)
        assert frame.parent.children[-1] is frame

    def test_key_binding_on_object(self, server, wm, db):
        app = XTerm(server, ["xterm", "-geometry", "+50+300"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        origin = object_origin(server, managed, "name")
        server.motion(origin.x + 2, origin.y + 2)
        wm.process_pending()
        # The OpenLook template has no key bindings; add one dynamically.
        managed.object_named("name").set_bindings(
            "<Btn1> : f.raise <Key>Up : f.warpvertical(-50)"
        )
        pointer_y = server.pointer.y
        server.key_press("Up")
        server.key_release("Up")
        wm.process_pending()
        assert server.pointer.y == pointer_y - 50

    def test_root_bindings(self, server, db):
        from repro.core.wm import Swm

        db.put("swm*panel.root.bindings", "<Btn3> : f.beep")
        wm = Swm(server, db)
        before = wm.beeps
        click_at(server, 600, 600, button=3)
        wm.process_pending()
        assert wm.beeps == before + 1

    def test_unbound_click_is_ignored(self, server, wm):
        XTerm(server, ["xterm", "-geometry", "+50+50"])
        wm.process_pending()
        click_at(server, 1000, 850, button=5)
        wm.process_pending()  # no exception, nothing happens


class TestMenus:
    def test_pulldown_opens_menu(self, server, wm):
        """Template: pulldown button pops the windowops menu."""
        app = XTerm(server, ["xterm", "-geometry", "+50+50"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        origin = object_origin(server, managed, "pulldown")
        click_at(server, origin.x + 2, origin.y + 2)
        wm.process_pending()
        assert wm.active_menu is not None
        menu, _, context = wm.active_menu
        assert context is managed
        assert len(menu.item_windows) == 8

    def test_menu_item_executes_with_context(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+50+50"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        origin = object_origin(server, managed, "pulldown")
        click_at(server, origin.x + 2, origin.y + 2)
        wm.process_pending()
        menu, _, _ = wm.active_menu
        # Click the "Iconify" item (index 4 in the template's menu).
        labels = [item.label for item in menu.items]
        index = labels.index("Iconify")
        item_window = menu.item_windows[index]
        item_origin = server.window(item_window).position_in_root()
        click_at(server, item_origin.x + 2, item_origin.y + 2)
        wm.process_pending()
        assert managed.state == ICONIC_STATE
        assert wm.active_menu is None

    def test_click_outside_closes_menu(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+50+50"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        origin = object_origin(server, managed, "pulldown")
        click_at(server, origin.x + 2, origin.y + 2)
        wm.process_pending()
        assert wm.active_menu is not None
        click_at(server, 1100, 880)
        wm.process_pending()
        assert wm.active_menu is None

    def test_fmenu_function_directly(self, server, wm):
        from repro.core.bindings import FunctionCall

        wm.execute(FunctionCall("menu", "windowops"), pointer=(300, 300))
        assert wm.active_menu is not None
        menu, _, _ = wm.active_menu
        x, y, _, _, _ = wm.conn.get_geometry(menu.window)
        assert (x, y) == (300, 300)


class TestSwmCmd:
    def test_parse_command(self):
        call = parse_command("f.raise")
        assert call.name == "raise" and call.argument is None

    def test_parse_with_argument(self):
        call = parse_command("f.iconify(#0x1234)")
        assert call.argument == "#0x1234"

    def test_parse_without_prefix(self):
        assert parse_command("raise").name == "raise"

    def test_parse_bad(self):
        with pytest.raises(SwmCmdError):
            parse_command("not a command!")

    def test_parse_stream(self):
        calls = parse_command_stream("f.raise\nf.lower\n\n")
        assert [c.name for c in calls] == ["raise", "lower"]

    def test_swmcmd_executes_windowless_function(self, server, wm):
        before = wm.beeps
        swmcmd(server, "f.beep")
        wm.process_pending()
        assert wm.beeps == before + 1

    def test_swmcmd_with_window_id(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        swmcmd(server, f"f.iconify(#{app.wid:#x})")
        wm.process_pending()
        assert wm.managed[app.wid].state == ICONIC_STATE

    def test_swmcmd_prompts_for_window(self, server, wm):
        """The paper: 'swmcmd f.raise' changes the pointer to a
        question mark prompting for a window."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.lower_managed(managed)
        swmcmd(server, "f.iconify")
        wm.process_pending()
        assert wm.selection is not None
        assert server.active_grab.cursor == "question_arrow"
        rect = wm.frame_rect(managed)
        click_at(server, rect.x + 4, rect.y + 25)
        wm.process_pending()
        assert managed.state == ICONIC_STATE

    def test_swmcmd_property_deleted_after_execution(self, server, wm):
        swmcmd(server, "f.beep")
        wm.process_pending()
        value = wm.conn.get_string_property(
            wm.conn.root_window(), "SWM_COMMAND"
        )
        assert not value

    def test_swmcmd_multiple_commands_accumulate(self, server, wm):
        """Commands append to the property; swm runs them all."""
        from repro.xserver import ClientConnection
        from repro.xserver.properties import PROP_MODE_APPEND

        # Write two commands before the WM drains (handler runs per
        # notify, but appends are cumulative if it were busy).
        before = wm.beeps
        swmcmd(server, "f.beep")
        swmcmd(server, "f.beep")
        wm.process_pending()
        assert wm.beeps == before + 2

    def test_swmcmd_bad_function_beeps(self, server, wm):
        before = wm.beeps
        swmcmd(server, "f.noSuchFunction")
        wm.process_pending()
        assert wm.beeps == before + 1

    def test_setimage_via_swmcmd(self, server, wm):
        """'This interface could also be used for things such as
        changing the shape of a button to indicate the status of a
        process.'"""
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        swmcmd(server, "f.setimage(nail:mailfull)")
        wm.process_pending()
        assert managed.object_named("nail").image.width == 16


class TestInteractiveMoveResize:
    def test_interactive_move(self, server, wm):
        """f.move via the name button: press, drag, release."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        before = wm.frame_rect(managed)
        origin = object_origin(server, managed, "name")
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(2)  # template: <Btn2> on name = f.move
        wm.process_pending()
        assert wm.drag is not None and wm.drag.kind == "move"
        server.motion(origin.x + 202, origin.y + 102)
        server.button_release(2)
        wm.process_pending()
        after = wm.frame_rect(managed)
        assert (after.x, after.y) == (before.x + 200, before.y + 100)

    def test_move_sends_synthetic_configure(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        app.conn.events()
        origin = object_origin(server, managed, "name")
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(2)
        server.motion(origin.x + 52, origin.y + 52)
        server.button_release(2)
        wm.process_pending()
        import repro.xserver.events as ev

        notifies = [
            e for e in app.conn.events()
            if isinstance(e, ev.ConfigureNotify) and e.send_event
        ]
        assert notifies
        # The client knows its new believed position.
        assert app.believed_position == (150, 150)

    def test_interactive_resize(self, server, wm):
        """Template: <Btn3> on the decoration panel = f.resize; the
        press inside the client area propagates up to the panel."""
        from repro.clients import XLoad

        app = XLoad(server, ["xload", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        rect = wm.frame_rect(managed)
        # Press in the panel area (bottom-right, inside the frame).
        press_x = rect.x + rect.width - 3
        press_y = rect.y + rect.height - 3
        server.motion(press_x, press_y)
        server.button_press(3)
        wm.process_pending()
        assert wm.drag is not None and wm.drag.kind == "resize"
        server.motion(press_x + 60, press_y + 40)
        server.button_release(3)
        wm.process_pending()
        after = wm.frame_rect(managed)
        assert after.width == rect.width + 60
        assert after.height == rect.height + 40

    def test_resize_respects_hints_during_drag(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        rect = wm.frame_rect(managed)
        server.motion(rect.x + rect.width - 3, rect.y + rect.height - 3)
        server.button_press(3)
        server.motion(rect.x + rect.width + 37, rect.y + rect.height + 23)
        server.button_release(3)
        wm.process_pending()
        _, _, width, height, _ = app.conn.get_geometry(app.wid)
        assert (width - 16) % 6 == 0
        assert (height - 16) % 13 == 0
