"""Odds and ends: opaque move, protocol tracing, find_managed,
execute_string errors, refresh, multi-reset robustness."""

import pytest

from repro.clients import XTerm
from repro.core.swmcmd import SwmCmdError
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.xserver import XServer


class TestOpaqueMove:
    def test_opaque_move_drags_frame_live(self, server, db, tmp_path):
        db.put("swm*opaqueMove", "True")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        start = wm.frame_rect(managed)
        wm.begin_move(managed, (150, 150))
        server.motion(200, 180)
        wm.process_pending()
        live = wm.frame_rect(managed)
        assert (live.x, live.y) == (start.x + 50, start.y + 30)
        server.button_release(1)
        wm.process_pending()

    def test_outline_move_by_default(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        start = wm.frame_rect(managed)
        wm.begin_move(managed, (150, 150))
        server.motion(200, 180)
        wm.process_pending()
        assert wm.frame_rect(managed) == start  # outline only
        server.button_release(1)
        wm.process_pending()


class TestProtocolTrace:
    def test_trace_records_requests(self, server, wm):
        server.start_trace()
        app = XTerm(server, ["xterm", "-geometry", "+10+10"])
        wm.process_pending()
        trace = server.stop_trace()
        names = [name for _, name in trace]
        assert "create_window" in names
        assert "reparent_window" in names
        assert "map_window" in names

    def test_trace_bounded(self, server):
        from repro.xserver import ClientConnection

        server.start_trace(maxlen=10)
        conn = ClientConnection(server)
        for _ in range(50):
            conn.intern_atom("X")  # no tick; use motion instead
            server.motion(10, 10)
            server.motion(20, 20)
        trace = server.stop_trace()
        assert len(trace) <= 10

    def test_trace_off_by_default(self, server):
        assert server.trace_snapshot() == []


class TestFindManaged:
    def test_by_client_frame_and_descendant(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert wm.find_managed(app.wid) is managed
        assert wm.find_managed(managed.frame) is managed
        name_obj = managed.object_named("name")
        assert wm.find_managed(name_obj.window) is managed

    def test_unknown_window(self, server, wm):
        assert wm.find_managed(0xDEAD) is None

    def test_popup_of_managed_client(self, server, wm):
        """A popup is a root child, not inside the frame -> not
        resolved to the managed window."""
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        popup = app.popup_at_offset(5, 5)
        assert wm.find_managed(popup) is None


class TestExecuteString:
    def test_bad_string_raises(self, server, wm):
        with pytest.raises(SwmCmdError):
            wm.execute_string("!! nope !!")

    def test_refresh_runs(self, server, wm):
        wm.execute_string("f.refresh")

    def test_places_via_string(self, server, wm, tmp_path):
        XTerm(server, ["xterm"])
        wm.process_pending()
        wm.execute_string("f.places")
        with open(wm.places_path) as handle:
            assert "xterm" in handle.read()


class TestRepeatedResets:
    def test_double_reset(self, server, wm):
        XTerm(server, ["xterm"])
        wm.process_pending()
        server.reset()
        server.reset()
        assert server.generation == 3

    def test_wm_after_reset_can_restart_fresh(self, db, tmp_path):
        server = XServer(screens=[(1152, 900, 8)])
        db.put("swm*virtualDesktop", "3000x2400")
        wm = Swm(server, db, places_path=str(tmp_path / "p1"))
        XTerm(server, ["xterm"])
        wm.process_pending()
        server.reset()
        wm2 = Swm(server, db, places_path=str(tmp_path / "p2"))
        app = XTerm(server, ["xterm"])
        wm2.process_pending()
        assert app.wid in wm2.managed

    def test_quit_then_second_wm(self, server, db, tmp_path):
        wm = Swm(server, db, places_path=str(tmp_path / "p1"))
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.quit()
        wm2 = Swm(server, db, places_path=str(tmp_path / "p2"))
        assert app.wid in wm2.managed
