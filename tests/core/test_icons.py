"""Icons, icon appearance panels, root icons, icon holders (§4.1.2–4.1.5)."""

import pytest

from repro import icccm
from repro.clients import XBiff, XClock, XLoad, XTerm
from repro.core.icons import IconHolder
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.icccm.hints import ICONIC_STATE
from repro.xserver.geometry import Size


def iconified(server, wm, app):
    wm.process_pending()
    managed = wm.managed[app.wid]
    wm.iconify(managed)
    return managed


class TestIconAppearance:
    def test_icon_panel_from_template(self, server, wm):
        """The Xicon panel: iconimage + iconname buttons (§4.1.2)."""
        app = XTerm(server, ["xterm"])
        managed = iconified(server, wm, app)
        icon = managed.icon
        assert icon.panel.find("iconimage") is not None
        assert icon.panel.find("iconname") is not None

    def test_iconname_shows_wm_icon_name(self, server, wm):
        app = XTerm(server, ["xterm"])
        icccm.set_wm_icon_name(app.conn, app.wid, "shell")
        managed = iconified(server, wm, app)
        assert managed.icon.panel.find("iconname").display_label() == "shell"

    def test_default_image_is_xlogo(self, server, wm):
        """'the iconimage button will contain the image of the xlogo32
        bitmap file' when the client specifies no icon."""
        app = XTerm(server, ["xterm"])
        managed = iconified(server, wm, app)
        image_button = managed.icon.panel.find("iconimage")
        assert image_button.image is not None
        assert image_button.image.width == 32

    def test_icon_name_property_updates_icon(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = iconified(server, wm, app)
        icccm.set_wm_icon_name(app.conn, app.wid, "renamed")
        wm.process_pending()
        assert managed.icon.panel.find("iconname").display_label() == "renamed"

    def test_icon_window_mapped_frame_unmapped(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = iconified(server, wm, app)
        assert server.window(managed.icon.window).mapped
        assert not server.window(managed.frame).mapped

    def test_wm_state_iconic_with_icon_window(self, server, wm):
        app = XTerm(server, ["xterm"])
        managed = iconified(server, wm, app)
        state = icccm.get_wm_state(app.conn, app.wid)
        assert state.state == ICONIC_STATE
        assert state.icon_window == managed.icon.window

    def test_icon_position_hint_honoured(self, server, wm):
        app = XTerm(server, ["xterm"])
        from repro.icccm.hints import ICON_POSITION_HINT, WMHints

        icccm.set_wm_hints(
            app.conn, app.wid,
            WMHints(flags=ICON_POSITION_HINT, icon_x=77, icon_y=66),
        )
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.iconify(managed)
        x, y, _, _, _ = wm.conn.get_geometry(managed.icon.window)
        assert (x, y) == (77, 66)

    def test_deiconify_via_icon_button_click(self, server, wm):
        """Template binds <Btn1> on iconimage to f.deiconify."""
        app = XTerm(server, ["xterm"])
        managed = iconified(server, wm, app)
        button = managed.icon.panel.find("iconimage")
        origin = server.window(button.window).position_in_root()
        server.motion(origin.x + 2, origin.y + 2)
        server.button_press(1)
        server.button_release(1)
        wm.process_pending()
        assert managed.state != ICONIC_STATE
        assert server.window(managed.frame).mapped

    def test_client_message_iconifies(self, server, wm):
        """ICCCM WM_CHANGE_STATE from the client."""
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        app.request_iconify()
        wm.process_pending()
        assert wm.managed[app.wid].state == ICONIC_STATE

    def test_client_supplied_icon_image_flag(self, server, wm):
        from repro.icccm.hints import ICON_PIXMAP_HINT, WMHints

        app = XTerm(server, ["xterm"])
        icccm.set_wm_hints(
            app.conn, app.wid, WMHints(flags=ICON_PIXMAP_HINT, icon_pixmap=0x42)
        )
        managed = iconified(server, wm, app)
        image_button = managed.icon.panel.find("iconimage")
        assert "<" in image_button.display_label()


class TestRootIcons:
    def test_root_icons_created(self, server, db, tmp_path):
        """§4.1.3: icon appearance panels with no client."""
        db.put("swm*rootIcons", "trash")
        db.put("swm*panel.trash", "button iconimage +C+0 button iconname +C+1")
        db.put("swm*panel.trash.geometry", "+500+500")
        wm = Swm(server, db)
        sc = wm.screens[0]
        assert "trash" in sc.root_icons
        icon = sc.root_icons["trash"]
        assert icon.is_root_icon
        assert wm.conn.window_exists(icon.window)

    def test_root_icon_has_bindings(self, server, db):
        db.put("swm*rootIcons", "trash")
        db.put("swm*panel.trash", "button iconimage +C+0")
        db.put("swm*button.iconimage.bindings", "<Btn2> : f.beep")
        wm = Swm(server, db)
        icon = wm.screens[0].root_icons["trash"]
        button = icon.panel.find("iconimage")
        origin = server.window(button.window).position_in_root()
        server.motion(origin.x + 1, origin.y + 1)
        before = wm.beeps
        server.button_press(2)
        server.button_release(2)
        wm.process_pending()
        assert wm.beeps == before + 1


class TestIconHolders:
    @pytest.fixture
    def holder_db(self, db):
        db.put("swm*iconHolders", "terminals")
        db.put("swm*holder.terminals.classes", "XTerm")
        db.put("swm*holder.terminals.geometry", "+900+10")
        db.put("swm*holder.terminals.columns", "2")
        return db

    def test_holder_created(self, server, holder_db):
        wm = Swm(server, holder_db)
        holders = wm.screens[0].icon_holders
        assert len(holders) == 1
        assert holders[0].name == "terminals"

    def test_matching_class_goes_to_holder(self, server, holder_db):
        """§4.1.5: group all xterm icons in one panel."""
        wm = Swm(server, holder_db)
        term = XTerm(server, ["xterm"])
        load = XLoad(server, ["xload"])
        wm.process_pending()
        wm.iconify(wm.managed[term.wid])
        wm.iconify(wm.managed[load.wid])
        holder = wm.screens[0].icon_holders[0]
        assert len(holder.icons) == 1
        # The xterm icon's window is a child of the holder.
        _, parent, _ = wm.conn.query_tree(wm.managed[term.wid].icon.window)
        assert parent == holder.window
        # xload's icon is not in the holder.
        _, parent, _ = wm.conn.query_tree(wm.managed[load.wid].icon.window)
        assert parent != holder.window

    def test_grid_positions(self, server, holder_db):
        wm = Swm(server, holder_db)
        terms = [XTerm(server, ["xterm"]) for _ in range(3)]
        wm.process_pending()
        for term in terms:
            wm.iconify(wm.managed[term.wid])
        holder = wm.screens[0].icon_holders[0]
        positions = [holder.slot_position(i) for i in range(3)]
        # Two columns: third icon wraps to the second row.
        assert positions[0].y == positions[1].y
        assert positions[2].y > positions[0].y

    def test_deiconify_removes_from_holder_and_repacks(self, server, holder_db):
        wm = Swm(server, holder_db)
        terms = [XTerm(server, ["xterm"]) for _ in range(2)]
        wm.process_pending()
        for term in terms:
            wm.iconify(wm.managed[term.wid])
        holder = wm.screens[0].icon_holders[0]
        second_icon = wm.managed[terms[1].wid].icon
        wm.deiconify(wm.managed[terms[0].wid])
        assert len(holder.icons) == 1
        # The remaining icon repacked into slot 0.
        x, y, _, _, _ = wm.conn.get_geometry(second_icon.window)
        assert (x, y) == tuple(holder.slot_position(0))

    def test_hide_when_empty(self, server, db):
        db.put("swm*iconHolders", "stash")
        db.put("swm*holder.stash.hideWhenEmpty", "True")
        wm = Swm(server, db)
        holder = wm.screens[0].icon_holders[0]
        assert not server.window(holder.window).mapped
        term = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.iconify(wm.managed[term.wid])
        assert server.window(holder.window).mapped
        wm.deiconify(wm.managed[term.wid])
        assert not server.window(holder.window).mapped

    def test_size_to_fit(self, server, db):
        db.put("swm*iconHolders", "stash")
        db.put("swm*holder.stash.sizeToFit", "True")
        db.put("swm*holder.stash.columns", "4")
        wm = Swm(server, db)
        holder = wm.screens[0].icon_holders[0]
        terms = [XTerm(server, ["xterm"]) for _ in range(3)]
        wm.process_pending()
        for term in terms:
            wm.iconify(wm.managed[term.wid])
        _, _, width, _, _ = wm.conn.get_geometry(holder.window)
        assert width == 3 * holder.slot_size.width + 4

    def test_scrolling_mode(self, server, db):
        db.put("swm*iconHolders", "stash")
        db.put("swm*holder.stash.sizeToFit", "False")
        db.put("swm*holder.stash.columns", "1")
        wm = Swm(server, db)
        holder = wm.screens[0].icon_holders[0]
        terms = [XTerm(server, ["xterm"]) for _ in range(3)]
        wm.process_pending()
        for term in terms:
            wm.iconify(wm.managed[term.wid])
        first = wm.managed[terms[0].wid].icon
        y_before = wm.conn.get_geometry(first.window)[1]
        holder.scroll(holder.slot_size.height)
        y_after = wm.conn.get_geometry(first.window)[1]
        assert y_after == y_before - holder.slot_size.height
        holder.scroll(-10_000)
        assert wm.conn.get_geometry(first.window)[1] == y_before

    def test_empty_class_list_accepts_all(self, server, db):
        db.put("swm*iconHolders", "everything")
        wm = Swm(server, db)
        holder = wm.screens[0].icon_holders[0]
        assert holder.accepts("Whatever", "whatever")
