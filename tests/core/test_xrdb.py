"""xrdb emulation and swm's RESOURCE_MANAGER startup path."""

import pytest

from repro.clients import XTerm
from repro.core.templates import OPENLOOK_TEMPLATE
from repro.core.wm import Swm
from repro.core.xrdb import (
    database_from_root,
    xrdb_load,
    xrdb_merge,
    xrdb_query,
)
from repro.xrm import ResourceParseError
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


class TestXrdb:
    def test_load_and_query(self, server):
        assert xrdb_load(server, "swm*background: gray\n") == 1
        assert "swm*background" in xrdb_query(server)

    def test_load_replaces(self, server):
        xrdb_load(server, "swm*a: 1\n")
        xrdb_load(server, "swm*b: 2\n")
        text = xrdb_query(server)
        assert "swm*a" not in text and "swm*b" in text

    def test_merge_appends(self, server):
        xrdb_load(server, "swm*a: 1\n")
        xrdb_merge(server, "swm*b: 2\n")
        db = database_from_root(server)
        assert db.get(["swm", "a"], ["Swm", "A"]) == "1"
        assert db.get(["swm", "b"], ["Swm", "B"]) == "2"

    def test_bad_text_rejected(self, server):
        with pytest.raises(ResourceParseError):
            xrdb_load(server, "this is not a resource\n")

    def test_empty_query(self, server):
        assert xrdb_query(server) == ""


class TestSwmStartupFromRoot:
    def test_swm_reads_resource_manager_property(self, server):
        """The paper's configuration story end-to-end: the user runs
        xrdb with a template + overrides; swm picks it all up with no
        separate configuration file."""
        xrdb_load(server, OPENLOOK_TEMPLATE)
        xrdb_merge(server, "swm*xterm.xterm.decoration: shapeit\n")
        wm = Swm(server)  # no db passed: reads the root property
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert wm.managed[app.wid].decoration_name == "shapeit"

    def test_explicit_db_ignores_root_property(self, server):
        from repro.core.templates import load_template

        xrdb_load(server, "swm*decoration: shapeit\n")
        wm = Swm(server, load_template("OpenLook+"))
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert wm.managed[app.wid].decoration_name == "openLook"

    def test_no_resources_loads_default(self, server):
        wm = Swm(server)
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert wm.managed[app.wid].decoration_name == "default"

    def test_broken_root_property_falls_back(self, server):
        from repro.xserver import ClientConnection

        conn = ClientConnection(server)
        conn.set_string_property(
            conn.root_window(), "RESOURCE_MANAGER", "garbage without colon\n"
        )
        wm = Swm(server)  # must not raise
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert wm.managed[app.wid].decoration_name == "default"
