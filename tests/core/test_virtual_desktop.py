"""The Virtual Desktop: panning, sticky windows, placement semantics (§6)."""

import pytest

import repro.xserver.events as ev
from repro.clients import NaiveApp, OIApp, XClock, XTerm
from repro.core.bindings import FunctionCall
from repro.core.virtual import VirtualDesktop
from repro.core.wm import SWM_ROOT_PROPERTY
from repro.xserver import MAX_WINDOW_SIZE, ClientConnection, XServer
from repro.xserver.geometry import Size


class TestVirtualDesktopWindow:
    def test_vroot_created(self, server, vwm):
        vdesk = vwm.screens[0].vdesk
        assert vdesk is not None
        assert vdesk.size == Size(3000, 2400)
        window = server.window(vdesk.window)
        assert window.mapped
        assert window.parent is server.screens[0].root

    def test_desktop_size_limit(self, server):
        conn = ClientConnection(server)
        with pytest.raises(ValueError):
            VirtualDesktop(conn, server.screens[0], Size(MAX_WINDOW_SIZE + 1, 100))

    def test_desktop_at_max_size(self, server):
        """§6.1: the desktop is limited only by the 32767x32767 window
        size cap."""
        conn = ClientConnection(server)
        vdesk = VirtualDesktop(
            conn, server.screens[0], Size(MAX_WINDOW_SIZE, MAX_WINDOW_SIZE)
        )
        assert vdesk.size.width == 32767

    def test_desktop_smaller_than_screen_rejected(self, server):
        conn = ClientConnection(server)
        with pytest.raises(ValueError):
            VirtualDesktop(conn, server.screens[0], Size(100, 100))

    def test_pan_clamping(self, server, vwm):
        vdesk = vwm.screens[0].vdesk
        vdesk.pan_to(99999, 99999)
        assert vdesk.pan_x == 3000 - 1152
        assert vdesk.pan_y == 2400 - 900
        vdesk.pan_to(-50, -50)
        assert (vdesk.pan_x, vdesk.pan_y) == (0, 0)

    def test_pan_moves_vroot(self, server, vwm):
        vdesk = vwm.screens[0].vdesk
        vdesk.pan_to(300, 200)
        x, y, _, _, _ = vwm.conn.get_geometry(vdesk.window)
        assert (x, y) == (-300, -200)

    def test_resize_reclamps_pan(self, server, vwm):
        vdesk = vwm.screens[0].vdesk
        vdesk.pan_to(1848, 1500)
        vdesk.resize(1500, 1000)
        assert vdesk.pan_x <= 1500 - 1152
        assert vdesk.pan_y <= 1000 - 900


class TestPanningSemantics:
    def test_window_on_desktop_does_not_move_on_pan(self, server, vwm):
        """§6.3: a window at desktop 100,100 stays at 100,100 relative
        to its root when the desktop pans; only its real-root position
        changes."""
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        assert tuple(vwm.client_desktop_position(managed)) == (100, 100)
        real_before = app.root_position()
        vwm.pan_to(0, 25, 25)
        assert tuple(vwm.client_desktop_position(managed)) == (100, 100)
        real_after = app.root_position()
        assert real_after == (real_before[0] - 25, real_before[1] - 25)

    def test_pan_generates_no_configure_notify(self, server, vwm):
        """§6.3: 'The window gets no ConfigureNotify events, real or
        synthetic, because it hasn't moved with respect to its root.'"""
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        vwm.process_pending()
        app.conn.events()
        for offset in range(0, 500, 50):
            vwm.pan_to(0, offset, offset)
        notifies = [e for e in app.conn.events() if isinstance(e, ev.ConfigureNotify)]
        assert notifies == []

    def test_pan_refreshes_pointer_hit_test(self, server, vwm):
        """A pan is a single ConfigureWindow on the desktop window; the
        server's geometry caches must serve fresh hit tests and pointer
        coordinates immediately afterwards (no stale origins)."""
        app = NaiveApp(server, ["naivedemo", "-geometry", "200x200+600+500"])
        vwm.process_pending()
        window = server.window(app.wid)
        before = window.position_in_root()
        server.motion(before.x + 10, before.y + 10)
        assert server.pointer.window.id == app.wid
        vwm.pan_to(0, 300, 250)
        after = window.position_in_root()
        assert (after.x, after.y) == (before.x - 300, before.y - 250)
        server.motion(after.x + 10, after.y + 10)
        assert server.pointer.window.id == app.wid
        info = app.conn.query_pointer(app.wid)
        assert (info["win_x"], info["win_y"]) == (10, 10)

    def test_fpan_function(self, server, vwm):
        vwm.execute(FunctionCall("pan", "100 50"))
        vdesk = vwm.screens[0].vdesk
        assert (vdesk.pan_x, vdesk.pan_y) == (100, 50)
        vwm.execute(FunctionCall("panto", "0 0"))
        assert (vdesk.pan_x, vdesk.pan_y) == (0, 0)

    def test_window_placed_offscreen_is_reachable_by_panning(self, server, vwm):
        app = NaiveApp(server, ["naivedemo", "-geometry", "200x200+2000+1500"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        # Not visible in the initial view.
        assert not server.window(app.wid).rect_in_root().intersects(
            server.screens[0].rect
        )
        vwm.pan_to(0, 1900, 1400)
        assert server.window(app.wid).rect_in_root().intersects(
            server.screens[0].rect
        )

    def test_warpto_pans_to_window(self, server, vwm):
        app = NaiveApp(server, ["naivedemo", "-geometry", "+2500+2000"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        vwm.execute(FunctionCall("warpto"), context=managed)
        vdesk = vwm.screens[0].vdesk
        assert vdesk.pan_x > 0 and vdesk.pan_y > 0
        # The pointer is over the frame now.
        assert vwm.find_managed(server.pointer.window.id) is managed


class TestPositionHints:
    """§6.3's worked example: desktop panned to 1000,1000."""

    def pan(self, vwm):
        vwm.pan_to(0, 1000, 1000)

    def test_usposition_is_absolute(self, server, vwm):
        self.pan(vwm)
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        assert tuple(vwm.client_desktop_position(managed)) == (100, 100)

    def test_pposition_is_view_relative(self, server, vwm):
        self.pan(vwm)
        app = NaiveApp(
            server, ["naivedemo", "-geometry", "+100+100"], user_positioned=False
        )
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        assert tuple(vwm.client_desktop_position(managed)) == (1100, 1100)

    def test_no_hints_cascades_in_view(self, server, vwm):
        self.pan(vwm)
        app = NaiveApp(server, ["naivedemo"])
        vwm.process_pending()
        position = vwm.client_desktop_position(vwm.managed[app.wid])
        view = vwm.screens[0].vdesk.view_rect()
        assert view.contains(position.x, position.y)


class TestStickyWindows:
    def test_sticky_from_resources(self, server, vwm):
        """swm*xclock.XClock.sticky: True in the template."""
        app = XClock(server, ["xclock"])
        vwm.process_pending()
        assert vwm.managed[app.wid].sticky

    def test_sticky_window_parent_is_real_root(self, server, vwm):
        app = XClock(server, ["xclock"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        frame = server.window(managed.frame)
        assert frame.parent is server.screens[0].root

    def test_sticky_window_does_not_move_on_pan(self, server, vwm):
        """§6.2: sticky windows appear stuck to the glass."""
        app = XClock(server, ["xclock", "-geometry", "+30+40"])
        vwm.process_pending()
        before = app.root_position()
        vwm.pan_to(0, 700, 600)
        assert app.root_position() == before

    def test_non_sticky_window_moves_on_pan(self, server, vwm):
        app = XTerm(server, ["xterm", "-geometry", "+30+40"])
        vwm.process_pending()
        before = app.root_position()
        vwm.pan_to(0, 700, 600)
        after = app.root_position()
        assert after != before

    def test_stick_unstick_cycle(self, server, vwm):
        app = XTerm(server, ["xterm", "-geometry", "+200+150"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        vwm.pan_to(0, 100, 100)
        screen_before = app.root_position()
        vwm.execute(FunctionCall("togglestick"), context=managed)
        assert managed.sticky
        # Sticking preserves the on-screen position.
        assert app.root_position() == screen_before
        vwm.pan_to(0, 400, 400)
        assert app.root_position() == screen_before  # stuck to the glass
        vwm.execute(FunctionCall("togglestick"), context=managed)
        assert not managed.sticky
        assert app.root_position() == screen_before  # still where it was
        vwm.pan_to(0, 500, 500)
        assert app.root_position() != screen_before  # pans again

    def test_sticky_decoration_differs(self, server, vwm):
        """§6.2: 'decorations can be dependent on whether or not the
        client window is sticky' (swm*sticky*decoration)."""
        clock = XClock(server, ["xclock"])
        term = XTerm(server, ["xterm"])
        vwm.process_pending()
        assert vwm.managed[clock.wid].decoration_name == "stickyPanel"
        assert vwm.managed[term.wid].decoration_name == "openLook"

    def test_swm_root_property_tracks_stickiness(self, server, vwm):
        """§6.3: the SWM_ROOT property is updated whenever the client's
        root changes (stick/unstick)."""
        app = XTerm(server, ["xterm"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        vdesk = vwm.screens[0].vdesk
        prop = app.conn.get_property(app.wid, SWM_ROOT_PROPERTY)
        assert prop.data[0] == vdesk.window
        vwm.stick(managed)
        prop = app.conn.get_property(app.wid, SWM_ROOT_PROPERTY)
        assert prop.data[0] == app.conn.root_window()
        vwm.unstick(managed)
        prop = app.conn.get_property(app.wid, SWM_ROOT_PROPERTY)
        assert prop.data[0] == vdesk.window


class TestPopupPositioning:
    """The A2 ablation scenario: §6.3's popup-placement problem and the
    SWM_ROOT fix."""

    def test_naive_client_misplaces_popup_after_pan(self, server, vwm):
        app = NaiveApp(server, ["naivedemo", "-geometry", "+1500+1200"])
        vwm.process_pending()
        vwm.pan_to(0, 1400, 1100)  # window now visible at ~(100,100)
        popup = app.popup_at_offset(20, 20)
        # The naive client positioned against the real root: the popup
        # is NOT adjacent to the window on the desktop.
        popup_rect = server.window(popup).rect_in_root()
        window_rect = server.window(app.wid).rect_in_root()
        assert abs(popup_rect.x - (window_rect.x + 20)) > 500

    def test_oi_client_places_popup_correctly(self, server, vwm):
        """The OI toolkit reads SWM_ROOT and positions popups against
        the Virtual Desktop window."""
        app = OIApp(server, ["oidemo", "-geometry", "+1500+1200"])
        vwm.process_pending()
        vwm.pan_to(0, 1400, 1100)
        popup = app.popup_at_offset(20, 20)
        popup_rect = server.window(popup).rect_in_root()
        window_rect = server.window(app.wid).rect_in_root()
        assert popup_rect.x == window_rect.x + 20
        assert popup_rect.y == window_rect.y + 20

    def test_without_vdesk_both_behave(self, server, wm):
        app = NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        wm.process_pending()
        popup = app.popup_at_offset(10, 10)
        popup_rect = server.window(popup).rect_in_root()
        window_rect = server.window(app.wid).rect_in_root()
        assert popup_rect.x == window_rect.x + 10
