"""ICCCM compliance details: transients, focus models, state
transitions."""

import pytest

import repro.xserver.events as ev
from repro import icccm
from repro.clients import MultiWindowApp, XTerm
from repro.core.templates import load_template
from repro.core.wm import Swm


class TestTransientDecoration:
    def test_transient_marker_in_resource_path(self, server, db, tmp_path):
        """swm*transient*decoration works exactly like the sticky and
        shaped markers."""
        db.put("swm*transient*decoration", "none")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = MultiWindowApp(server, ["multiwin", "-geometry", "+50+50"])
        aux = app.open_secondary(400, 100)
        wm.process_pending()
        assert wm.managed[app.wid].decoration_name == "openLook"
        assert wm.managed[aux].decoration_name == ""

    def test_transient_without_resource_gets_normal_decoration(
        self, server, wm
    ):
        app = MultiWindowApp(server, ["multiwin", "-geometry", "+50+50"])
        aux = app.open_secondary(400, 100)
        wm.process_pending()
        assert wm.managed[aux].decoration_name == "openLook"

    def test_transient_specific_beats_marker(self, server, db, tmp_path):
        db.put("swm*transient*decoration", "none")
        db.put("swm*transient*multiwin-aux.multiwin-aux.decoration",
               "shapeit")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = MultiWindowApp(server, ["multiwin"])
        aux = app.open_secondary(400, 100)
        wm.process_pending()
        assert wm.managed[aux].decoration_name == "shapeit"


class TestFocusModels:
    def test_take_focus_protocol_message(self, server, wm):
        """A WM_TAKE_FOCUS client gets the ClientMessage, not a raw
        SetInputFocus."""
        app = XTerm(server, ["xterm"])
        icccm.set_wm_protocols(app.conn, app.wid, ["WM_TAKE_FOCUS"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        app.conn.events()
        focus_before, _ = app.conn.get_input_focus()
        wm.focus_managed(managed)
        messages = [
            e for e in app.conn.events() if isinstance(e, ev.ClientMessage)
        ]
        assert messages
        names = [app.conn.get_atom_name(m.data[0]) for m in messages]
        assert "WM_TAKE_FOCUS" in names
        focus_after, _ = app.conn.get_input_focus()
        assert focus_after == focus_before  # the client decides

    def test_passive_focus_set_directly(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.focus_managed(wm.managed[app.wid])
        focus, _ = app.conn.get_input_focus()
        assert focus == app.wid


class TestStateTransitions:
    def test_withdraw_then_remap_fresh_state(self, server, wm):
        """ICCCM: withdrawn windows renegotiate from scratch."""
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        first_frame = wm.managed[app.wid].frame
        app.conn.unmap_window(app.wid)
        wm.process_pending()
        state = icccm.get_wm_state(app.conn, app.wid)
        assert state.state == icccm.WITHDRAWN_STATE
        app.conn.map_window(app.wid)
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.frame != first_frame
        assert icccm.get_wm_state(app.conn, app.wid).state == (
            icccm.NORMAL_STATE
        )

    def test_iconify_keeps_client_mapped_inside_frame(self, server, wm):
        """swm unmaps the *frame*; the client window itself stays
        mapped (it is simply unviewable), so no withdrawal is seen."""
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.iconify(managed)
        client = server.window(app.wid)
        assert client.mapped
        assert not client.viewable

    def test_hints_change_applies_to_next_resize(self, server, wm):
        from repro.icccm.hints import P_MIN_SIZE, SizeHints

        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        icccm.set_wm_normal_hints(
            app.conn, app.wid,
            SizeHints(flags=P_MIN_SIZE, min_width=400, min_height=300),
        )
        wm.process_pending()
        wm.resize_managed(managed, 100, 100)
        _, _, width, height, _ = app.conn.get_geometry(app.wid)
        assert (width, height) == (400, 300)
