"""Bindings parsing and matching (§4.2)."""

import pytest
from hypothesis import given, strategies as st

import repro.xserver.events as ev
from repro.core.bindings import (
    BUTTON_PRESS,
    BUTTON_RELEASE,
    Binding,
    BindingParseError,
    FunctionCall,
    KEY_PRESS,
    bindings_for_button,
    bindings_for_key,
    parse_bindings,
)


class TestParseBindings:
    def test_paper_example(self):
        """The exact example from §4.2 of the paper (joined by resource
        line continuation)."""
        clauses = parse_bindings(
            "<Btn1> : f.raise "
            "<Btn2> : f.save f.zoom "
            "<Key>Up : f.warpvertical(-50)"
        )
        assert len(clauses) == 3
        assert clauses[0].event == BUTTON_PRESS and clauses[0].button == 1
        assert clauses[0].functions == (FunctionCall("raise"),)
        assert clauses[1].functions == (
            FunctionCall("save"),
            FunctionCall("zoom"),
        )
        assert clauses[2].event == KEY_PRESS and clauses[2].keysym == "Up"
        assert clauses[2].functions == (FunctionCall("warpvertical", "-50"),)

    def test_modifiers(self):
        clauses = parse_bindings("Shift Ctrl<Btn3> : f.lower")
        assert clauses[0].modifiers == ev.SHIFT_MASK | ev.CONTROL_MASK

    def test_meta_is_mod1(self):
        clauses = parse_bindings("Meta<Btn1> : f.move")
        assert clauses[0].modifiers == ev.MOD1_MASK

    def test_any_modifier(self):
        clauses = parse_bindings("Any<Btn1> : f.raise")
        assert clauses[0].any_modifier

    def test_button_release(self):
        clauses = parse_bindings("<Btn1Up> : f.raise")
        assert clauses[0].event == BUTTON_RELEASE

    def test_invocation_modes_parse(self):
        """All five modes from §5."""
        clauses = parse_bindings(
            "<Btn1> : f.iconify "
            "<Btn2> : f.iconify(multiple) "
            "<Btn3> : f.iconify(blob) "
            "<Btn4> : f.iconify(#$) "
            "<Btn5> : f.iconify(#0x1234)"
        )
        args = [c.functions[0].argument for c in clauses]
        assert args == [None, "multiple", "blob", "#$", "#0x1234"]

    def test_multiple_functions_per_binding(self):
        clauses = parse_bindings("<Btn1> : f.raise f.focus f.warpvertical(10)")
        assert len(clauses[0].functions) == 3

    def test_newline_separated(self):
        clauses = parse_bindings("<Btn1> : f.raise\n<Btn2> : f.lower")
        assert len(clauses) == 2

    def test_empty_is_empty(self):
        assert parse_bindings("") == []

    def test_no_clauses_rejected(self):
        with pytest.raises(BindingParseError):
            parse_bindings("f.raise")

    def test_unknown_event(self):
        with pytest.raises(BindingParseError):
            parse_bindings("<Wheel9> : f.raise")

    def test_clause_without_functions(self):
        with pytest.raises(BindingParseError):
            parse_bindings("<Btn1> :")

    def test_junk_between_functions(self):
        with pytest.raises(BindingParseError):
            parse_bindings("<Btn1> : f.raise banana")

    def test_enter_leave_motion_events(self):
        clauses = parse_bindings(
            "<Enter> : f.focus <Leave> : f.nop <Motion> : f.nop"
        )
        assert [c.event for c in clauses] == ["Enter", "Leave", "Motion"]

    def test_function_name_case_folded(self):
        clauses = parse_bindings("<Btn1> : f.Raise")
        assert clauses[0].functions[0].name == "raise"

    def test_key_without_detail_matches_any(self):
        clauses = parse_bindings("<Key> : f.beep")
        assert clauses[0].keysym == ""
        assert clauses[0].matches_key("x", 0)
        assert clauses[0].matches_key("F1", 0)


class TestMatching:
    def test_button_match(self):
        clauses = parse_bindings("<Btn1> : f.raise <Btn2> : f.lower")
        hit = bindings_for_button(clauses, 2, 0)
        assert hit.functions[0].name == "lower"

    def test_no_match(self):
        clauses = parse_bindings("<Btn1> : f.raise")
        assert bindings_for_button(clauses, 3, 0) is None

    def test_exact_modifier_matching(self):
        clauses = parse_bindings(
            "Shift<Btn1> : f.lower <Btn1> : f.raise"
        )
        assert bindings_for_button(clauses, 1, ev.SHIFT_MASK).functions[0].name == "lower"
        assert bindings_for_button(clauses, 1, 0).functions[0].name == "raise"

    def test_modifier_mismatch(self):
        clauses = parse_bindings("<Btn1> : f.raise")
        # Plain binding does not fire with Control held.
        assert bindings_for_button(clauses, 1, ev.CONTROL_MASK) is None

    def test_button_state_bits_ignored(self):
        """Button state bits (Button1Mask...) don't affect matching —
        only keyboard modifiers do."""
        clauses = parse_bindings("<Btn1> : f.raise")
        assert bindings_for_button(clauses, 1, ev.BUTTON2_MASK) is not None

    def test_any_matches_everything(self):
        clauses = parse_bindings("Any<Btn1> : f.raise")
        assert bindings_for_button(clauses, 1, ev.SHIFT_MASK | ev.MOD1_MASK)

    def test_key_matching(self):
        clauses = parse_bindings("<Key>Up : f.warpvertical(-50)")
        assert bindings_for_key(clauses, "Up", 0) is not None
        assert bindings_for_key(clauses, "Down", 0) is None

    def test_release_distinct_from_press(self):
        clauses = parse_bindings("<Btn1Up> : f.raise")
        assert bindings_for_button(clauses, 1, 0, release=True) is not None
        assert bindings_for_button(clauses, 1, 0, release=False) is None

    def test_first_match_wins(self):
        clauses = parse_bindings("<Btn1> : f.raise <Btn1> : f.lower")
        assert bindings_for_button(clauses, 1, 0).functions[0].name == "raise"


_FUNCS = st.sampled_from(["raise", "lower", "move", "iconify", "zoom"])
_BUTTONS = st.integers(1, 5)


class TestRoundTrip:
    @given(
        clauses=st.lists(
            st.tuples(_BUTTONS, st.lists(_FUNCS, min_size=1, max_size=3)),
            min_size=1,
            max_size=6,
        )
    )
    def test_parse_roundtrip(self, clauses):
        text = " ".join(
            f"<Btn{button}> : " + " ".join(f"f.{fn}" for fn in funcs)
            for button, funcs in clauses
        )
        parsed = parse_bindings(text)
        assert len(parsed) == len(clauses)
        for parsed_clause, (button, funcs) in zip(parsed, clauses):
            assert parsed_clause.button == button
            assert [f.name for f in parsed_clause.functions] == funcs
