"""Panel definition parsing."""

import pytest

from repro.core.panel_spec import (
    ObjectSpec,
    PanelSpecError,
    has_client_slot,
    parse_panel_spec,
)
from repro.xserver.geometry import CENTER


class TestParsePanelSpec:
    def test_openlook_definition(self):
        """The exact Figure 1 panel definition from the paper."""
        specs = parse_panel_spec(
            "button pulldown +0+0 "
            "button name +C+0 "
            "button nail -0+0 "
            "panel client +0+1"
        )
        assert [s.name for s in specs] == ["pulldown", "name", "nail", "client"]
        name = specs[1]
        assert name.col is CENTER and name.row == 0
        nail = specs[2]
        assert nail.col == 0 and nail.col_from_right
        client = specs[3]
        assert client.type == "panel" and client.row == 1

    def test_root_panel_definition(self):
        """The Figure 2 RootPanel: a 4x2 button grid."""
        specs = parse_panel_spec(
            "button quit +0+0 button restart +1+0 "
            "button iconify +2+0 button deiconify +3+0 "
            "button move +0+1 button resize +1+1 "
            "button raise +2+1 button lower +3+1"
        )
        assert len(specs) == 8
        rows = {s.row for s in specs}
        assert rows == {0, 1}
        assert all(s.type == "button" for s in specs)

    def test_xicon_definition(self):
        specs = parse_panel_spec(
            "button iconimage +C+0 button iconname +C+1"
        )
        assert all(s.col is CENTER for s in specs)

    def test_not_triples(self):
        with pytest.raises(PanelSpecError):
            parse_panel_spec("button foo")

    def test_unknown_type(self):
        with pytest.raises(PanelSpecError):
            parse_panel_spec("widget foo +0+0")

    def test_duplicate_names(self):
        with pytest.raises(PanelSpecError):
            parse_panel_spec("button a +0+0 button a +1+0")

    def test_bad_position(self):
        with pytest.raises(PanelSpecError):
            parse_panel_spec("button a nowhere")

    def test_menu_and_text_types(self):
        specs = parse_panel_spec("text label +0+0 menu actions +1+0")
        assert specs[0].type == "text"
        assert specs[1].type == "menu"


class TestClientSlot:
    def test_decoration_has_client(self):
        specs = parse_panel_spec("button name +C+0 panel client +0+1")
        assert has_client_slot(specs)

    def test_button_named_client_does_not_count(self):
        specs = parse_panel_spec("button client +0+0")
        assert not has_client_slot(specs)

    def test_no_client(self):
        specs = parse_panel_spec("button a +0+0")
        assert not has_client_slot(specs)
