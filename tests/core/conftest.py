"""Shared fixtures: a server + swm under the OpenLook+ template."""

import pytest

from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def db():
    return load_template("OpenLook+")


@pytest.fixture
def wm(server, db, tmp_path):
    return Swm(server, db, places_path=str(tmp_path / "swm.places"))


@pytest.fixture
def vdesk_db(db):
    db.put("swm*virtualDesktop", "3000x2400")
    return db


@pytest.fixture
def vwm(server, vdesk_db, tmp_path):
    """swm with a 3000x2400 Virtual Desktop."""
    return Swm(server, vdesk_db, places_path=str(tmp_path / "swm.places"))
