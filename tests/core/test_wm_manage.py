"""Managing clients: decoration, reparenting, ICCCM compliance."""

import pytest

import repro.xserver.events as ev
from repro import icccm
from repro.clients import NaiveApp, OClock, XClock, XTerm
from repro.core.wm import SWM_ROOT_PROPERTY, Swm
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE, WITHDRAWN_STATE


class TestManage:
    def test_map_request_triggers_manage(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert app.wid in wm.managed

    def test_client_reparented_into_frame(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        _, parent, _ = app.conn.query_tree(app.wid)
        assert parent != app.conn.root_window()
        # The frame is an ancestor of the client.
        frame_window = server.window(managed.frame)
        client_window = server.window(app.wid)
        assert frame_window.is_ancestor_of(client_window)

    def test_client_is_mapped_and_viewable(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert server.window(app.wid).viewable

    def test_decoration_panel_from_template(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.decoration_name == "openLook"
        # The Figure 1 objects exist.
        for name in ("pulldown", "name", "nail", "client"):
            assert managed.object_named(name) is not None

    def test_name_button_shows_wm_name(self, server, wm):
        app = XTerm(server, ["xterm", "-title", "my shell"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        name_button = managed.object_named("name")
        assert name_button.display_label() == "my shell"

    def test_wm_state_set(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        state = icccm.get_wm_state(app.conn, app.wid)
        assert state is not None and state.state == NORMAL_STATE

    def test_swm_root_property_set(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        prop = app.conn.get_property(app.wid, SWM_ROOT_PROPERTY)
        assert prop is not None
        # Without a virtual desktop the effective root is the real root.
        assert prop.data[0] == app.conn.root_window()

    def test_override_redirect_not_managed(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        popup = app.popup_at_offset(10, 10)
        wm.process_pending()
        assert popup not in wm.managed

    def test_synthetic_configure_sent(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        notifies = [
            e for e in app.conn.events()
            if isinstance(e, ev.ConfigureNotify) and e.send_event
        ]
        assert notifies
        assert (notifies[-1].x, notifies[-1].y) == (100, 100)

    def test_adopt_existing_windows(self, server, db):
        # Client maps before the WM starts.
        app = XTerm(server, ["xterm", "-geometry", "+50+50"])
        assert server.window(app.wid).mapped
        wm = Swm(server, db)
        assert app.wid in wm.managed
        assert server.window(app.wid).viewable

    def test_client_destroyed_unmanages(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        frame = wm.managed[app.wid].frame
        app.quit()
        wm.process_pending()
        assert app.wid not in wm.managed
        assert not wm.conn.window_exists(frame)

    def test_client_withdraw_unmanages(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        app.conn.unmap_window(app.wid)
        wm.process_pending()
        assert app.wid not in wm.managed
        # Back on the root, withdrawn.
        _, parent, _ = app.conn.query_tree(app.wid)
        assert parent == app.conn.root_window()
        state = icccm.get_wm_state(app.conn, app.wid)
        assert state.state == WITHDRAWN_STATE

    def test_iconic_start(self, server, wm):
        app = XTerm(server, ["xterm", "-iconic"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.state == ICONIC_STATE
        assert managed.icon is not None
        assert not server.window(managed.frame).mapped

    def test_wm_name_change_updates_button(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        app.set_title("new title")
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.object_named("name").display_label() == "new title"
        assert managed.name == "new title"


class TestConfigureRequests:
    def test_client_resize_honoured(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        app.conn.resize_window(app.wid, 6 * 100 + 16, 13 * 30 + 16)
        wm.process_pending()
        _, _, width, height, _ = app.conn.get_geometry(app.wid)
        assert (width, height) == (6 * 100 + 16, 13 * 30 + 16)

    def test_resize_respects_increments(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        app.conn.resize_window(app.wid, 617, 413)  # not on the grid
        wm.process_pending()
        _, _, width, height, _ = app.conn.get_geometry(app.wid)
        assert (width - 16) % 6 == 0
        assert (height - 16) % 13 == 0

    def test_frame_grows_with_client(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        before = wm.frame_rect(managed)
        app.conn.resize_window(app.wid, 6 * 120 + 16, 13 * 40 + 16)
        wm.process_pending()
        after = wm.frame_rect(managed)
        assert after.width > before.width
        assert after.height > before.height

    def test_client_move_request(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        app.conn.move_window(app.wid, 300, 250)
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert tuple(wm.client_desktop_position(managed)) == (300, 250)

    def test_move_request_gets_synthetic_notify(self, server, wm):
        app = XTerm(server, ["xterm", "-geometry", "+100+100"])
        wm.process_pending()
        app.conn.events()
        app.conn.move_window(app.wid, 300, 250)
        wm.process_pending()
        notifies = [
            e for e in app.conn.events()
            if isinstance(e, ev.ConfigureNotify) and e.send_event
        ]
        assert notifies and (notifies[-1].x, notifies[-1].y) == (300, 250)

    def test_raise_request(self, server, wm):
        a = XTerm(server, ["xterm"])
        b = XClock(server, ["xclock"])
        wm.process_pending()
        a.conn.raise_window(a.wid)
        wm.process_pending()
        # a's frame is now above b's frame.
        ma, mb = wm.managed[a.wid], wm.managed[b.wid]
        parent = server.window(ma.frame).parent
        if server.window(mb.frame).parent is parent:
            children = [c.id for c in parent.children]
            assert children.index(ma.frame) > children.index(mb.frame)


class TestShapedClients:
    def test_shaped_client_gets_shaped_decoration(self, server, wm):
        """§5.1: swm*shaped*decoration: shapeit — oclock shows up
        without visible decoration."""
        app = OClock(server, ["oclock"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert managed.shaped
        assert managed.decoration_name == "shapeit"
        # The frame is shaped to the client's disc.
        assert wm.conn.window_is_shaped(managed.frame)

    def test_unshaped_client_normal_decoration(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        assert not managed.shaped
        assert not wm.conn.window_is_shaped(managed.frame)

    def test_shape_change_reshapes_frame(self, server, wm):
        from repro.xserver.bitmap import Bitmap

        app = OClock(server, ["oclock"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        area_before = server.shape_query(managed.frame).area()
        app.conn.shape_window(app.wid, Bitmap.disc(60))
        wm.process_pending()
        area_after = server.shape_query(managed.frame).area()
        assert area_after < area_before


class TestWmLifecycle:
    def test_quit_releases_clients(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.quit()
        assert server.window(app.wid).mapped
        _, parent, _ = app.conn.query_tree(app.wid)
        assert parent == app.conn.root_window()

    def test_wm_crash_save_set_protects_clients(self, server, wm):
        """Even without a clean quit, save-sets keep clients alive."""
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.conn.close()  # simulated crash
        assert app.conn.window_exists(app.wid)
        assert server.window(app.wid).mapped

    def test_restart_remanages(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        old_frame = wm.managed[app.wid].frame
        wm.restart()
        assert app.wid in wm.managed
        assert wm.managed[app.wid].frame != old_frame

    def test_two_wms_rejected(self, server, wm, db):
        from repro.xserver import BadAccess

        with pytest.raises(BadAccess):
            Swm(server, db)


class TestDefaultConfiguration:
    def test_empty_db_loads_default_template(self, server):
        wm = Swm(server)
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        assert wm.managed[app.wid].decoration_name == "default"

    def test_specific_decoration_resource(self, server, db):
        """§3: per-class decoration via specific resources."""
        db.put("swm*xterm.xterm.decoration", "shapeit")
        wm = Swm(server, db)
        term = XTerm(server, ["xterm"])
        clock = NaiveApp(server, ["naivedemo"])
        wm.process_pending()
        assert wm.managed[term.wid].decoration_name == "shapeit"
        assert wm.managed[clock.wid].decoration_name == "openLook"

    def test_decoration_none(self, server, db):
        db.put("swm*xterm.xterm.decoration", "none")
        wm = Swm(server, db)
        term = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[term.wid]
        assert managed.decoration_name == ""
        # Bare frame: exactly the client size.
        frame = wm.frame_rect(managed)
        _, _, cw, ch, _ = term.conn.get_geometry(term.wid)
        assert (frame.width, frame.height) == (cw, ch)
