"""The Virtual Desktop panner (§6.1, Figure 3)."""

import pytest

from repro.clients import NaiveApp, XTerm


@pytest.fixture
def panner(vwm):
    return vwm.screens[0].panner


class TestPannerBasics:
    def test_panner_created_with_vdesk(self, server, vwm, panner):
        assert panner is not None
        assert server.window(panner.window).viewable

    def test_no_panner_without_vdesk(self, server, wm):
        assert wm.screens[0].panner is None

    def test_panner_disabled_by_resource(self, server, vdesk_db, tmp_path):
        from repro.core.wm import Swm

        vdesk_db.put("swm*panner", "False")
        wm = Swm(server, vdesk_db)
        assert wm.screens[0].panner is None
        assert wm.screens[0].vdesk is not None

    def test_panner_is_managed_and_sticky(self, server, vwm, panner):
        managed = vwm.managed[panner.window]
        assert managed.sticky
        assert managed.is_internal

    def test_panner_size_follows_scale(self, server, vwm, panner):
        assert panner.panner_size().width == 3000 // panner.scale
        assert panner.panner_size().height == 2400 // panner.scale

    def test_coordinate_mapping_roundtrip(self, panner):
        desk = panner.panner_to_desktop(10, 20)
        assert tuple(desk) == (10 * panner.scale, 20 * panner.scale)
        mini = panner.desktop_to_panner(desk.x, desk.y)
        assert tuple(mini) == (10, 20)


class TestMiniatures:
    def test_miniature_for_each_desktop_window(self, server, vwm, panner):
        apps = [
            NaiveApp(server, ["naivedemo", "-geometry", f"+{200 * i}+100"])
            for i in range(1, 4)
        ]
        vwm.process_pending()
        minis = panner.miniature_rects()
        assert len(minis) == 3

    def test_sticky_windows_not_in_miniatures(self, server, vwm, panner):
        from repro.clients import XClock

        XClock(server, ["xclock"])  # sticky per template
        vwm.process_pending()
        assert panner.miniature_rects() == []

    def test_iconified_windows_not_in_miniatures(self, server, vwm, panner):
        app = XTerm(server, ["xterm"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        assert len(panner.miniature_rects()) == 1
        vwm.iconify(managed)
        assert panner.miniature_rects() == []

    def test_miniature_positions_scale(self, server, vwm, panner):
        app = NaiveApp(server, ["naivedemo", "-geometry", "+1600+800"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        mini, hit = panner.miniature_rects()[0]
        frame = vwm.frame_rect(managed)
        assert mini.x == frame.x // panner.scale
        assert mini.y == frame.y // panner.scale
        assert hit is managed

    def test_viewport_outline(self, server, vwm, panner):
        vwm.pan_to(0, 800, 640)
        outline = panner.viewport_outline()
        assert outline.x == 800 // panner.scale
        assert outline.y == 640 // panner.scale
        assert outline.width == 1152 // panner.scale

    def test_miniature_at_hit_test(self, server, vwm, panner):
        app = NaiveApp(server, ["naivedemo", "-geometry", "300x200+1600+800"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        mini, _ = panner.miniature_rects()[0]
        assert panner.miniature_at(mini.x + 1, mini.y + 1) is managed
        assert panner.miniature_at(0, 0) is None


class TestPannerInteraction:
    def test_button1_pans(self, server, vwm, panner):
        """Figure 3: button 1 moves the viewport outline."""
        drag = panner.press(1, 100, 80)
        assert drag is not None and drag.kind == "viewport"
        result = panner.release(100, 80)
        assert result == "panned"
        vdesk = vwm.screens[0].vdesk
        # View centered on desktop (1600, 1280).
        assert vdesk.pan_x == 100 * panner.scale - 1152 // 2
        assert vdesk.pan_y == 80 * panner.scale - 900 // 2

    def test_button2_moves_window(self, server, vwm, panner):
        """Button 2 on a miniature starts a window move; dropping in
        the panner repositions anywhere on the desktop."""
        app = NaiveApp(server, ["naivedemo", "-geometry", "300x200+160+80"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        mini, _ = panner.miniature_rects()[0]
        drag = panner.press(2, mini.x, mini.y)
        assert drag is not None and drag.kind == "window"
        result = panner.release(100, 100)
        assert result == "moved"
        rect = vwm.frame_rect(managed)
        # The drop preserves the grab point within the miniature, so
        # the frame lands within one panner pixel of the target.
        assert abs(rect.x - 100 * panner.scale) <= panner.scale
        assert abs(rect.y - 100 * panner.scale) <= panner.scale

    def test_button2_on_empty_area_does_nothing(self, server, vwm, panner):
        assert panner.press(2, 5, 5) is None

    def test_drag_out_of_panner_fine_tunes(self, server, vwm, panner):
        """Moving the pointer out of the panner during the move shows a
        full-size outline for fine placement in the current view."""
        app = NaiveApp(server, ["naivedemo", "-geometry", "300x200+160+80"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        vwm.pan_to(0, 500, 400)
        mini, _ = panner.miniature_rects()[0]
        panner.press(2, mini.x, mini.y)
        panner.motion(-400, -300)  # way outside the panner
        assert panner.drag.outside
        result = panner.release(-400, -300)
        assert result == "moved-outside"
        # The window landed at view position (panner origin - 400, ...)
        # converted to desktop coordinates.
        origin = panner._panner_screen_origin()
        rect = vwm.frame_rect(managed)
        assert rect.x == 500 + origin.x - 400
        assert rect.y == 400 + origin.y - 300

    def test_release_without_press(self, panner):
        assert panner.release(10, 10) is None

    def test_resizing_panner_resizes_desktop(self, server, vwm, panner):
        """§6.1: 'The act of resizing the panner object causes the
        underlying Virtual Desktop window to resize.'"""
        vdesk = vwm.screens[0].vdesk
        panner.resized(250, 200)
        assert vdesk.size.width == 250 * panner.scale
        assert vdesk.size.height == 200 * panner.scale

    def test_resize_through_wm_resize_managed(self, server, vwm, panner):
        """Resizing the panner *window* through normal WM machinery
        drives the desktop resize."""
        managed = vwm.managed[panner.window]
        vdesk = vwm.screens[0].vdesk
        vwm.resize_managed(managed, 150, 120)
        assert vdesk.size.width == 150 * panner.scale
        assert vdesk.size.height == 120 * panner.scale


class TestPannerEvents:
    def test_click_in_panner_window_pans(self, server, vwm, panner):
        """End-to-end: real pointer events on the panner window."""
        managed = vwm.managed[panner.window]
        origin = server.window(panner.window).position_in_root()
        server.motion(origin.x + 100, origin.y + 80)
        server.button_press(1)
        server.button_release(1)
        vwm.process_pending()
        vdesk = vwm.screens[0].vdesk
        assert (vdesk.pan_x, vdesk.pan_y) != (0, 0)

    def test_move_drag_dropped_into_panner(self, server, vwm, panner):
        """A move started on the client window can be dropped into the
        panner, moving the window to any portion of the desktop."""
        app = NaiveApp(server, ["naivedemo", "-geometry", "300x200+300+200"])
        vwm.process_pending()
        managed = vwm.managed[app.wid]
        vwm.begin_move(managed, (310, 210))
        panner_origin = server.window(panner.window).position_in_root()
        # Drag the pointer into the panner at miniature coords (50, 50).
        server.motion(panner_origin.x + 50, panner_origin.y + 50)
        vwm.process_pending()
        assert vwm.drag is not None and vwm.drag.in_panner
        server.button_release(1)
        vwm.process_pending()
        rect = vwm.frame_rect(managed)
        # Dropped around desktop (50*scale, 50*scale).
        assert abs(rect.x - 50 * panner.scale) <= panner.scale
        assert abs(rect.y - 50 * panner.scale) <= panner.scale
