"""Seeded chaos runs against a fully-featured swm.

The main run drives hundreds of mixed operations — spawning and killing
clients, WM functions, device input, pans, desktop switches — while a
:class:`FaultPlan` injects errors, abrupt client kills, stale-XID races
and event loss/delay.  At fixed checkpoints (injection suspended) the
WM repairs itself and the managed-table / frame-tree / server-tree
consistency oracle must hold; at the end the event loop must still be
alive (a fresh client gets managed normally).

Everything is replayable: the workload RNG and the fault plan both
derive from this test's ``chaos_seed`` (see conftest).
"""

import random

import pytest

from repro.clients import launch_command
from repro.core.templates import ROOT_PANEL_TEMPLATE, load_template
from repro.core.wm import Swm
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.testing import assert_quotas_enforced, assert_wm_consistent
from repro.xserver import QuotaLimits, XServer
from repro.xserver.errors import XError
from repro.xserver.faults import (
    DELAY,
    DROP,
    ERROR,
    FLOOD,
    KILL,
    STALE,
    ConnectionClosed,
    FaultPlan,
)

PROGRAMS = ["xterm", "xclock", "xload", "xlogo", "oclock", "cmdtool"]

#: The acceptance bar: a chaos run must land at least this many faults.
MIN_FAULTS = 220


def full_wm(server, places):
    db = load_template("OpenLook+")
    db.load_string(ROOT_PANEL_TEMPLATE)
    db.put("swm*rootPanels", "RootPanel")
    db.put("swm*panel.RootPanel.geometry", "+700+700")
    db.put("swm*virtualDesktop", "3000x2400")
    db.put("swm*virtualDesktops", "2")
    db.put("swm*iconHolders", "stash")
    db.put("swm*holder.stash.classes", "XTerm")
    db.put("swm*holder.stash.geometry", "+900+10")
    return Swm(server, db, places_path=places)


def build_plan(seed, app_clients):
    """The standard chaos rule set.

    Error rules hit every connection (the WM's guarded degradation
    paths absorb them); kill and stale rules are restricted to app
    connections — killing the WM's own connection is the separate
    restart scenario, not a per-request fault.  Delivery faults hit
    everyone: the WM must cope with lost and late notifications too.
    """
    is_app = lambda cid: cid in app_clients  # noqa: E731
    is_anyone = lambda cid: True  # excludes device input (no client)  # noqa: E731
    plan = FaultPlan(seed)
    plan.rule(ERROR, probability=0.03, error="BadWindow", clients=is_anyone,
              name="any-badwindow")
    plan.rule(ERROR, probability=0.015, error="BadMatch", clients=is_anyone,
              name="any-badmatch")
    plan.rule(ERROR, probability=0.01, error="BadAccess", clients=is_anyone,
              name="any-badaccess")
    plan.rule(KILL, probability=0.03, clients=is_app, when="before",
              name="app-kill-before")
    plan.rule(KILL, probability=0.015, clients=is_app, when="after",
              name="app-kill-after")
    plan.rule(STALE, probability=0.03, clients=is_app, name="app-stale")
    plan.rule(DROP, probability=0.25, events=("Expose", "MotionNotify"),
              name="drop-noise")
    plan.rule(DROP, probability=0.03,
              events=("UnmapNotify", "DestroyNotify"),
              name="drop-lifecycle")
    plan.rule(DELAY, probability=0.15,
              events=("ConfigureNotify", "PropertyNotify", "EnterNotify",
                      "LeaveNotify"),
              name="delay-notify")
    return plan


def checkpoint(wm, server, plan):
    """Repair + verify with injection suspended: flush delayed events,
    drain the loop, reap zombies, then the consistency oracle."""
    with plan.suspended():
        plan.release_delayed(server, shuffle=True)
        wm.process_pending()
        wm.reap_zombies()
        wm.process_pending()
        assert_wm_consistent(wm)


def test_chaos_run(chaos_seed, tmp_path):
    rng = random.Random(chaos_seed)
    server = XServer(screens=[(1152, 900, 8)])
    wm = full_wm(server, str(tmp_path / "places"))
    wm.process_pending()

    apps = []
    app_clients = set()
    plan = server.install_faults(build_plan(chaos_seed, app_clients))

    def spawn():
        program = rng.choice(PROGRAMS)
        argv = [program]
        if program != "cmdtool" and rng.random() < 0.7:
            argv += ["-geometry",
                     f"+{rng.randint(0, 900)}+{rng.randint(0, 700)}"]
        try:
            app = launch_command(server, argv)
        except (XError, ConnectionClosed):
            return  # died being born — that's chaos
        apps.append(app)
        app_clients.add(app.conn.client_id)

    def needs_more():
        return (
            plan.total_injected() < MIN_FAULTS
            or plan.injected(ERROR) == 0
            or plan.injected(KILL) == 0
            or plan.injected(STALE) == 0
        )

    step = 0
    while step < 4000 and (step < 400 or needs_more()):
        step += 1
        live = [
            a for a in apps
            if a.conn.is_alive() and a.wid in wm.managed
        ]
        roll = rng.random()
        if roll < 0.18 and len(live) < 10:
            spawn()
        elif roll < 0.38 and live:
            # The app acts on its own windows: the requests that kill
            # and stale rules race against.
            app = rng.choice(live)
            try:
                action = rng.randint(0, 2)
                if action == 0:
                    app.set_title(f"title-{step}")
                elif action == 1:
                    app.conn.configure_window(
                        app.wid,
                        width=rng.randint(40, 600),
                        height=rng.randint(40, 400),
                    )
                else:
                    app.conn.raise_window(app.wid)
            except (XError, ConnectionClosed):
                pass
        elif roll < 0.42 and live and rng.random() < 0.5:
            app = rng.choice(live)
            try:
                app.quit()
            except (XError, ConnectionClosed):
                pass
        elif roll < 0.50:
            # Device input takes the real event path through grabs,
            # menus, and bindings.
            server.motion(rng.randint(0, 1151), rng.randint(0, 899))
            if rng.random() < 0.4:
                button = rng.randint(1, 3)
                server.button_press(button)
                server.button_release(button)
        elif live:
            managed = wm.managed.get(rng.choice(live).wid)
            if managed is None:
                continue
            action = rng.randint(0, 10)
            if action == 0:
                wm.guarded(wm.iconify, managed, what="chaos")
            elif action == 1:
                wm.guarded(wm.deiconify, managed, what="chaos")
            elif action == 2:
                wm.guarded(wm.move_managed_to, managed,
                           rng.randint(0, 2500), rng.randint(0, 2000),
                           what="chaos")
            elif action == 3:
                wm.guarded(wm.resize_managed, managed,
                           rng.randint(40, 700), rng.randint(40, 500),
                           what="chaos")
            elif action == 4:
                wm.guarded(wm.raise_managed, managed, what="chaos")
            elif action == 5:
                wm.guarded(wm.lower_managed, managed, what="chaos")
            elif action == 6 and managed.state == NORMAL_STATE:
                sticky_op = wm.unstick if managed.sticky else wm.stick
                wm.guarded(sticky_op, managed, what="chaos")
            elif action == 7:
                wm.guarded(wm.pan_to, 0,
                           rng.randint(0, 1848), rng.randint(0, 1500),
                           what="chaos")
            elif action == 8:
                wm.guarded(wm.switch_desktop, 0, rng.randint(0, 1),
                           what="chaos")
            elif action == 9 and not managed.sticky:
                wm.guarded(wm.send_to_desktop, managed, rng.randint(0, 1),
                           what="chaos")
            elif action == 10:
                wm.guarded(wm.focus_managed, managed, what="chaos")
        wm.process_pending()
        if step % 40 == 0:
            checkpoint(wm, server, plan)

    checkpoint(wm, server, plan)

    # The acceptance bar: enough faults, across every rule family.
    assert plan.total_injected() >= MIN_FAULTS, plan.counts
    assert plan.injected(ERROR) > 0, plan.counts
    assert plan.injected(KILL) > 0, plan.counts
    assert plan.injected(STALE) > 0, plan.counts
    assert plan.injected(DROP) + plan.injected(DELAY) > 0, plan.counts
    assert server.stats().injected_count() == (
        plan.total_injected()
    )
    # The WM absorbed real errors along the way rather than crashing.
    assert server.stats().guarded_count() > 0

    # The event loop is still alive: with faults off, a fresh client
    # is adopted and decorated like nothing ever happened.
    server.clear_faults()
    probe = launch_command(server, ["xterm"])
    wm.process_pending()
    assert probe.wid in wm.managed
    assert wm.managed[probe.wid].frame in wm.frames
    assert_wm_consistent(wm)
    print(
        f"chaos run: seed={chaos_seed} steps={step} "
        f"faults={dict(plan.counts)} "
        f"guarded={server.stats().guarded_count()}"
    )


def test_chaos_run_is_replayable(chaos_seed, tmp_path):
    """Same seed, same workload → bit-identical fault log."""

    def run(tag):
        rng = random.Random(chaos_seed)
        server = XServer(screens=[(1152, 900, 8)])
        wm = full_wm(server, str(tmp_path / f"places-{tag}"))
        wm.process_pending()
        apps = []
        app_clients = set()
        plan = server.install_faults(build_plan(chaos_seed, app_clients))
        for step in range(150):
            live = [
                a for a in apps
                if a.conn.is_alive() and a.wid in wm.managed
            ]
            roll = rng.random()
            if roll < 0.3 and len(live) < 8:
                try:
                    app = launch_command(server, [rng.choice(PROGRAMS)])
                    apps.append(app)
                    app_clients.add(app.conn.client_id)
                except (XError, ConnectionClosed):
                    pass
            elif live:
                managed = wm.managed.get(rng.choice(live).wid)
                if managed is not None:
                    wm.guarded(wm.move_managed_to, managed,
                               rng.randint(0, 2000), rng.randint(0, 1500),
                               what="chaos")
            wm.process_pending()
        return [(f.serial, f.kind, f.target, f.detail) for f in plan.log]

    assert run("a") == run("b")


def test_kill_during_manage_leaves_no_debris(tmp_path):
    """A client that dies while the WM is decorating it: manage() must
    abort cleanly — no managed entry, no leaked frame, no stray object
    windows — and the WM must keep running."""
    server = XServer(screens=[(1152, 900, 8)])
    wm = full_wm(server, str(tmp_path / "places"))
    wm.process_pending()
    baseline_frames = set(wm.frames)
    baseline_objects = set(wm.object_windows)

    plan = FaultPlan(seed=42)
    # The WM's reparent (client into frame) trips a stale race on its
    # target: the client window dies mid-manage.
    plan.rule(STALE, requests=("reparent_window",), max_fires=1)
    server.install_faults(plan)

    app = launch_command(server, ["xclock"])
    wm.process_pending()

    assert plan.injected(STALE) == 1
    assert app.wid not in wm.managed
    assert set(wm.frames) == baseline_frames
    assert set(wm.object_windows) == baseline_objects
    assert_wm_consistent(wm)

    # Still alive: the next client manages normally.
    server.clear_faults()
    probe = launch_command(server, ["xterm"])
    wm.process_pending()
    assert probe.wid in wm.managed


def test_flooding_client_is_contained(chaos_seed, tmp_path):
    """One client turns hostile mid-run (the FLOOD fault: property
    rewrite + SendEvent storms fired from inside its own requests); the
    WM and the other clients must not notice — no sheds or denials land
    on them, their windows stay managed, and the oracles hold."""
    server = XServer(
        screens=[(1152, 900, 8)],
        quota_limits=QuotaLimits(
            max_property_bytes=4096, high_water=64,
            low_water=16, hard_cap=128,
        ),
    )
    wm = full_wm(server, str(tmp_path / "places"))
    wm.process_pending()

    flooder = launch_command(server, ["xterm"])
    bystander = launch_command(server, ["xclock"])
    wm.process_pending()

    plan = FaultPlan(chaos_seed)
    plan.rule(FLOOD, probability=0.3, burst=60,
              clients=[flooder.conn.client_id], name="turncoat")
    server.install_faults(plan)

    rng = random.Random(chaos_seed)
    for step in range(120):
        # Both apps keep issuing ordinary requests; only the flooder's
        # ever detonate the storm.
        for app in (flooder, bystander):
            try:
                if rng.random() < 0.5:
                    app.set_title(f"t{step}")
                else:
                    app.conn.raise_window(app.wid)
            except (XError, ConnectionClosed):
                pass
            app.conn.events()  # well-behaved clients drain
        wm.process_pending()

    assert plan.injected(FLOOD) > 0, plan.counts
    server.clear_faults()
    wm.process_pending()
    wm.reap_zombies()
    wm.process_pending()

    stats = server.stats()
    # All containment fallout (if any) landed on the flooder alone.
    for cid in (wm.conn.client_id, bystander.conn.client_id):
        assert stats.quota_denied_count(cid) == 0
        assert stats.shed_count(client_id=cid) == 0
    assert bystander.conn.pending() < server.quotas.limits.high_water
    assert bystander.wid in wm.managed
    assert flooder.wid in wm.managed  # flooding != dying
    assert_wm_consistent(wm)
    assert_quotas_enforced(server)


def test_flood_injection_is_replayable(chaos_seed, tmp_path):
    """Same seed → the same storms fire at the same requests and the
    same quota counters result."""

    def run(tag):
        server = XServer(
            screens=[(1152, 900, 8)],
            quota_limits=QuotaLimits(max_property_bytes=2048),
        )
        wm = full_wm(server, str(tmp_path / f"places-{tag}"))
        wm.process_pending()
        app = launch_command(server, ["xterm"])
        wm.process_pending()
        plan = FaultPlan(chaos_seed)
        plan.rule(FLOOD, probability=0.25, burst=30,
                  clients=[app.conn.client_id], name="turncoat")
        server.install_faults(plan)
        for step in range(60):
            try:
                app.set_title(f"t{step}")
            except (XError, ConnectionClosed):
                pass
            wm.process_pending()
        return (
            [(f.serial, f.kind, f.target, f.detail) for f in plan.log],
            server.stats().snapshot()["quotas"],
        )

    assert run("a") == run("b")


def test_icon_window_stale_race_is_repaired(tmp_path):
    """An iconified client's icon window dies behind the WM's back;
    the reaper must rebuild (or surface the frame) rather than leave an
    unreachable client."""
    server = XServer(screens=[(1152, 900, 8)])
    wm = full_wm(server, str(tmp_path / "places"))
    wm.process_pending()

    app = launch_command(server, ["xclock"])
    wm.process_pending()
    managed = wm.managed[app.wid]
    wm.iconify(managed)
    assert managed.state == ICONIC_STATE
    icon_window = managed.icon.window

    # The icon window vanishes without ceremony.
    server._destroy_tree(server.windows[icon_window])
    wm.process_pending()
    wm.reap_zombies()
    wm.process_pending()

    assert_wm_consistent(wm)
    if managed.state == ICONIC_STATE:
        assert managed.icon is not None
        assert managed.icon.window != icon_window
    else:
        assert managed.state == NORMAL_STATE
