"""Seeded link chaos against a WM-managed framed client.

The acceptance scenario for wire resilience: a real ``Swm`` manages the
server over loopback while an application client works it over the
framed wire, and a seeded :class:`FaultPlan` keeps dropping, lagging,
reordering, corrupting and duplicating frames mid-session.  The client
must heal every flap through reconnect-with-backoff and session
resumption — zero windows lost (wm-consistency and adoption oracles),
zero unhandled server errors — and because every random draw derives
from the test seed, two runs of the same scenario must produce
bit-identical event streams, fault logs and reconnect schedules.

Replay a failure with the seed from the terminal summary::

    CHAOS_SEED=<seed> PYTHONPATH=src python -m pytest \
        tests/chaos/test_chaos_link.py -q
"""

import random

from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.testing import adoption_problems, wm_consistency_problems
from repro.xserver import ClientConnection, EventMask, XServer
from repro.xserver.faults import (
    CORRUPT,
    DUPLICATE,
    LAG,
    PARTITION,
    REORDER,
    FaultPlan,
)
from repro.xserver.wire import FramedHost, FramedTransport, ResilienceConfig

#: The acceptance bar: a run must land at least this many link faults.
MIN_FAULTS = 40
WINDOWS = 4
STEPS = 400


def build_plan(seed):
    # arm_after shields the HELLO/WELCOME handshake: before the client
    # holds a resume token there is no session to heal, so a fault
    # there is a failed connect, not a flap.
    plan = FaultPlan(seed)
    plan.rule(PARTITION, probability=0.01, arm_after=12, name="partition")
    plan.rule(LAG, probability=0.02, lag=2, direction="s2c", arm_after=12,
              name="lag")
    plan.rule(REORDER, probability=0.015, arm_after=12, name="reorder")
    plan.rule(CORRUPT, probability=0.004, arm_after=12, name="corrupt")
    plan.rule(DUPLICATE, probability=0.02, arm_after=12, name="duplicate")
    return plan


def run_scenario(seed, places):
    """One full managed-client-under-link-chaos run.  Returns a
    deterministic signature of everything observable."""
    server = XServer()
    wm = Swm(server, load_template("OpenLook+"), places_path=places)
    host = FramedHost(server, ResilienceConfig(seed=seed, park_grace=60.0))
    plan = build_plan(seed)
    transport = FramedTransport(host, plan, sleep=host.advance)
    conn = ClientConnection(name="chaos-link-app", transport=transport)

    root = conn.root_window()
    rng = random.Random(seed ^ 0x11AC)
    windows = []
    for i in range(WINDOWS):
        wid = conn.create_window(root, 10 * i, 10 * i, 40, 30)
        conn.select_input(
            wid, EventMask.StructureNotify | EventMask.PropertyChange
        )
        conn.set_string_property(wid, "WM_NAME", f"chaos-{i}")
        conn.map_window(wid)
        windows.append(wid)

    observed = []
    for step in range(STEPS):
        wid = rng.choice(windows)
        action = rng.randrange(5)
        if action == 0:
            conn.move_window(wid, rng.randrange(300), rng.randrange(300))
        elif action == 1:
            conn.resize_window(
                wid, 20 + rng.randrange(100), 20 + rng.randrange(100)
            )
        elif action == 2:
            conn.configure_window(
                wid, stack_mode=rng.choice(("Above", "Below"))
            )
        elif action == 3:
            conn.set_string_property(
                wid, "SWM_CHAOS", "link" * rng.randint(1, 8)
            )
        else:
            assert conn.get_geometry(wid) is not None
        if step % 20 == 0:
            host.heartbeat_tick()
        for event in conn.events():
            observed.append((
                type(event).__name__,
                getattr(event, "window", None),
                getattr(event, "x", None),
                getattr(event, "y", None),
            ))

    # Quiesce with injection suspended: the oracle traffic itself must
    # not be perturbed (or heal anything).
    with plan.suspended():
        missing = [w for w in windows if not conn.window_exists(w)]
        problems = wm_consistency_problems(wm)
        problems += adoption_problems(wm, windows)
        geometry = [conn.get_geometry(w) for w in windows]
        stats = server.stats()
        lost = stats.wire_count("framed", "sessions_lost")
        conn.close()

    return {
        "missing": missing,
        "problems": problems,
        "errors": [repr(e) for e in host.errors],
        "lost": lost,
        "reconnects": transport.reconnects,
        "delays": list(transport.delays),
        "faults": [
            (f.serial, f.kind, f.target, f.detail) for f in plan.log
        ],
        "fault_counts": dict(sorted(plan.counts.items())),
        "observed": observed,
        "geometry": geometry,
        "parked": stats.wire_count("framed", "parked"),
        "resumed": stats.wire_count("framed", "resumed"),
    }


class TestLinkChaos:
    def test_managed_client_survives_link_chaos(self, chaos_seed, tmp_path):
        result = run_scenario(chaos_seed, str(tmp_path / "a.places"))
        # The plan actually exercised the link...
        assert len(result["faults"]) >= MIN_FAULTS
        # ...the client had to reconnect and did so under backoff...
        assert result["reconnects"] >= 1
        assert len(result["delays"]) >= result["reconnects"]
        assert result["parked"] == result["resumed"]
        # ...and nothing was lost: no session death, no missing
        # windows, clean consistency + adoption oracles, no unhandled
        # server-side errors.
        assert result["lost"] == 0
        assert result["missing"] == []
        assert result["problems"] == []
        assert result["errors"] == []
        assert len(result["observed"]) > 0

    def test_same_seed_replays_bit_identically(self, chaos_seed, tmp_path):
        first = run_scenario(chaos_seed, str(tmp_path / "b.places"))
        second = run_scenario(chaos_seed, str(tmp_path / "c.places"))
        assert first == second
