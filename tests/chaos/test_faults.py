"""Unit tests for the fault-injection layer itself.

Each fault kind is exercised against a bare server + client, then the
layer's contracts are pinned down: determinism (same seed, same
workload, same fault log), one-rule-per-request, suspension, and the
``server.stats()`` counters.
"""

import pytest

from repro.xserver import XServer
from repro.xserver.client import ClientConnection
from repro.xserver.errors import BadAccess, BadMatch, BadWindow
from repro.xserver.faults import (
    DELAY,
    DROP,
    ERROR,
    KILL,
    STALE,
    ConnectionClosed,
    FaultPlan,
    FaultRule,
)


@pytest.fixture
def server():
    return XServer(screens=[(800, 600, 8)])


@pytest.fixture
def conn(server):
    return ClientConnection(server, "app")


def make_window(conn, mapped=True):
    wid = conn.create_window(conn.root_window(0), 10, 10, 100, 80)
    if mapped:
        conn.map_window(wid)
    return wid


class TestErrorFaults:
    def test_error_raises_named_error(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule(ERROR, error="BadMatch", requests=("configure_window",))
        server.install_faults(plan)
        with pytest.raises(BadMatch):
            conn.configure_window(wid, x=50)
        assert plan.injected(ERROR) == 1
        assert server.stats().injected_count(ERROR) == 1

    def test_error_leaves_state_untouched(self, server, conn):
        wid = make_window(conn, mapped=False)
        plan = FaultPlan(seed=7)
        plan.rule(ERROR, error="BadAccess", requests=("map_window",),
                  max_fires=1)
        server.install_faults(plan)
        with pytest.raises(BadAccess):
            conn.map_window(wid)
        assert not server.window(wid).mapped  # the request never ran
        conn.map_window(wid)  # rule exhausted: retry succeeds
        assert server.window(wid).mapped

    def test_unknown_error_name_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(ERROR, error="BadBanana")


class TestKillFaults:
    def test_kill_before_closes_connection(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule(KILL, requests=("configure_window",), when="before")
        server.install_faults(plan)
        with pytest.raises(ConnectionClosed):
            conn.configure_window(wid, x=50)
        assert conn.client_id not in server.clients
        assert wid not in server.windows or server.windows[wid].destroyed

    def test_kill_after_lets_request_land_first(self, server, conn):
        wid = make_window(conn, mapped=False)
        plan = FaultPlan(seed=7)
        plan.rule(KILL, requests=("map_window",), when="after", max_fires=1)
        server.install_faults(plan)
        conn.map_window(wid)  # succeeds; the pipe breaks afterwards
        assert server.window(wid).mapped
        other = ClientConnection(server, "bystander")
        make_window(other)  # any next tick flushes the deferred kill
        assert conn.client_id not in server.clients
        assert not conn.is_alive()

    def test_requests_after_kill_raise_connection_closed(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule(KILL, requests=("unmap_window",), max_fires=1)
        server.install_faults(plan)
        with pytest.raises(ConnectionClosed):
            conn.unmap_window(wid)
        with pytest.raises(ConnectionClosed):
            conn.create_window(conn.root_window(0), 0, 0, 10, 10)


class TestStaleFaults:
    def test_stale_destroys_target_then_real_badwindow(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule(STALE, requests=("configure_window",))
        server.install_faults(plan)
        with pytest.raises(BadWindow):
            conn.move_window(wid, 5, 5)  # client-side name, server configure
        assert (
            wid not in server.windows or server.windows[wid].destroyed
        )
        assert plan.injected(STALE) == 1

    def test_stale_skips_requests_without_window_target(self, server, conn):
        plan = FaultPlan(seed=7)
        rule = plan.rule(STALE, requests=("intern_atom",))
        server.install_faults(plan)
        conn.intern_atom("WHATEVER")  # no window named: nothing to race
        assert rule.fires == 0
        assert plan.injected(STALE) == 0


class TestDeliveryFaults:
    def test_drop_discards_event_and_counts_it(self, server, conn):
        wid = make_window(conn)
        from repro.xserver.event_mask import EventMask

        conn.select_input(wid, EventMask.Exposure)
        plan = FaultPlan(seed=7)
        plan.rule(DROP, events=("Expose",))
        server.install_faults(plan)
        before = conn.pending()
        conn.unmap_window(wid)
        conn.map_window(wid)  # generates Expose, which is dropped
        assert conn.pending() == before or all(
            type(e).__name__ != "Expose" for e in list(conn._queue)
        )
        assert plan.injected(DROP) >= 1
        assert server.stats().dropped_count("Expose") >= 1

    def test_delay_holds_until_release(self, server, conn):
        wid = make_window(conn)
        from repro.xserver.event_mask import EventMask

        conn.select_input(wid, EventMask.StructureNotify)
        plan = FaultPlan(seed=7)
        plan.rule(DELAY, events=("UnmapNotify",))
        server.install_faults(plan)
        conn.unmap_window(wid)
        assert plan.held_count() == 1
        assert all(
            type(e).__name__ != "UnmapNotify" for e in list(conn._queue)
        )
        released = plan.release_delayed(server)
        assert released == 1
        assert any(
            type(e).__name__ == "UnmapNotify" for e in list(conn._queue)
        )

    def test_delayed_events_for_dead_clients_are_dropped(self, server, conn):
        wid = make_window(conn)
        from repro.xserver.event_mask import EventMask

        conn.select_input(wid, EventMask.StructureNotify)
        plan = FaultPlan(seed=7)
        plan.rule(DELAY, events=("UnmapNotify",))
        server.install_faults(plan)
        conn.unmap_window(wid)
        assert plan.held_count() == 1
        conn.close()
        assert plan.release_delayed(server) == 0


class TestPlanContracts:
    def workload(self, seed):
        server = XServer(screens=[(800, 600, 8)])
        conn = ClientConnection(server, "app")
        plan = FaultPlan(seed)
        plan.rule(ERROR, probability=0.3, error="BadWindow")
        plan.rule(ERROR, probability=0.2, error="BadMatch")
        server.install_faults(plan)
        for step in range(60):
            try:
                wid = conn.create_window(
                    conn.root_window(0), step, step, 20, 20
                )
                conn.map_window(wid)
                conn.configure_window(wid, x=step + 1)
            except BadWindow:
                pass
            except BadMatch:
                pass
        return [(f.kind, f.target, f.detail) for f in plan.log]

    def test_same_seed_same_fault_log(self):
        assert self.workload(1990) == self.workload(1990)

    def test_different_seed_different_fault_log(self):
        assert self.workload(1990) != self.workload(90210)

    def test_suspended_blocks_injection(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule(ERROR, error="BadWindow")
        server.install_faults(plan)
        with plan.suspended():
            conn.configure_window(wid, x=1)  # would have raised
        assert plan.total_injected() == 0
        with pytest.raises(BadWindow):
            conn.configure_window(wid, x=2)

    def test_arm_after_skips_warmup(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule(ERROR, error="BadWindow", requests=("configure_window",),
                  arm_after=2)
        server.install_faults(plan)
        conn.configure_window(wid, x=1)
        conn.configure_window(wid, x=2)
        with pytest.raises(BadWindow):
            conn.configure_window(wid, x=3)

    def test_client_filter_spares_other_clients(self, server):
        victim = ClientConnection(server, "victim")
        spared = ClientConnection(server, "spared")
        v_wid = make_window(victim)
        s_wid = make_window(spared)
        plan = FaultPlan(seed=7)
        plan.rule(ERROR, error="BadWindow", clients=(victim.client_id,))
        server.install_faults(plan)
        spared.configure_window(s_wid, x=1)  # never faulted
        with pytest.raises(BadWindow):
            victim.configure_window(v_wid, x=1)

    def test_stats_snapshot_exposes_fault_counters(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule(ERROR, error="BadAccess", requests=("configure_window",),
                  max_fires=1)
        server.install_faults(plan)
        with pytest.raises(BadAccess):
            conn.configure_window(wid, x=1)
        snap = server.stats().snapshot()
        assert snap["injected_faults"] == {ERROR: 1}
        assert "guarded_errors" in snap
        assert "dropped" in snap
