"""Session-layer behaviour under injected faults.

The f.places snapshot, the f.restart teardown/rebuild cycle, and the
WM_DELETE_WINDOW deadline are the three session paths where a client
racing away (or wedging) used to take the whole WM down.  Each test
pins the degraded-but-correct outcome.
"""

from repro import icccm
from repro.clients import launch_command
from repro.core.subsystems.focus import FocusController
from repro.testing import assert_wm_consistent
from repro.xserver import XServer
from repro.xserver.faults import DROP, ERROR, FaultPlan

from .test_chaos_wm import full_wm


def test_places_skips_client_that_died_behind_wms_back(tmp_path):
    """A client exits, but its UnmapNotify/DestroyNotify are lost: the
    WM still has a managed entry for a corpse.  f.places must skip the
    casualty (counting a guarded error) and save every survivor."""
    server = XServer(screens=[(1152, 900, 8)])
    wm = full_wm(server, str(tmp_path / "places"))
    wm.process_pending()

    xterm = launch_command(server, ["xterm", "-geometry", "+10+10"])
    xclock = launch_command(server, ["xclock", "-geometry", "+300+10"])
    xload = launch_command(server, ["xload", "-geometry", "+600+10"])
    wm.process_pending()
    assert xclock.wid in wm.managed

    # Lose every lifecycle notification, then kill the clock: the WM
    # never learns it died.
    plan = FaultPlan(seed=7)
    plan.rule(DROP, probability=1.0,
              events=("UnmapNotify", "DestroyNotify"))
    server.install_faults(plan)
    xclock.quit()
    wm.process_pending()
    server.clear_faults()
    assert xclock.wid in wm.managed  # stale: the corpse looks managed

    guarded_before = server.stats().guarded_count()
    text = wm.save_places()

    assert server.stats().guarded_count() > guarded_before
    assert "xterm" in text
    assert "xload" in text
    assert "xclock" not in text
    # The file is still a well-formed script the survivors can replay.
    from repro.session.places import parse_places

    assert len(parse_places(text)) == 2


def test_restart_survives_bounded_error_plan(tmp_path):
    """f.restart tears down every frame and rebuilds the screens while
    X errors land on the teardown/re-manage requests.  The WM must come
    back consistent; a client whose re-manage aborted is recoverable
    with a plain manage() once the weather clears."""
    server = XServer(screens=[(1152, 900, 8)])
    wm = full_wm(server, str(tmp_path / "places"))
    wm.process_pending()

    apps = [
        launch_command(server, ["xterm"]),
        launch_command(server, ["xclock"]),
        launch_command(server, ["xlogo"]),
    ]
    wm.process_pending()
    assert all(a.wid in wm.managed for a in apps)

    plan = FaultPlan(seed=2025)
    plan.rule(ERROR, probability=0.25, error="BadWindow",
              requests=("destroy_window", "unmap_window",
                        "reparent_window"),
              name="restart-storm")
    server.install_faults(plan)
    wm.restart()
    wm.process_pending()
    server.clear_faults()

    assert plan.total_injected() > 0, plan.counts
    assert server.stats().guarded_count() > 0
    assert_wm_consistent(wm)

    # Survivors whose re-manage aborted mid-storm left no debris and
    # re-manage cleanly now.
    for app in apps:
        if wm.conn.window_exists(app.wid) and app.wid not in wm.managed:
            wm.manage(app.wid)
    wm.process_pending()
    survivors = [a for a in apps if wm.conn.window_exists(a.wid)]
    assert survivors, "the storm destroyed every client"
    assert all(a.wid in wm.managed for a in survivors)
    assert_wm_consistent(wm)


def test_delete_window_timeout_falls_back_to_destroy(tmp_path):
    """A client advertises WM_DELETE_WINDOW but wedges: after the
    deadline the WM destroys it rather than pinning the frame forever
    (an ICCCM wait must never be open-ended)."""
    server = XServer(screens=[(1152, 900, 8)])
    wm = full_wm(server, str(tmp_path / "places"))
    wm.process_pending()

    app = launch_command(server, ["xterm"])
    icccm.set_wm_protocols(app.conn, app.wid, ["WM_DELETE_WINDOW"])
    wm.process_pending()
    managed = wm.managed[app.wid]

    wm.delete_client(managed)
    wm.process_pending()
    # Polite phase: the client was asked, nothing forced yet.
    assert app.wid in wm.managed
    assert app.conn.window_exists(app.wid)
    assert app.wid in wm.focuser.pending_deletes

    # The client ignores the message; time passes.
    server.timestamp += FocusController.DELETE_TIMEOUT + 1
    wm.process_pending()

    assert not wm.conn.window_exists(app.wid)
    assert app.wid not in wm.managed
    assert app.wid not in wm.focuser.pending_deletes
    assert_wm_consistent(wm)
