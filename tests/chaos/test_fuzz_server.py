"""Seeded protocol fuzzing: hostile clients vs. the containment layer.

Four adversarial clients drive the full attack mix (window spam,
property storms, grab abuse, send-event floods, malformed requests)
against a server with deliberately tight quotas while a fully-featured
swm manages the fallout and an innocent bystander client keeps working.

Acceptance, per seed: the run completes with zero unhandled exceptions
(the fuzzer only absorbs expected protocol pushback), the bystander's
queue stays below the high-water mark, no grab outlives the watchdog
budget, the WM-consistency and quota oracles both hold, and the whole
run replays bit-identically — same seed, same quota/shed/throttle
counters, same action log.

Replay a failing CI run with the seed from the terminal summary::

    CHAOS_SEED=<seed> PYTHONPATH=src python -m pytest tests/chaos/test_fuzz_server.py -q
"""

from repro.clients import launch_command
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.testing import assert_quotas_enforced, assert_wm_consistent
from repro.xserver import ProtocolFuzzer, QuotaLimits, XServer

#: Tight enough that a 500-step hostile run trips every quota family,
#: generous enough that the WM and the bystander never feel them.
TIGHT_LIMITS = dict(
    max_windows=64,
    max_property_bytes=3072,
    max_pending_grabs=6,
    high_water=64,
    low_water=16,
    hard_cap=128,
    coalesce_scan=16,
    grab_tick_budget=4,
)

#: The acceptance bar for one fuzz run.
MIN_HOSTILE_REQUESTS = 500


def make_arena(places):
    """Server with tight quotas + full WM + one innocent bystander."""
    server = XServer(
        screens=[(1152, 900, 8)], quota_limits=QuotaLimits(**TIGHT_LIMITS)
    )
    wm = Swm(server, load_template("OpenLook+"), places_path=places)
    wm.process_pending()
    bystander = launch_command(server, ["xclock"])
    wm.process_pending()
    return server, wm, bystander


def settle(server, wm):
    """Let the watchdog run out every grab budget with the fuzzer
    quiet: after this no hostile grab may survive."""
    for _ in range(TIGHT_LIMITS["grab_tick_budget"] + 2):
        wm.process_pending()  # pumps server.housekeeping_tick()


def run_fuzz(seed, places):
    server, wm, bystander = make_arena(places)
    fuzzer = ProtocolFuzzer(server, seed, clients=4)
    fuzzer.run(
        requests=MIN_HOSTILE_REQUESTS + 400,
        pump=wm.process_pending,
        pump_every=10,
    )
    settle(server, wm)
    return server, wm, bystander, fuzzer


def test_fuzz_containment(chaos_seed, tmp_path):
    server, wm, bystander, fuzzer = run_fuzz(
        chaos_seed, str(tmp_path / "places")
    )

    # The fuzzer really attacked: every attack kind ran, and the
    # request volume cleared the bar.
    assert fuzzer.steps >= MIN_HOSTILE_REQUESTS
    assert set(fuzzer.actions) == {
        "window_spam", "property_storm", "grab_abuse",
        "send_event_flood", "malformed",
    }

    # Containment bit: quotas denied, backpressure shed, hard caps
    # throttled (hostiles never drain their queues).
    stats = server.stats()
    assert stats.quota_denied_count() > 0, fuzzer.denials
    assert fuzzer.denials["QuotaExceeded"] > 0
    assert stats.shed_count() > 0
    assert stats.throttle_count() > 0

    # Bystanders are untouched: no denials, no sheds, queue far from
    # the water marks, and the client still works.
    for cid in (bystander.conn.client_id, wm.conn.client_id):
        assert stats.quota_denied_count(cid) == 0
        assert stats.shed_count(client_id=cid) == 0
    assert bystander.conn.pending() < TIGHT_LIMITS["high_water"]
    assert bystander.conn.is_alive()
    bystander.set_title("still-here")
    wm.process_pending()

    # Hostile queues are bounded by the hard cap.
    for state in fuzzer.clients:
        assert state.conn.pending() <= TIGHT_LIMITS["hard_cap"]

    # No grab outlived the watchdog: after settling, any active grab
    # would have to belong to a draining client — the hostiles never
    # drain, so nothing of theirs may remain; passive grabs of
    # long-throttled hostiles were pruned too.
    hostile_ids = {s.conn.client_id for s in fuzzer.clients}
    grab = server.active_grab
    assert grab is None or grab.client not in hostile_ids
    for cid in hostile_ids:
        if server.quotas.is_throttled(cid):
            assert server.grabs.count_for_client(cid) == 0

    # The WM survived with its world model intact, and the server's
    # quota ledgers match reality.
    assert_wm_consistent(wm)
    assert_quotas_enforced(server)

    # Still open for business: a fresh, polite client gets managed.
    probe = launch_command(server, ["xterm"])
    wm.process_pending()
    assert probe.wid in wm.managed
    assert_wm_consistent(wm)
    print(
        f"fuzz run: seed={chaos_seed} steps={fuzzer.steps} "
        f"actions={dict(fuzzer.actions)} denials={dict(fuzzer.denials)} "
        f"shed={stats.shed_count()} throttles={stats.throttle_count()} "
        f"grabs_broken={stats.grabs_broken_count()}"
    )


def test_fuzz_run_is_replayable(chaos_seed, tmp_path):
    """Same seed → identical action log and identical quota/shed/
    throttle counters, down to the per-client breakdowns."""

    def run(tag):
        server, wm, bystander, fuzzer = run_fuzz(
            chaos_seed, str(tmp_path / f"places-{tag}")
        )
        return fuzzer.log, server.stats().snapshot()["quotas"]

    log_a, quotas_a = run("a")
    log_b, quotas_b = run("b")
    assert log_a == log_b
    assert quotas_a == quotas_b


def test_hostile_grab_broken_within_budget(chaos_seed, tmp_path):
    """A hostile client that takes the pointer grab and goes silent
    loses it after exactly the watchdog budget — and input flows
    again."""
    server, wm, bystander = make_arena(str(tmp_path / "places"))
    hostile = ProtocolFuzzer(server, chaos_seed, clients=1).clients[0]
    wid = hostile.conn.create_window(
        hostile.conn.root_window(), 0, 0, 50, 50
    )
    hostile.conn.map_window(wid)
    wm.process_pending()
    from repro.xserver import EventMask

    hostile.conn.grab_pointer(wid, EventMask.PointerMotion)
    assert server.active_grab is not None
    broken_before = server.stats().grabs_broken_count()
    budget = TIGHT_LIMITS["grab_tick_budget"]
    for _ in range(budget):
        server.housekeeping_tick()
    assert server.active_grab is not None  # within budget: untouched
    server.housekeeping_tick()
    assert server.active_grab is None
    assert server.stats().grabs_broken_count() == broken_before + 1
    # The WM keeps running and the world is still consistent.
    wm.process_pending()
    assert_wm_consistent(wm)
    assert_quotas_enforced(server)
