"""Kill-any-shard chaos: the display router survives shard death at
every request-family site.

A two-shard :class:`~repro.session.router.DisplayRouter` runs a mixed
workload (placements, moves, resizes, iconify cycles, focus, pointer
warps, swmcmd writes, client configures, quits) routed across both
shards.  For every (request family, victim shard) pair a fault plan
with a single ``shard_crash`` rule is installed on the victim's server
— the whole shard stack dies the instant that family's request ticks —
and the router must fence the victim, evacuate every routed client to
the survivor with **zero window loss** (wm-consistency + adoption
oracles on each healthy shard, registry fully re-homed), and reboot
the victim on the recovery backoff so the next site starts at full
capacity.

The tour alternates the victim shard per family so both shards die at
every site; a replay test pins bit-identical same-seed failovers
(ShardCrash faults ride the one-draw-per-rule RNG contract exactly
like WM crashes)."""

import random

from repro.core.swmcmd import swmcmd
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.session.router import DisplayRouter
from repro.testing import (
    assert_adoption_complete,
    assert_wm_consistent,
)
from repro.xserver.faults import SHARD_CRASH, FaultPlan
from repro.xserver.shard import HEALTHY

from .conftest import derive_seed

#: Every request family the workload drives through a shard — the same
#: matrix the WM crash tour uses, because the shard dies at a request
#: boundary no matter which layer issued the request.
SHARD_REQUESTS = [
    "create_window",
    "destroy_window",
    "map_window",
    "unmap_window",
    "reparent_window",
    "configure_window",
    "change_window_attributes",
    "change_property",
    "delete_property",
    "change_save_set",
    "set_input_focus",
    "warp_pointer",
    "send_event",
]

N_SHARDS = 2

#: The acceptance bar: every family on every shard.
MIN_SITES = len(SHARD_REQUESTS) * N_SHARDS

PROGRAMS = ["xterm", "xclock", "xload", "xlogo", "oclock"]


def crash_sites():
    return [
        (request, victim)
        for request in SHARD_REQUESTS
        for victim in range(N_SHARDS)
    ]


def placed(router):
    return [rec for rec in router.clients.values() if rec.shard_id is not None]


def make_workload(router, rng):
    """One cycle of routed actions covering every family in
    SHARD_REQUESTS.  Every action fetches live state at call time —
    a mid-cycle failover must never leave a later action holding a
    fenced shard's objects."""

    def pick_managed(state=None):
        for rec in placed(router):
            shard = router.shards[rec.shard_id]
            if shard.health != HEALTHY or shard.wm is None:
                continue
            managed = shard.wm.managed.get(rec.wid)
            if managed is None:
                continue
            if state is None or managed.state == state:
                return rec, shard, managed
        return None

    def spawn():
        if len(placed(router)) < 7:
            router.place(
                [rng.choice(PROGRAMS), "-geometry",
                 f"+{rng.randint(10, 900)}+{rng.randint(10, 700)}"]
            )

    def move():
        hit = pick_managed(NORMAL_STATE)
        if hit is not None:
            rec, shard, managed = hit
            router.call(shard.id, shard.wm.move_managed_to, managed,
                        rng.randint(0, 2000), rng.randint(0, 1500))

    def resize():
        hit = pick_managed(NORMAL_STATE)
        if hit is not None:
            rec, shard, managed = hit
            router.call(shard.id, shard.wm.resize_managed, managed,
                        rng.randint(60, 600), rng.randint(60, 400))

    def iconify():
        hit = pick_managed(NORMAL_STATE)
        if hit is not None:
            rec, shard, managed = hit
            router.call(shard.id, shard.wm.iconify, managed)

    def deiconify():
        hit = pick_managed(ICONIC_STATE)
        if hit is not None:
            rec, shard, managed = hit
            router.call(shard.id, shard.wm.deiconify, managed)

    def focus():
        hit = pick_managed(NORMAL_STATE)
        if hit is not None:
            rec, shard, managed = hit
            router.call(shard.id, shard.wm.focus_managed, managed)

    def healthy_shard():
        healthy = [
            s for s in router.shards.values()
            if s.health == HEALTHY and s.wm is not None
        ]
        return rng.choice(healthy) if healthy else None

    def warp():
        shard = healthy_shard()
        if shard is not None:
            router.call(shard.id, shard.wm.warp_pointer_by,
                        rng.randint(-40, 40), rng.randint(-40, 40))

    def command():
        # A root-property write: the WM answers with delete_property.
        shard = healthy_shard()
        if shard is not None:
            router.call(shard.id, swmcmd, shard.server, "f.beep")

    def client_configure():
        # A client-side ConfigureRequest: the WM answers with a
        # synthetic ConfigureNotify (send_event).
        hit = pick_managed()
        if hit is not None:
            rec, shard, managed = hit
            if rec.app is not None and rec.app.conn.is_alive():
                router.call(
                    shard.id, rec.app.conn.configure_window, rec.wid,
                    width=rng.randint(80, 500), height=rng.randint(80, 400),
                )

    def quit_one():
        # Quit the *oldest* client: the freed slot rotates across
        # shards (placement tie-breaks low), so manage/unmanage traffic
        # (reparent, save-set, create/destroy) keeps reaching both.
        live = placed(router)
        if len(live) > 4:
            victim = live[0]
            shard = router.shards[victim.shard_id]
            if victim.app is not None:
                router.call(shard.id, victim.app.quit)
            router.forget(victim.cid)

    return [
        spawn, move, resize, iconify, deiconify, focus,
        warp, command, client_configure, quit_one,
    ]


def wait_all_healthy(router, limit=40):
    for _ in range(limit):
        if all(s.health == HEALTHY for s in router.shards.values()):
            # A failover piled everything onto the survivor; spread the
            # load back out (live migration) so the next site's traffic
            # reaches both shards.
            router.rebalance()
            return
        router.pump()
    raise AssertionError(
        f"shards never all recovered: "
        f"{[(s.id, s.health) for s in router.shards.values()]}"
    )


def assert_zero_window_loss(router, site):
    """Every registry client alive and managed on a healthy shard, and
    every healthy shard's WM passes the standing oracles."""
    problems = router.problems()
    assert not problems, f"site {site}: {problems}"
    for rec in router.clients.values():
        assert rec.shard_id is not None, (
            f"site {site}: client {rec.cid} stuck deferred with a"
            " healthy shard available"
        )
    for shard in router.shards.values():
        if shard.health != HEALTHY or shard.wm is None:
            continue
        assert_wm_consistent(shard.wm)
        expected = [
            rec.wid for rec in router.clients.values()
            if rec.shard_id == shard.id and rec.wid is not None
        ]
        assert_adoption_complete(shard.wm, expected)


def test_router_survives_shard_death_at_every_site(chaos_seed, tmp_path):
    router = DisplayRouter(
        shards=N_SHARDS,
        seed=chaos_seed,
        store_dir=str(tmp_path / "router"),
        storm_threshold=10_000,
    )
    rng = random.Random(chaos_seed)
    for _ in range(4):
        router.place([rng.choice(PROGRAMS)])
    router.pump()

    sites = crash_sites()
    assert len(sites) >= MIN_SITES
    survived = []

    for request, victim_id in sites:
        wait_all_healthy(router)
        victim = router.shards[victim_id]
        generation_before = victim.generation
        plan = FaultPlan(derive_seed(chaos_seed, f"{request}@{victim_id}"))
        rule = plan.rule(
            SHARD_CRASH,
            probability=1.0,
            requests=(request,),
            max_fires=1,
            name=f"shard-crash@{request}+{victim_id}",
        )
        victim.server.install_faults(plan)

        actions = make_workload(router, rng)
        for step in range(400):
            actions[step % len(actions)]()
            router.pump()
            if rule.fires:
                break

        assert rule.fires == 1, (
            f"site {request}@shard{victim_id}: workload never reached"
            f" the crash point (seen={rule.seen})"
        )
        assert victim.health != HEALTHY or victim.generation > generation_before
        router.pump()
        assert_zero_window_loss(router, f"{request}@shard{victim_id}")
        survived.append((request, victim_id))

    assert len(survived) == len(sites)
    assert len(router.failovers) >= MIN_SITES

    # The tour left a serviceable router: recover fully, place afresh.
    wait_all_healthy(router)
    probe = router.place(["xterm"])
    router.pump()
    assert probe.shard_id is not None
    shard = router.shards[probe.shard_id]
    assert probe.wid in shard.wm.managed
    assert_zero_window_loss(router, "post-tour")
    stats = router.stats()
    print(
        f"router chaos: seed={chaos_seed} sites={len(survived)}"
        f" failovers={stats['failovers']} evacuations={stats['evacuations']}"
        f" recoveries={stats['recoveries']}"
    )
    router.close()


def test_failover_tour_is_replayable(chaos_seed, tmp_path):
    """Same seed -> the same shards die at the same sites with the
    same evacuation plans and the same router counters."""

    def run(tag):
        router = DisplayRouter(
            shards=N_SHARDS,
            seed=chaos_seed,
            store_dir=str(tmp_path / f"router-{tag}"),
            storm_threshold=10_000,
        )
        rng = random.Random(chaos_seed)
        for _ in range(4):
            router.place([rng.choice(PROGRAMS)])
        router.pump()
        log = []
        for request, victim_id in (
            ("configure_window", 0),
            ("map_window", 1),
            ("change_property", 0),
        ):
            wait_all_healthy(router)
            victim = router.shards[victim_id]
            plan = FaultPlan(
                derive_seed(chaos_seed, f"replay:{request}@{victim_id}")
            )
            rule = plan.rule(
                SHARD_CRASH, probability=1.0, requests=(request,),
                max_fires=1,
            )
            victim.server.install_faults(plan)
            actions = make_workload(router, rng)
            for step in range(400):
                actions[step % len(actions)]()
                router.pump()
                if rule.fires:
                    break
            router.pump()
            record = router.failovers[-1]
            log.append(
                (record.tick, record.shard_id, record.reason,
                 tuple(record.evacuated), tuple(record.deferred))
            )
        stats = router.stats()
        log.append(
            (stats["placements"], stats["evacuations"], stats["failovers"],
             stats["deferred_admissions"], stats["heartbeats"])
        )
        router.close()
        return log

    assert run("a") == run("b")
