"""Seeding for the chaos suite.

All chaos tests draw their determinism from one *base seed*, read from
the ``CHAOS_SEED`` environment variable (default 1337).  Each test
derives a private per-test seed from the base seed and its own node id,
so two tests never share a fault sequence and adding a test does not
shift its neighbours' sequences.

To replay a failing CI run locally, copy the base seed from the
terminal summary line::

    CHAOS_SEED=<seed> PYTHONPATH=src python -m pytest tests/chaos -q
"""

import os
import zlib

import pytest

DEFAULT_SEED = 1337

#: Knuth's multiplicative-hash constant: spreads consecutive base seeds
#: far apart before the per-test node-id hash is mixed in.
_SPREAD = 2654435761


def base_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", DEFAULT_SEED))


def derive_seed(base: int, token: str) -> int:
    return (base * _SPREAD + zlib.crc32(token.encode())) % 2**31


@pytest.fixture
def chaos_seed(request) -> int:
    """This test's private seed, derived from CHAOS_SEED + node id."""
    return derive_seed(base_seed(), request.node.nodeid)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On a red chaos cell, dump every live tracer's flight recorder
    (repro.xserver.trace) so CI can upload the last seconds of protocol
    history.  No-op unless SWM_FLIGHT_DIR is set — setting it is also
    what auto-enables tracing on every server the test built."""
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    from repro.xserver import trace

    directory = trace.flight_dir()
    if directory is None:
        return
    paths = trace.dump_all(directory, item.nodeid, seed=base_seed())
    if paths:
        report.sections.append(
            ("flight recorder", "\n".join(paths))
        )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    seed = base_seed()
    terminalreporter.write_line(
        f"chaos base seed: {seed} "
        f"(replay: CHAOS_SEED={seed} pytest tests/chaos -q)"
    )
