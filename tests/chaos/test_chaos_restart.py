"""Kill-the-WM-anywhere chaos: supervised crash-restart at every site.

One long-lived :class:`Supervisor` survives a tour of crash points: for
each (request, arm_after) site a fault plan with a single ``crash``
rule is installed — matching only the WM's own connection — and a mixed
workload (spawns, moves, resizes, iconify cycles, focus, pointer warps,
swmcmd writes, client quits) is driven through ``sup.run`` until the
rule fires.  After every recovery the consistency oracle and the
adoption oracle must hold and no pre-crash client may be lost.

The site list covers every request family the WM issues; two arming
depths per request put one crash early in a burst and one in the middle
of later traffic, so both half-built and steady-state structures get
interrupted.  Cleanup alternates between ``close`` (save-set rescue)
and ``abandon`` (zombie frames left for adoption) so both cold-start
shapes are exercised at every other site.
"""

import random

from repro.clients import launch_command
from repro.core.swmcmd import swmcmd
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.session.store import SessionStore
from repro.session.supervisor import Supervisor
from repro.testing import (
    assert_adoption_complete,
    assert_wm_consistent,
)
from repro.xserver import XServer
from repro.xserver.faults import CRASH, FaultPlan

from .conftest import derive_seed
from .test_chaos_session import full_wm

#: Every request family the WM's own connection issues while serving
#: the workload below.  Two arming depths each → the crash-site matrix.
WM_REQUESTS = [
    "create_window",
    "destroy_window",
    "map_window",
    "unmap_window",
    "reparent_window",
    "configure_window",
    "change_window_attributes",
    "change_property",
    "delete_property",
    "change_save_set",
    "set_input_focus",
    "warp_pointer",
    "send_event",
]

ARM_DEPTHS = (0, 7)

#: The acceptance bar from the issue: distinct recovered crash sites.
MIN_SITES = 25

PROGRAMS = ["xterm", "xclock", "xload", "xlogo", "oclock"]


def wm_connection(server):
    def predicate(client_id):
        conn = server.clients.get(client_id)
        return conn is not None and conn.name == "swm"
    return predicate


def crash_sites():
    return [
        (request, arm_after)
        for request in WM_REQUESTS
        for arm_after in ARM_DEPTHS
    ]


def managed_clients(wm):
    return [m for m in wm.managed.values() if not m.is_internal]


def make_workload(sup, server, apps, rng):
    """One cycle of supervised actions; every WM request family in
    WM_REQUESTS occurs at least once per cycle.  Each action fetches
    live state at call time, so a mid-cycle restart never leaves a
    later action holding a dead WM's objects."""

    def spawn():
        if len([a for a in apps if a.conn.is_alive()]) < 6:
            app = sup.run(
                launch_command, server,
                [rng.choice(PROGRAMS), "-geometry",
                 f"+{rng.randint(10, 900)}+{rng.randint(10, 700)}"],
            )
            if app is not None:
                apps.append(app)

    def pick(state=None):
        candidates = [
            m for m in managed_clients(sup.wm)
            if state is None or m.state == state
        ]
        return candidates[0] if candidates else None

    def move():
        managed = pick(NORMAL_STATE)
        if managed is not None:
            sup.run(sup.wm.move_managed_to, managed,
                    rng.randint(0, 2000), rng.randint(0, 1500))

    def resize():
        managed = pick(NORMAL_STATE)
        if managed is not None:
            sup.run(sup.wm.resize_managed, managed,
                    rng.randint(60, 600), rng.randint(60, 400))

    def iconify():
        managed = pick(NORMAL_STATE)
        if managed is not None:
            sup.run(sup.wm.iconify, managed)

    def deiconify():
        managed = pick(ICONIC_STATE)
        if managed is not None:
            sup.run(sup.wm.deiconify, managed)

    def focus():
        managed = pick(NORMAL_STATE)
        if managed is not None:
            sup.run(sup.wm.focus_managed, managed)

    def warp():
        sup.run(sup.wm.warp_pointer_by,
                rng.randint(-40, 40), rng.randint(-40, 40))

    def command():
        # A root-property write: the WM answers with delete_property.
        sup.run(swmcmd, server, "f.beep")

    def client_configure():
        # A client-side ConfigureRequest: the WM answers with a
        # synthetic ConfigureNotify (send_event).
        live = [a for a in apps if a.conn.is_alive()
                and a.wid in sup.wm.managed]
        if live:
            app = rng.choice(live)
            sup.run(app.conn.configure_window, app.wid,
                    width=rng.randint(80, 500), height=rng.randint(80, 400))

    def quit_one():
        live = [a for a in apps if a.conn.is_alive()]
        if len(live) > 2:
            victim = live[-1]
            sup.run(victim.quit)
            apps.remove(victim)

    return [
        spawn, move, resize, iconify, deiconify, focus,
        warp, command, client_configure, quit_one,
    ]


def test_supervisor_recovers_at_every_crash_site(chaos_seed, tmp_path):
    server = XServer(screens=[(1152, 900, 8)])
    store = SessionStore(str(tmp_path / "ck"))

    # full_wm builds its own Swm; attach the store after boot so the
    # autosave debounce keeps checkpoints flowing between crashes.
    def factory(srv, st):
        wm = full_wm(srv, str(tmp_path / "places"))
        wm.session_store = st
        return wm

    sup = Supervisor(
        server,
        store,
        factory,
        storm_threshold=10_000,  # the tour is deliberately crash-dense
        backoff_base=2,
        backoff_cap=8,
    )
    sup.start()
    sup.pump()

    rng = random.Random(chaos_seed)
    apps = []
    # Seed the session with a couple of clients and one checkpoint.
    for _ in range(2):
        apps.append(launch_command(server, ["xterm"]))
    sup.pump()
    assert sup.wm.session.autosave()

    sites = crash_sites()
    assert len(sites) >= MIN_SITES
    recovered = []

    for index, (request, arm_after) in enumerate(sites):
        sup.cleanup = "abandon" if index % 2 else "close"
        predicate = wm_connection(server)
        plan = FaultPlan(derive_seed(chaos_seed, f"{request}@{arm_after}"))
        rule = plan.rule(
            CRASH,
            probability=1.0,
            requests=(request,),
            clients=predicate,
            arm_after=arm_after,
            max_fires=1,
            name=f"crash@{request}+{arm_after}",
        )
        server.install_faults(plan)

        actions = make_workload(sup, server, apps, rng)
        crashes_before = len(sup.crashes)
        pre = []
        for step in range(150):
            pre = [m.client for m in managed_clients(sup.wm)]
            actions[step % len(actions)]()
            sup.pump()
            if rule.fires:
                break
        server.clear_faults()

        assert rule.fires == 1, (
            f"site {request}+{arm_after}: workload never reached the"
            f" crash point (seen={rule.seen})"
        )
        assert len(sup.crashes) == crashes_before + 1
        sup.pump()

        # The oracles: bookkeeping consistent, estate fully adopted,
        # zero pre-crash clients lost.
        assert_wm_consistent(sup.wm)
        assert_adoption_complete(sup.wm, pre)
        for client in pre:
            window = server.windows.get(client)
            if window is not None and not window.destroyed:
                assert client in sup.wm.managed, (
                    f"site {request}+{arm_after} lost client {client:#x}"
                )
        recovered.append((request, arm_after))

    assert len(recovered) == len(sites)
    assert len(sup.crashes) >= MIN_SITES
    assert not sup.tripped

    # The tour left a live, serviceable WM: a fresh client manages.
    probe = launch_command(server, ["xterm"])
    sup.pump()
    assert probe.wid in sup.wm.managed
    assert_wm_consistent(sup.wm)
    print(
        f"restart chaos: seed={chaos_seed} sites={len(recovered)} "
        f"crashes={len(sup.crashes)} restarts={sup.restarts} "
        f"checkpoints={store.saves}"
    )


def test_crash_tour_is_replayable(chaos_seed, tmp_path):
    """Same seed → the same crash sites fire at the same timestamps."""

    def run(tag):
        server = XServer(screens=[(1152, 900, 8)])
        store = SessionStore(str(tmp_path / f"ck-{tag}"))

        def factory(srv, st):
            wm = full_wm(srv, str(tmp_path / f"places-{tag}"))
            wm.session_store = st
            return wm

        sup = Supervisor(server, store, factory, storm_threshold=1000,
                         backoff_base=2, backoff_cap=8)
        sup.start()
        rng = random.Random(chaos_seed)
        apps = [launch_command(server, ["xterm"])]
        sup.pump()
        log = []
        for request in ("configure_window", "unmap_window", "map_window"):
            plan = FaultPlan(derive_seed(chaos_seed, request))
            rule = plan.rule(
                CRASH, probability=1.0, requests=(request,),
                clients=wm_connection(server), max_fires=1,
            )
            server.install_faults(plan)
            actions = make_workload(sup, server, apps, rng)
            for step in range(150):
                actions[step % len(actions)]()
                sup.pump()
                if rule.fires:
                    break
            server.clear_faults()
            sup.pump()
            log.extend(
                (c.crash_point, c.timestamp, c.cleanup)
                for c in sup.crashes[len(log):]
            )
        return log

    assert run("a") == run("b")
