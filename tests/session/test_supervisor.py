"""The supervised restart loop: crash, clean up, restore, adopt.

Crashes are injected with the ``crash`` fault family: a rule matching
the WM's own connection raises :class:`WMCrash` out of a request, the
supervisor catches it, cleans the corpse off the server, burns the
backoff and boots a fresh WM that re-adopts every surviving client
against the last checkpoint.
"""

import pytest

from repro.clients import launch_command
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.icccm.hints import ICONIC_STATE
from repro.session.store import SessionStore
from repro.session.supervisor import CrashStorm, Supervisor
from repro.testing import (
    assert_adoption_complete,
    assert_wm_consistent,
)
from repro.xserver import XServer
from repro.xserver.faults import CRASH, FaultPlan, WMCrash


def wm_is(name):
    """Client filter matching the WM's own connection by name."""
    def predicate(client_id, _name=name):
        conn = predicate.server.clients.get(client_id)
        return conn is not None and conn.name == _name
    return predicate


def make_factory(tmp_path):
    db = load_template("OpenLook+")
    db.put("swm*virtualDesktop", "3000x2400")
    db.put("swm*virtualDesktops", "2")

    def factory(server, store):
        return Swm(
            server,
            db,
            places_path=str(tmp_path / "places"),
            session_store=store,
        )

    return factory


def crash_plan(server, request, *, arm_after=0, max_fires=1, seed=11):
    """A plan whose single rule crashes the WM connection at *request*."""
    predicate = wm_is("swm")
    predicate.server = server
    plan = FaultPlan(seed)
    plan.rule(
        CRASH,
        probability=1.0,
        requests=(request,),
        clients=predicate,
        arm_after=arm_after,
        max_fires=max_fires,
        name=f"crash@{request}",
    )
    return plan


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


class TestBasicSupervision:
    def test_start_boots_a_wm(self, server, tmp_path):
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(server, store, make_factory(tmp_path))
        wm = sup.start()
        assert wm is sup.wm
        assert sup.restarts == 1
        assert not sup.crashes

    def test_pump_before_start_raises(self, server, tmp_path):
        sup = Supervisor(server, None, make_factory(tmp_path))
        with pytest.raises(RuntimeError):
            sup.pump()

    def test_bad_cleanup_mode_rejected(self, server, tmp_path):
        with pytest.raises(ValueError):
            Supervisor(
                server, None, make_factory(tmp_path), cleanup="explode"
            )

    def test_run_returns_default_on_crash(self, server, tmp_path):
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(server, store, make_factory(tmp_path))
        wm = sup.start()
        server.install_faults(crash_plan(server, "warp_pointer"))
        result = sup.run(
            wm.conn.warp_pointer, wm.screens[0].root, 10, 10, default="gone"
        )
        assert result == "gone"
        assert len(sup.crashes) == 1
        assert sup.wm is not None and sup.wm is not wm
        server.clear_faults()


@pytest.mark.parametrize("cleanup", ["close", "abandon"])
class TestCrashRecovery:
    def test_clients_survive_a_crash(self, server, tmp_path, cleanup):
        """Every pre-crash client is back under management afterwards,
        with geometry, iconic state and stickiness restored from the
        checkpoint + WM_STATE."""
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(
            server, store, make_factory(tmp_path), cleanup=cleanup
        )
        wm = sup.start()

        xterm = launch_command(server, ["xterm", "-geometry", "+50+60"])
        xclock = launch_command(server, ["xclock", "-geometry", "+400+80"])
        xload = launch_command(server, ["xload", "-geometry", "+700+90"])
        sup.pump()
        assert xterm.wid in sup.wm.managed

        wm.move_managed_to(wm.managed[xterm.wid], 333, 222)
        wm.iconify(wm.managed[xclock.wid])
        wm.stick(wm.managed[xload.wid])
        sup.pump()
        assert wm.session.autosave()
        expected = [
            m.client for m in wm.managed.values() if not m.is_internal
        ]
        saved_position = wm.client_desktop_position(wm.managed[xterm.wid])

        server.install_faults(crash_plan(server, "configure_window"))
        sup.run(wm.move_managed_to, wm.managed[xterm.wid], 333, 223)
        server.clear_faults()

        assert len(sup.crashes) == 1
        new_wm = sup.wm
        assert new_wm is not wm
        sup.pump()

        assert_wm_consistent(new_wm)
        assert_adoption_complete(new_wm, expected)
        for wid in (xterm.wid, xclock.wid, xload.wid):
            assert wid in new_wm.managed
        stats = new_wm.session.adoption
        assert stats.adopted + stats.rescued == len(expected)
        if cleanup == "abandon":
            # Zombie frames were found, emptied and demolished.
            assert stats.adopted > 0
            assert stats.reclaimed > 0
        else:
            # Save-set rescue had already put clients back on the root.
            assert stats.rescued > 0

        position = new_wm.client_desktop_position(new_wm.managed[xterm.wid])
        assert (position.x, position.y) == (saved_position.x, saved_position.y)
        assert new_wm.managed[xclock.wid].state == ICONIC_STATE
        assert new_wm.managed[xload.wid].sticky

    def test_crash_while_decorating_a_new_client(
        self, server, tmp_path, cleanup
    ):
        """The WM dies reacting to a MapRequest (mid-manage, half a
        frame built).  Event delivery is synchronous, so the crash
        surfaces inside the launch — run it supervised and the caller
        sees the default instead of the exception."""
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(
            server, store, make_factory(tmp_path), cleanup=cleanup
        )
        wm = sup.start()
        xterm = launch_command(server, ["xterm"])
        sup.pump()
        wm.session.autosave()
        expected = [
            m.client for m in wm.managed.values() if not m.is_internal
        ]

        server.install_faults(crash_plan(server, "create_window"))
        casualty = sup.run(launch_command, server, ["xclock"])
        server.clear_faults()
        sup.pump()

        assert casualty is None  # the launch saw the WM die mid-frame
        assert len(sup.crashes) == 1
        assert xterm.wid in sup.wm.managed
        assert_wm_consistent(sup.wm)
        assert_adoption_complete(sup.wm, expected)
        # The restarted WM is fully in service: a fresh client manages.
        xclock = launch_command(server, ["xclock"])
        sup.pump()
        assert xclock.wid in sup.wm.managed


class TestBackoff:
    def test_backoff_grows_and_caps(self, server, tmp_path):
        """Repeated boot crashes climb the exponential ladder up to the
        cap; the simulated clock advances by each wait."""
        sup = Supervisor(
            server,
            None,
            make_factory(tmp_path),
            backoff_base=4,
            backoff_cap=16,
            storm_threshold=100,
        )
        server.install_faults(
            crash_plan(server, "create_window", max_fires=5)
        )
        before = server.timestamp
        sup.start()
        server.clear_faults()

        assert [c.backoff for c in sup.crashes] == [4, 8, 16, 16, 16]
        assert all(c.during_boot for c in sup.crashes)
        assert server.timestamp - before >= sum(
            c.backoff for c in sup.crashes
        )
        assert sup.wm is not None

    def test_successful_step_resets_the_ladder(self, server, tmp_path):
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(
            server,
            store,
            make_factory(tmp_path),
            backoff_base=4,
            storm_threshold=100,
            storm_window=10,
        )
        sup.start()
        for _ in range(3):
            server.install_faults(crash_plan(server, "warp_pointer"))
            sup.run(
                sup.wm.conn.warp_pointer, sup.wm.screens[0].root, 5, 5
            )
            server.clear_faults()
            sup.pump()  # a healthy step between crashes
        # Every crash saw a fully reset ladder.
        assert [c.backoff for c in sup.crashes] == [4, 4, 4]


class TestCrashStorm:
    def test_breaker_trips_on_a_storm(self, server, tmp_path):
        sup = Supervisor(
            server,
            None,
            make_factory(tmp_path),
            storm_threshold=3,
            storm_window=100_000,
        )
        server.install_faults(
            crash_plan(server, "create_window", max_fires=None)
        )
        with pytest.raises(CrashStorm):
            sup.start()
        server.clear_faults()

        assert sup.tripped
        assert len(sup.crashes) == 4  # threshold exceeded on the 4th
        # The breaker stays open.
        with pytest.raises(CrashStorm):
            sup.run(lambda: None)

    def test_spread_out_crashes_do_not_trip(self, server, tmp_path):
        """Crashes outside the sliding window never accumulate."""
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(
            server,
            store,
            make_factory(tmp_path),
            storm_threshold=2,
            storm_window=50,
        )
        sup.start()
        for _ in range(4):
            server.timestamp += 1000  # quiet stretch between incidents
            server.install_faults(crash_plan(server, "warp_pointer"))
            sup.run(
                sup.wm.conn.warp_pointer, sup.wm.screens[0].root, 5, 5
            )
            server.clear_faults()
            sup.pump()
        assert not sup.tripped
        assert len(sup.crashes) == 4


class TestCheckpointIntegration:
    def test_corrupt_checkpoint_rolls_back_a_generation(
        self, server, tmp_path
    ):
        """A corrupted newest checkpoint costs one generation of
        history and a quarantine record — never the restore."""
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(server, store, make_factory(tmp_path))
        wm = sup.start()
        xterm = launch_command(server, ["xterm", "-geometry", "+50+60"])
        sup.pump()

        wm.move_managed_to(wm.managed[xterm.wid], 100, 110)
        good_position = wm.client_desktop_position(wm.managed[xterm.wid])
        assert wm.session.autosave()  # generation 1
        wm.move_managed_to(wm.managed[xterm.wid], 500, 510)
        assert wm.session.autosave()  # generation 2
        newest = store.load()
        with open(newest.path, "r+b") as handle:
            handle.seek(-3, 2)
            handle.write(b"\xff")  # bit-rot in the newest generation

        server.install_faults(crash_plan(server, "configure_window"))
        sup.run(wm.move_managed_to, wm.managed[xterm.wid], 1, 1)
        server.clear_faults()
        sup.pump()

        assert store.quarantined  # the bad generation was moved aside
        new_wm = sup.wm
        assert xterm.wid in new_wm.managed
        position = new_wm.client_desktop_position(new_wm.managed[xterm.wid])
        # Generation 1's geometry won (the corrupt generation 2 lost).
        assert (position.x, position.y) == (good_position.x, good_position.y)
        assert_wm_consistent(new_wm)

    def test_autosave_debounce_checkpoints_after_changes(
        self, server, tmp_path
    ):
        """A geometry change is on disk within AUTOSAVE_DEBOUNCE event
        pumps, without an explicit f.places."""
        store = SessionStore(str(tmp_path / "ck"))
        sup = Supervisor(server, store, make_factory(tmp_path))
        wm = sup.start()
        xterm = launch_command(server, ["xterm", "-geometry", "+50+60"])
        sup.pump()

        saves_before = store.saves
        wm.move_managed_to(wm.managed[xterm.wid], 640, 480)
        position = wm.client_desktop_position(wm.managed[xterm.wid])
        for _ in range(wm.session.AUTOSAVE_DEBOUNCE + 1):
            sup.pump()
        assert store.saves > saves_before
        assert f"+{position.x}+{position.y}" in store.load().text

    def test_no_store_supervisor_still_recovers(self, server, tmp_path):
        """The supervisor works storeless: adoption alone brings the
        clients back (geometry from the live windows, not a file)."""
        sup = Supervisor(server, None, make_factory(tmp_path))
        wm = sup.start()
        xterm = launch_command(server, ["xterm", "-geometry", "+70+80"])
        sup.pump()
        expected = [
            m.client for m in wm.managed.values() if not m.is_internal
        ]

        server.install_faults(crash_plan(server, "warp_pointer"))
        sup.run(wm.conn.warp_pointer, wm.screens[0].root, 9, 9)
        server.clear_faults()
        sup.pump()

        assert xterm.wid in sup.wm.managed
        assert_wm_consistent(sup.wm)
        assert_adoption_complete(sup.wm, expected)


class TestWMCrashSemantics:
    def test_wmcrash_is_not_an_xerror(self):
        """guarded() must never absorb a crash — only the supervisor
        may catch it."""
        from repro.xserver.errors import XError

        assert not issubclass(WMCrash, XError)

    def test_crash_escapes_guarded(self, server, tmp_path):
        wm = make_factory(tmp_path)(server, None)
        server.install_faults(crash_plan(server, "warp_pointer"))
        with pytest.raises(WMCrash):
            wm.guarded(wm.conn.warp_pointer, wm.screens[0].root, 1, 1)
        server.clear_faults()
