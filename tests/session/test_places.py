"""f.places: script generation, parsing, and the full roundtrip (§7)."""

import pytest

from repro import icccm
from repro.clients import CmdTool, OClock, XClock, XTerm
from repro.core.bindings import FunctionCall
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.session import (
    Host,
    Launcher,
    collect_entries,
    format_places,
    parse_places,
    replay_places,
)
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def wm(server, tmp_path):
    db = load_template("OpenLook+")
    return Swm(server, db, places_path=str(tmp_path / "places"))


class TestCollect:
    def test_two_lines_per_client(self, server, wm):
        XTerm(server, ["xterm", "-geometry", "80x24+10+10"])
        wm.process_pending()
        entries = collect_entries(wm)
        assert len(entries) == 1
        text = format_places(entries)
        assert "swmhints" in text
        assert "xterm -geometry 80x24+10+10 &" in text

    def test_exact_wm_command_preserved(self, server, wm):
        """'The client is invoked with the exact command string found
        in the WM_COMMAND property' — toolkit-independent."""
        CmdTool(server, ["cmdtool", "-Wp", "5", "6", "-Ws", "400", "300"])
        wm.process_pending()
        entries = collect_entries(wm)
        assert entries[0].start_line == "cmdtool -Wp 5 6 -Ws 400 300 &"

    def test_current_geometry_not_original(self, server, wm):
        """§7's example: started at 100x100, resized to 120x120 and
        moved; the hints carry the *current* geometry."""
        app = OClock(server, ["oclock", "-geom", "100x100"])
        wm.process_pending()
        managed = wm.managed[app.wid]
        wm.resize_managed(managed, 120, 120)
        wm.move_client_to(managed, 1010, 359)
        entries = collect_entries(wm)
        geometry = entries[0].hints.geometry
        assert (geometry.width, geometry.height) == (120, 120)
        assert (geometry.x, geometry.y) == (1010, 359)
        # But the start line still uses the original command string.
        assert entries[0].start_line == "oclock -geom 100x100 &"

    def test_iconified_state_recorded(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.iconify(wm.managed[app.wid])
        entries = collect_entries(wm)
        assert entries[0].hints.state == ICONIC_STATE
        assert entries[0].hints.icon_geometry is not None

    def test_sticky_recorded(self, server, wm):
        app = XClock(server, ["xclock"])
        wm.process_pending()
        entries = collect_entries(wm)
        assert entries[0].hints.sticky

    def test_internal_windows_skipped(self, server, tmp_path):
        db = load_template("OpenLook+")
        db.put("swm*virtualDesktop", "3000x2400")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        # Only the panner is managed; it must not be saved.
        assert collect_entries(wm) == []

    def test_client_without_wm_command_skipped(self, server, wm):
        app = XTerm(server, ["xterm"])
        wm.process_pending()
        app.conn.delete_property(app.wid, "WM_COMMAND")
        assert collect_entries(wm) == []

    def test_remote_client_uses_remote_start(self, server, wm):
        XTerm(server, ["xterm"], host="fast.example.com")
        wm.process_pending()
        entries = collect_entries(wm)
        assert entries[0].start_line.startswith("rsh fast.example.com")
        assert "DISPLAY" in entries[0].start_line

    def test_custom_remote_start_resource(self, server, tmp_path):
        db = load_template("OpenLook+")
        db.put("swm*remoteStart", "rsh %h 'setenv DISPLAY %d; %c'")
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        XTerm(server, ["xterm"], host="fast.example.com")
        wm.process_pending()
        entries = collect_entries(wm)
        assert entries[0].start_line == (
            "rsh fast.example.com 'setenv DISPLAY localhost:0.0; xterm' &"
        )


class TestScriptFormat:
    def test_parse_roundtrip(self, server, wm):
        XTerm(server, ["xterm", "-geometry", "+5+5"])
        XClock(server, ["xclock"])
        wm.process_pending()
        text = format_places(collect_entries(wm))
        parsed = parse_places(text)
        assert len(parsed) == 2

    def test_script_is_xinitrc_shaped(self, server, wm):
        XTerm(server, ["xterm"])
        wm.process_pending()
        text = format_places(collect_entries(wm))
        assert text.startswith("#!/bin/sh")
        assert text.rstrip().endswith("swm")

    def test_fplaces_writes_file(self, server, wm, tmp_path):
        XTerm(server, ["xterm"])
        wm.process_pending()
        wm.execute(FunctionCall("places"))
        with open(wm.places_path) as handle:
            assert "xterm" in handle.read()

    def test_parse_skips_comments_and_blanks(self):
        text = "# comment\n\nswmhints -cmd xclock\nxclock &\n"
        assert len(parse_places(text)) == 1


class TestFullRoundtrip:
    """The headline §7 scenario: save the session, restart X, replay
    the script, and get every window back where it was."""

    def snapshot(self, wm, server):
        state = {}
        for managed in wm.managed.values():
            if managed.is_internal:
                continue
            position = wm.client_desktop_position(managed)
            _, _, width, height, _ = wm.conn.get_geometry(managed.client)
            state[icccm.get_wm_command_string(wm.conn, managed.client)] = {
                "position": tuple(position),
                "size": (width, height),
                "state": managed.state,
                "sticky": managed.sticky,
            }
        return state

    def test_roundtrip_restores_layout(self, server, tmp_path):
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path=str(tmp_path / "places"))

        term = XTerm(server, ["xterm", "-geometry", "80x24+10+10"])
        clock = OClock(server, ["oclock", "-geom", "100x100"])
        tool = CmdTool(server, ["cmdtool", "-Wp", "5", "6", "-Ws", "400", "300"])
        wm.process_pending()
        # Rearrange the session: move, resize, iconify.
        wm.move_client_to(wm.managed[term.wid], 321, 234)
        wm.resize_managed(wm.managed[clock.wid], 120, 120)
        wm.move_client_to(wm.managed[clock.wid], 640, 480)
        wm.iconify(wm.managed[tool.wid])

        before = self.snapshot(wm, server)
        text = wm.save_places()

        # X shuts down: every client and the WM die with it.
        server.reset()

        # New X session: replay the places file, then start swm (the
        # script's last line).
        launcher = Launcher(server)
        replay_places(text, launcher)
        wm2 = Swm(server, db, places_path=str(tmp_path / "places2"))
        wm2.process_pending()

        after = self.snapshot(wm2, server)
        assert set(after) == set(before)
        for command, expected in before.items():
            assert after[command] == expected, command

    def test_roundtrip_restores_icon_position(self, server, tmp_path):
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path=str(tmp_path / "places"))
        term = XTerm(server, ["xterm"])
        wm.process_pending()
        managed = wm.managed[term.wid]
        wm.iconify(managed)
        wm.conn.move_window(managed.icon.window, 444, 333)
        text = wm.save_places()
        server.reset()
        launcher = Launcher(server)
        replay_places(text, launcher)
        wm2 = Swm(server, db)
        wm2.process_pending()
        managed2 = next(
            m for m in wm2.managed.values() if m.instance == "xterm"
        )
        assert managed2.state == ICONIC_STATE
        x, y, _, _, _ = wm2.conn.get_geometry(managed2.icon.window)
        assert (x, y) == (444, 333)

    def test_roundtrip_restores_sticky(self, server, tmp_path):
        db = load_template("OpenLook+")
        db.put("swm*virtualDesktop", "3000x2400")
        wm = Swm(server, db, places_path=str(tmp_path / "places"))
        term = XTerm(server, ["xterm", "-geometry", "+50+60"])
        wm.process_pending()
        wm.stick(wm.managed[term.wid])
        text = wm.save_places()
        server.reset()
        launcher = Launcher(server)
        replay_places(text, launcher)
        wm2 = Swm(server, db)
        wm2.process_pending()
        managed2 = next(
            m for m in wm2.managed.values() if m.instance == "xterm"
        )
        assert managed2.sticky

    def test_identical_commands_both_restored(self, server, tmp_path):
        """§7: identical WM_COMMANDs can't be told apart — both windows
        still restart, just possibly with swapped geometry."""
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path=str(tmp_path / "places"))
        a = XTerm(server, ["xterm"])
        b = XTerm(server, ["xterm"])
        wm.process_pending()
        wm.move_client_to(wm.managed[a.wid], 100, 100)
        wm.move_client_to(wm.managed[b.wid], 500, 500)
        text = wm.save_places()
        server.reset()
        launcher = Launcher(server)
        replay_places(text, launcher)
        wm2 = Swm(server, db)
        wm2.process_pending()
        xterms = [m for m in wm2.managed.values() if m.instance == "xterm"]
        assert len(xterms) == 2
        positions = {tuple(wm2.client_desktop_position(m)) for m in xterms}
        assert positions == {(100, 100), (500, 500)}

    def test_restart_table_entry_consumed_once(self, server, tmp_path):
        """A third xterm launched after replay gets default placement,
        not a stale hints entry."""
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path=str(tmp_path / "places"))
        XTerm(server, ["xterm"])
        wm.process_pending()
        wm.move_client_to(next(iter(wm.managed.values())), 700, 700)
        text = wm.save_places()
        server.reset()
        launcher = Launcher(server)
        replay_places(text, launcher)
        wm2 = Swm(server, db)
        wm2.process_pending()
        assert wm2.restart_table == []
        extra = XTerm(server, ["xterm"])
        wm2.process_pending()
        position = wm2.client_desktop_position(wm2.managed[extra.wid])
        assert tuple(position) != (700, 700)


class TestRemoteRoundtrip:
    def test_remote_client_restarts_on_its_host(self, server, tmp_path):
        db = load_template("OpenLook+")
        wm = Swm(server, db, places_path=str(tmp_path / "places"))
        XTerm(server, ["xterm"], host="compute.example.com")
        wm.process_pending()
        text = wm.save_places()
        server.reset()
        launcher = Launcher(server)
        launcher.add_host(Host("compute.example.com"))
        apps = replay_places(text, launcher)
        assert apps[0].host == "compute.example.com"
        wm2 = Swm(server, db)
        wm2.process_pending()
        managed = next(iter(
            m for m in wm2.managed.values() if not m.is_internal
        ))
        assert icccm.get_wm_client_machine(wm2.conn, managed.client) == (
            "compute.example.com"
        )

    def test_machine_mismatch_does_not_match_hints(self, server, tmp_path):
        """A hints record for host A must not seed a client on host B."""
        from repro.session.hints import swmhints as write_hints

        db = load_template("OpenLook+")
        write_hints(
            server,
            "swmhints -geometry 80x24+700+700 -machine hostA -cmd xterm",
        )
        wm = Swm(server, db, places_path=str(tmp_path / "p"))
        app = XTerm(server, ["xterm"], host="hostB")
        wm.process_pending()
        position = wm.client_desktop_position(wm.managed[app.wid])
        assert tuple(position) != (700, 700)
        assert len(wm.restart_table) == 1  # entry not consumed


BAD_HOST_SCRIPT = """#!/bin/sh
# swm places file -- generated by f.places
swmhints -geometry 80x24+10+10 -cmd xterm
xterm &
swmhints -machine decommissioned.example -cmd xclock
rsh decommissioned.example "env DISPLAY=localhost:0.0 xclock" &
swmhints -cmd xload
xload &
swm
"""


class TestReplayTolerance:
    """Per-entry replay failures are collected as warnings; one bad
    WM_COMMAND or decommissioned host never aborts the whole restore."""

    def test_unknown_host_skipped_others_restored(self, server):
        launcher = Launcher(server)
        apps = replay_places(BAD_HOST_SCRIPT, launcher)

        assert [app.argv[0] for app in apps] == ["xterm", "xload"]
        assert len(launcher.warnings) == 1
        failure = launcher.warnings[0]
        assert failure.index == 1
        assert "decommissioned.example" in failure.reason
        assert "rsh" in failure.line

    def test_strict_mode_still_raises(self, server):
        from repro.session.launcher import LaunchError

        with pytest.raises(LaunchError):
            replay_places(BAD_HOST_SCRIPT, Launcher(server), strict=True)

    def test_unparseable_command_skipped(self, server):
        script = (
            "swmhints -cmd xterm\n"
            "xterm 'unterminated &\n"
            "swmhints -cmd xclock\n"
            "xclock &\n"
        )
        launcher = Launcher(server)
        apps = replay_places(script, launcher)
        assert [app.argv[0] for app in apps] == ["xclock"]
        assert len(launcher.warnings) == 1
        assert launcher.warnings[0].index == 0

    def test_all_entries_bad_returns_empty_with_warnings(self, server):
        script = (
            "swmhints -cmd a\nrsh nowhere1 \"env DISPLAY=d a\" &\n"
            "swmhints -cmd b\nrsh nowhere2 \"env DISPLAY=d b\" &\n"
        )
        launcher = Launcher(server)
        assert replay_places(script, launcher) == []
        assert len(launcher.warnings) == 2
        assert [f.index for f in launcher.warnings] == [0, 1]
