"""swmhints parsing, serialization, and the restart property."""

import pytest

from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.session.hints import (
    RESTART_PROPERTY,
    RestartHints,
    SwmHintsError,
    clear_restart_property,
    read_restart_property,
    swmhints,
)
from repro.xserver import ClientConnection, XServer


class TestRestartHints:
    def test_paper_example_parses(self):
        """The exact §7 example invocation."""
        hints = RestartHints.from_line(
            'swmhints -geometry 120x120+1010+359 -icongeometry +0+0 '
            '-state NormalState -cmd "oclock -geom 100x100"'
        )
        assert hints.geometry.width == 120
        assert (hints.geometry.x, hints.geometry.y) == (1010, 359)
        assert hints.icon_position == (0, 0)
        assert hints.state == NORMAL_STATE
        assert hints.command == "oclock -geom 100x100"

    def test_roundtrip(self):
        hints = RestartHints(
            command="xterm -title shell",
            geometry=None,
            state=ICONIC_STATE,
            sticky=True,
            machine="remote.example.com",
        )
        parsed = RestartHints.from_line(hints.to_line())
        assert parsed == hints

    def test_roundtrip_with_geometry(self):
        from repro.xserver.geometry import parse_geometry

        hints = RestartHints(
            command="xclock",
            geometry=parse_geometry("164x164+5-7"),
            icon_geometry=parse_geometry("+3+4"),
            state=NORMAL_STATE,
        )
        parsed = RestartHints.from_line(hints.to_line())
        assert parsed == hints
        assert parsed.geometry.y_negative

    def test_cmd_required(self):
        with pytest.raises(SwmHintsError):
            RestartHints.from_line("swmhints -geometry 10x10+1+1")

    def test_unknown_option(self):
        with pytest.raises(SwmHintsError):
            RestartHints.from_line("swmhints -wibble -cmd xclock")

    def test_bad_state(self):
        with pytest.raises(SwmHintsError):
            RestartHints.from_line("swmhints -state Wedged -cmd xclock")

    def test_icon_position_none_without_geometry(self):
        assert RestartHints(command="x").icon_position is None


class TestRestartProperty:
    def test_swmhints_writes_property(self):
        server = XServer()
        swmhints(server, "swmhints -geometry 10x10+1+2 -cmd xclock")
        conn = ClientConnection(server)
        text = conn.get_string_property(conn.root_window(), RESTART_PROPERTY)
        assert "xclock" in text

    def test_records_append(self):
        server = XServer()
        swmhints(server, "swmhints -cmd xclock")
        swmhints(server, "swmhints -cmd 'xterm -ls'")
        conn = ClientConnection(server)
        table = read_restart_property(conn, conn.root_window())
        assert [entry["command"] for entry in table] == ["xclock", "xterm -ls"]

    def test_read_empty(self):
        server = XServer()
        conn = ClientConnection(server)
        assert read_restart_property(conn, conn.root_window()) == []

    def test_bad_lines_skipped(self):
        server = XServer()
        conn = ClientConnection(server)
        conn.set_string_property(
            conn.root_window(), RESTART_PROPERTY,
            "garbage line\nswmhints -cmd xclock\n",
        )
        table = read_restart_property(conn, conn.root_window())
        assert len(table) == 1

    def test_clear(self):
        server = XServer()
        swmhints(server, "swmhints -cmd xclock")
        conn = ClientConnection(server)
        clear_restart_property(conn, conn.root_window())
        assert read_restart_property(conn, conn.root_window()) == []

    def test_accepts_argv_list(self):
        server = XServer()
        hints = swmhints(
            server, ["swmhints", "-state", "IconicState", "-cmd", "xbiff"]
        )
        assert hints.state == ICONIC_STATE
