"""swmhints parsing, serialization, and the restart property."""

import pytest

from repro.icccm.hints import ICONIC_STATE, NORMAL_STATE
from repro.session.hints import (
    RESTART_PROPERTY,
    RestartHints,
    SwmHintsError,
    clear_restart_property,
    read_restart_property,
    swmhints,
)
from repro.xserver import ClientConnection, XServer


class TestRestartHints:
    def test_paper_example_parses(self):
        """The exact §7 example invocation."""
        hints = RestartHints.from_line(
            'swmhints -geometry 120x120+1010+359 -icongeometry +0+0 '
            '-state NormalState -cmd "oclock -geom 100x100"'
        )
        assert hints.geometry.width == 120
        assert (hints.geometry.x, hints.geometry.y) == (1010, 359)
        assert hints.icon_position == (0, 0)
        assert hints.state == NORMAL_STATE
        assert hints.command == "oclock -geom 100x100"

    def test_roundtrip(self):
        hints = RestartHints(
            command="xterm -title shell",
            geometry=None,
            state=ICONIC_STATE,
            sticky=True,
            machine="remote.example.com",
        )
        parsed = RestartHints.from_line(hints.to_line())
        assert parsed == hints

    def test_roundtrip_with_geometry(self):
        from repro.xserver.geometry import parse_geometry

        hints = RestartHints(
            command="xclock",
            geometry=parse_geometry("164x164+5-7"),
            icon_geometry=parse_geometry("+3+4"),
            state=NORMAL_STATE,
        )
        parsed = RestartHints.from_line(hints.to_line())
        assert parsed == hints
        assert parsed.geometry.y_negative

    def test_cmd_required(self):
        with pytest.raises(SwmHintsError):
            RestartHints.from_line("swmhints -geometry 10x10+1+1")

    def test_unknown_option(self):
        with pytest.raises(SwmHintsError):
            RestartHints.from_line("swmhints -wibble -cmd xclock")

    def test_bad_state(self):
        with pytest.raises(SwmHintsError):
            RestartHints.from_line("swmhints -state Wedged -cmd xclock")

    def test_icon_position_none_without_geometry(self):
        assert RestartHints(command="x").icon_position is None


class TestRestartProperty:
    def test_swmhints_writes_property(self):
        server = XServer()
        swmhints(server, "swmhints -geometry 10x10+1+2 -cmd xclock")
        conn = ClientConnection(server)
        text = conn.get_string_property(conn.root_window(), RESTART_PROPERTY)
        assert "xclock" in text

    def test_records_append(self):
        server = XServer()
        swmhints(server, "swmhints -cmd xclock")
        swmhints(server, "swmhints -cmd 'xterm -ls'")
        conn = ClientConnection(server)
        table = read_restart_property(conn, conn.root_window())
        assert [entry["command"] for entry in table] == ["xclock", "xterm -ls"]

    def test_read_empty(self):
        server = XServer()
        conn = ClientConnection(server)
        assert read_restart_property(conn, conn.root_window()) == []

    def test_bad_lines_skipped(self):
        server = XServer()
        conn = ClientConnection(server)
        conn.set_string_property(
            conn.root_window(), RESTART_PROPERTY,
            "garbage line\nswmhints -cmd xclock\n",
        )
        table = read_restart_property(conn, conn.root_window())
        assert len(table) == 1

    def test_clear(self):
        server = XServer()
        swmhints(server, "swmhints -cmd xclock")
        conn = ClientConnection(server)
        clear_restart_property(conn, conn.root_window())
        assert read_restart_property(conn, conn.root_window()) == []

    def test_accepts_argv_list(self):
        server = XServer()
        hints = swmhints(
            server, ["swmhints", "-state", "IconicState", "-cmd", "xbiff"]
        )
        assert hints.state == ICONIC_STATE


class TestMalformedInvocations:
    """A malformed record must raise SwmHintsError — never leak an
    IndexError or ValueError into the restart-table reader."""

    @pytest.mark.parametrize("line", [
        "swmhints -geometry",            # flag missing its value
        "swmhints -machine",
        "swmhints -state",
        "swmhints -cmd",
        "swmhints -desktop",
        "swmhints -desktop two -cmd xterm",   # unparseable int
        "swmhints -geometry bogus -cmd xterm",  # unparseable geometry
    ])
    def test_truncated_or_bad_value_raises_hints_error(self, line):
        with pytest.raises(SwmHintsError):
            RestartHints.from_line(line)

    def test_malformed_record_skipped_by_reader(self):
        """read_restart_property drops the bad record, keeps the rest."""
        server = XServer()
        conn = ClientConnection(server)
        root = conn.root_window()
        swmhints(server, "swmhints -cmd xclock")
        conn.change_property(
            root, RESTART_PROPERTY, "STRING", 8,
            "swmhints -desktop\n", mode=2,  # append a truncated record
        )
        swmhints(server, "swmhints -cmd xterm")
        table = read_restart_property(conn, root)
        assert [entry["command"] for entry in table] == ["xclock", "xterm"]


class TestDegenerateClientProperties:
    """Round-trips with missing or non-UTF8 WM_COMMAND /
    WM_CLIENT_MACHINE.  X string properties are latin-1, so bytes that
    are not valid UTF-8 must still snapshot and replay losslessly."""

    def _wm(self, server, tmp_path):
        from repro.core.templates import load_template
        from repro.core.wm import Swm

        return Swm(
            server,
            load_template("OpenLook+"),
            places_path=str(tmp_path / "places"),
        )

    def _bare_client(self, server, command_bytes=None, machine=None):
        """A mapped top-level with raw property bytes (no SimApp
        conveniences interfering)."""
        conn = ClientConnection(server, "raw")
        root = conn.root_window(0)
        wid = conn.create_window(root, 10, 10, 120, 90)
        if command_bytes is not None:
            conn.change_property(wid, "WM_COMMAND", "STRING", 8,
                                 command_bytes)
        if machine is not None:
            conn.change_property(wid, "WM_CLIENT_MACHINE", "STRING", 8,
                                 machine)
        conn.map_window(wid)
        return wid

    def test_non_utf8_wm_command_roundtrips(self, tmp_path):
        from repro.session.places import collect_entries, format_places
        from repro.session.places import parse_places

        server = XServer(screens=[(1152, 900, 8)])
        wm = self._wm(server, tmp_path)
        self._bare_client(server, command_bytes=b"xcaf\xe9\x000\x00")
        wm.process_pending()

        entries = collect_entries(wm)
        assert len(entries) == 1
        # shlex quotes the non-ASCII argv element; the bytes survive.
        assert entries[0].hints.command == "'xcaf\xe9' 0"
        # The latin-1 text survives format → parse → argv intact.
        parsed = parse_places(format_places(entries))
        assert parsed[0].hints.command == entries[0].hints.command

    def test_non_utf8_client_machine_roundtrips(self):
        hints = RestartHints(command="xterm", machine="h\xf4te.example")
        parsed = RestartHints.from_line(hints.to_line())
        assert parsed.machine == "h\xf4te.example"

    def test_missing_wm_command_skips_entry(self, tmp_path):
        from repro.session.places import collect_entries

        server = XServer(screens=[(1152, 900, 8)])
        wm = self._wm(server, tmp_path)
        self._bare_client(server)  # no WM_COMMAND at all
        wm.process_pending()
        assert collect_entries(wm) == []

    def test_missing_client_machine_omits_flag(self, tmp_path):
        from repro.session.places import collect_entries

        server = XServer(screens=[(1152, 900, 8)])
        wm = self._wm(server, tmp_path)
        self._bare_client(server, command_bytes=b"xload\x00")
        wm.process_pending()
        entries = collect_entries(wm)
        assert len(entries) == 1
        assert entries[0].hints.machine is None
        assert "-machine" not in entries[0].hints.to_line()

    def test_non_format8_wm_command_ignored(self, tmp_path):
        """A WM_COMMAND written with format 32 (hostile or buggy) reads
        as missing, not as garbage."""
        from repro.session.places import collect_entries

        server = XServer(screens=[(1152, 900, 8)])
        wm = self._wm(server, tmp_path)
        conn = ClientConnection(server, "raw")
        root = conn.root_window(0)
        wid = conn.create_window(root, 10, 10, 100, 80)
        conn.change_property(wid, "WM_COMMAND", "CARDINAL", 32, [1, 2, 3])
        conn.map_window(wid)
        wm.process_pending()
        assert collect_entries(wm) == []
