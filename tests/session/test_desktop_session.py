"""Session management × multiple desktops: layouts restore to the
right desktop (extension of §7 over the E1 extension)."""

import pytest

from repro.clients import NaiveApp
from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.session import Launcher, RestartHints, replay_places
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def db():
    db = load_template("OpenLook+")
    db.put("swm*virtualDesktop", "3000x2400")
    db.put("swm*virtualDesktops", "3")
    return db


class TestDesktopHints:
    def test_desktop_option_roundtrip(self):
        hints = RestartHints(command="xterm", desktop=2)
        assert RestartHints.from_line(hints.to_line()).desktop == 2

    def test_desktop_absent_by_default(self):
        hints = RestartHints.from_line("swmhints -cmd xterm")
        assert hints.desktop is None


class TestDesktopRoundtrip:
    def test_windows_restore_to_their_desktops(self, server, db, tmp_path):
        wm = Swm(server, db, places_path=str(tmp_path / "places"))
        a = NaiveApp(server, ["naivedemo", "-geometry", "+100+100",
                              "-title", "on-zero"])
        wm.process_pending()
        wm.switch_desktop(0, 2)
        b = NaiveApp(server, ["naivedemo", "-geometry", "+200+200",
                              "-title", "on-two"])
        wm.process_pending()
        script = wm.save_places()
        assert "-desktop 2" in script

        server.reset()
        replay_places(script, Launcher(server))
        wm2 = Swm(server, db, places_path=str(tmp_path / "p2"))
        wm2.process_pending()
        by_name = {m.name: m for m in wm2.managed.values()
                   if not m.is_internal}
        assert by_name["on-zero"].desktop == 0
        assert by_name["on-two"].desktop == 2

    def test_single_desktop_omits_option(self, server, tmp_path):
        db = load_template("OpenLook+")
        db.put("swm*virtualDesktop", "3000x2400")
        wm = Swm(server, db, places_path=str(tmp_path / "places"))
        NaiveApp(server, ["naivedemo", "-geometry", "+100+100"])
        wm.process_pending()
        script = wm.save_places()
        assert "-desktop" not in script
