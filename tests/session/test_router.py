"""Display router unit tests: load-balanced placement, live migration
with geometry replay, deferred admission under total outage,
heartbeat-partition fencing, post-failover rebalance, the stats
snapshot, and mid-flight restart-record absorption (the cross-shard
adoption hook).  The kill-any-shard chaos tour lives in
``tests/chaos/test_chaos_router.py``; these tests pin the router's
policy mechanics one behavior at a time."""

import pytest

from repro.session.hints import RestartHints, read_restart_property
from repro.session.router import BACKOFF_CAP, DisplayRouter
from repro.xserver.faults import PARTITION, SHARD_CRASH, FaultPlan
from repro.xserver.shard import HEALTHY

SEED = 424242


@pytest.fixture
def router(tmp_path):
    router = DisplayRouter(
        shards=2,
        seed=SEED,
        store_dir=str(tmp_path / "router"),
        storm_threshold=10_000,
    )
    yield router
    router.close()


def loads(router):
    return [router._load(shard_id) for shard_id in sorted(router.shards)]


class TestPlacement:
    def test_needs_at_least_one_shard(self, tmp_path):
        with pytest.raises(ValueError):
            DisplayRouter(shards=0, store_dir=str(tmp_path / "r"))

    def test_balances_by_load(self, router):
        for _ in range(4):
            router.place(["xterm"])
        router.pump()
        assert loads(router) == [2, 2]
        assert router.stats()["placements"] == 4
        assert router.problems() == []

    def test_placed_clients_are_managed(self, router):
        rec = router.place(["xclock", "-geometry", "+40+60"])
        router.pump()
        shard = router.shards[rec.shard_id]
        assert rec.wid in shard.wm.managed

    def test_ties_break_to_lowest_shard_id(self, router):
        first = router.place(["xterm"])
        second = router.place(["xterm"])
        assert first.shard_id == 0
        assert second.shard_id == 1


class TestMigration:
    def test_migrate_replays_position(self, router):
        rec = router.place(["xterm"])
        router.pump()
        source = router.shards[rec.shard_id]
        managed = source.wm.managed[rec.wid]
        source.wm.move_managed_to(managed, 300, 200)
        position = source.wm.client_desktop_position(managed)
        old_wid = rec.wid

        router.migrate(rec.cid, 1)
        router.pump()

        assert rec.shard_id == 1
        target = router.shards[1]
        assert rec.wid in target.wm.managed
        assert old_wid not in source.wm.managed
        replayed = target.wm.client_desktop_position(
            target.wm.managed[rec.wid]
        )
        assert (replayed.x, replayed.y) == (position.x, position.y)
        assert router.stats()["migrations"] == 1
        assert router.problems() == []

    def test_migrate_to_same_shard_is_a_noop(self, router):
        rec = router.place(["xterm"])
        router.pump()
        router.migrate(rec.cid, rec.shard_id)
        assert router.migrations == 0

    def test_migrate_to_fenced_shard_is_refused(self, router):
        rec = router.place(["xterm"])
        router.pump()
        plan = FaultPlan(SEED)
        plan.rule(SHARD_CRASH, probability=1.0, max_fires=1)
        victim = router.shards[1]
        victim.server.install_faults(plan)
        router.call(1, victim.wm.warp_pointer_by, 1, 1)
        assert victim.health != HEALTHY
        with pytest.raises(ValueError):
            router.migrate(rec.cid, 1)

    def test_rebalance_levels_a_lopsided_router(self, router):
        records = [router.place(["xterm"]) for _ in range(4)]
        router.pump()
        for rec in records:
            if rec.shard_id == 1:
                router.call(1, rec.app.quit)
                router.forget(rec.cid)
        router.pump()
        assert loads(router) == [2, 0]
        moved = router.rebalance()
        assert moved == 1
        assert loads(router) == [1, 1]
        assert router.problems() == []


class TestDeferredAdmission:
    def test_total_outage_defers_then_drains(self, tmp_path):
        router = DisplayRouter(
            shards=1,
            seed=SEED,
            store_dir=str(tmp_path / "solo"),
            storm_threshold=10_000,
        )
        try:
            plan = FaultPlan(SEED)
            plan.rule(SHARD_CRASH, probability=1.0, max_fires=1)
            router.shards[0].server.install_faults(plan)
            rec = router.place(["xterm"])
            # The launch itself killed the only shard: the admission
            # is parked, not lost.
            assert rec.shard_id is None
            assert rec.cid in router.deferred
            assert router.deferred_admissions >= 1
            assert router.problems() == []

            for _ in range(3 * BACKOFF_CAP):
                router.pump()
                if rec.shard_id is not None:
                    break
            assert rec.shard_id == 0
            assert router.shards[0].health == HEALTHY
            assert rec.wid in router.shards[0].wm.managed
            assert router.stats()["recoveries"] == 1
            assert router.problems() == []
        finally:
            router.close()


class TestHeartbeats:
    def test_partition_past_miss_budget_fences_and_evacuates(self, router):
        records = [router.place(["xterm"]) for _ in range(2)]
        router.pump()
        victim_recs = [r for r in records if r.shard_id == 1]
        assert victim_recs

        plan = FaultPlan(SEED)
        plan.rule(
            PARTITION,
            probability=1.0,
            direction="c2s",
            clients=(1,),
        )
        router.install_link_faults(plan)
        for _ in range(router.miss_budget):
            router.pump()
        router.clear_link_faults()

        assert router.shards[1].health != HEALTHY
        assert router.missed_heartbeats == router.miss_budget
        record = router.failovers[-1]
        assert record.reason == "partition"
        for rec in victim_recs:
            assert rec.shard_id == 0
            assert rec.wid in router.shards[0].wm.managed
        assert router.problems() == []

    def test_clean_heartbeats_reset_misses(self, router):
        plan = FaultPlan(SEED)
        plan.rule(
            PARTITION,
            probability=1.0,
            direction="c2s",
            clients=(1,),
            max_fires=1,
        )
        router.install_link_faults(plan)
        router.pump()
        assert router.shards[1].misses == 1
        router.pump()
        assert router.shards[1].misses == 0
        assert router.shards[1].health == HEALTHY


class TestStats:
    def test_snapshot_shape(self, router):
        router.place(["xterm"])
        router.pump()
        stats = router.stats()
        for key in (
            "placements", "migrations", "evacuations",
            "deferred_admissions", "pending_deferred", "failovers",
            "recoveries", "heartbeats", "missed_heartbeats", "clients",
            "shards",
        ):
            assert key in stats
        assert set(stats["shards"]) == {0, 1}
        for snap in stats["shards"].values():
            for key in ("health", "generation", "failures", "clients",
                        "crashes", "restarts", "flight_dumps"):
                assert key in snap


class TestAbsorbRestartRecords:
    def test_absorbs_into_live_table_and_root_property(self, router):
        shard = router.shards[0]
        wm = shard.wm
        hints = RestartHints.from_argv(
            ["swmhints", "-geometry", "200x100+30+40", "-cmd", "xeyes"]
        )
        absorbed = wm.session.absorb_restart_records([hints])
        assert absorbed == 1
        entry = wm.session.restart_table[-1]
        assert entry["command"] == "xeyes"
        assert str(entry["geometry"]) == "200x100+30+40"
        # Durable: the record also landed on the root property, so a
        # successor WM can still reconcile the handover after a crash.
        root = shard.server.screens[0].root.id
        table = read_restart_property(wm.conn, root)
        assert any(row["command"] == "xeyes" for row in table)

    def test_non_durable_absorb_skips_the_property(self, router):
        shard = router.shards[1]
        wm = shard.wm
        hints = RestartHints.from_argv(["swmhints", "-cmd", "xload"])
        wm.session.absorb_restart_records([hints], durable=False)
        assert wm.session.restart_table[-1]["command"] == "xload"
        root = shard.server.screens[0].root.id
        table = read_restart_property(wm.conn, root)
        assert not any(row["command"] == "xload" for row in table)
