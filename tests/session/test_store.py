"""SessionStore: durable, checksummed, rotating f.places checkpoints."""

import os

from repro.session.store import SessionStore

PLACES_A = "#!/bin/sh\nswmhints -cmd xterm\nxterm &\nswm\n"
PLACES_B = "#!/bin/sh\nswmhints -cmd xclock\nxclock &\nswm\n"
PLACES_C = "#!/bin/sh\nswmhints -cmd xload\nxload &\nswm\n"


def make_store(tmp_path, **kwargs):
    return SessionStore(str(tmp_path / "session"), **kwargs)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        saved = store.save(PLACES_A)
        assert saved.generation == 1
        loaded = store.load()
        assert loaded is not None
        assert loaded.text == PLACES_A
        assert loaded.generation == 1

    def test_empty_store_loads_none(self, tmp_path):
        assert make_store(tmp_path).load() is None

    def test_load_prefers_newest_generation(self, tmp_path):
        store = make_store(tmp_path)
        store.save(PLACES_A)
        store.save(PLACES_B)
        assert store.load().text == PLACES_B

    def test_generations_rotate_and_prune(self, tmp_path):
        store = make_store(tmp_path, keep=3)
        for index in range(6):
            store.save(f"# snapshot {index}\n")
        assert store.generations() == [4, 5, 6]
        # Pruned files are actually gone from disk.
        names = sorted(os.listdir(store.directory))
        assert names == [
            "places.000004.ck", "places.000005.ck", "places.000006.ck"
        ]

    def test_no_temp_files_leak(self, tmp_path):
        store = make_store(tmp_path)
        for index in range(4):
            store.save(f"# snapshot {index}\n")
        assert not [
            name for name in os.listdir(store.directory)
            if name.endswith(".tmp")
        ]

    def test_generation_numbering_survives_reopen(self, tmp_path):
        """A fresh store over the same directory (the restarted WM)
        continues the generation sequence rather than clobbering."""
        make_store(tmp_path).save(PLACES_A)
        reopened = make_store(tmp_path)
        assert reopened.save(PLACES_B).generation == 2
        assert reopened.load().text == PLACES_B

    def test_non_ascii_payload(self, tmp_path):
        store = make_store(tmp_path)
        text = "swmhints -cmd 'xterm -title café'\n"
        store.save(text)
        assert store.load().text == text


class TestCorruption:
    def _corrupt_payload(self, path):
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[-2] ^= 0xFF  # flip one payload byte; length stays right
        with open(path, "wb") as handle:
            handle.write(blob)

    def test_corrupt_newest_falls_back_one_generation(self, tmp_path):
        store = make_store(tmp_path)
        store.save(PLACES_A)
        newest = store.save(PLACES_B)
        self._corrupt_payload(newest.path)

        loaded = store.load()
        assert loaded.text == PLACES_A
        assert loaded.generation == 1
        # The bad file was moved aside, not deleted, with a record.
        assert os.path.exists(newest.path + ".quarantined")
        assert not os.path.exists(newest.path)
        assert len(store.quarantined) == 1
        assert "CRC" in store.quarantined[0].reason
        log = open(
            os.path.join(store.directory, "quarantine.log"),
            encoding="utf-8",
        ).read()
        assert "places.000002.ck" in log

    def test_truncated_newest_falls_back(self, tmp_path):
        store = make_store(tmp_path)
        store.save(PLACES_A)
        newest = store.save(PLACES_B)
        with open(newest.path, "rb") as handle:
            blob = handle.read()
        with open(newest.path, "wb") as handle:
            handle.write(blob[: len(blob) - 10])  # crash mid-write

        loaded = store.load()
        assert loaded.text == PLACES_A
        assert "truncated" in store.quarantined[0].reason

    def test_bad_magic_falls_back(self, tmp_path):
        store = make_store(tmp_path)
        store.save(PLACES_A)
        newest = store.save(PLACES_B)
        with open(newest.path, "wb") as handle:
            handle.write(b"not a checkpoint at all\na\nb\nc\nd\n")
        assert store.load().text == PLACES_A

    def test_all_generations_corrupt_loads_none(self, tmp_path):
        store = make_store(tmp_path)
        for text in (PLACES_A, PLACES_B, PLACES_C):
            checkpoint = store.save(text)
            self._corrupt_payload(checkpoint.path)
        assert store.load() is None
        assert len(store.quarantined) == 3

    def test_header_only_file(self, tmp_path):
        store = make_store(tmp_path)
        store.save(PLACES_A)
        newest = store.save(PLACES_B)
        with open(newest.path, "wb") as handle:
            handle.write(b"# swm-checkpoint v1\n")
        assert store.load().text == PLACES_A

    def test_save_after_quarantine_continues_numbering(self, tmp_path):
        store = make_store(tmp_path)
        store.save(PLACES_A)
        newest = store.save(PLACES_B)
        self._corrupt_payload(newest.path)
        assert store.load().generation == 1
        # Quarantine freed generation 2's name; the next save must not
        # be confused by the gap.
        assert store.save(PLACES_C).generation >= 2
        assert store.load().text == PLACES_C
