"""The host/launcher model and remote-start semantics (§7.1)."""

import pytest

from repro.session.launcher import (
    DEFAULT_REMOTE_START,
    Host,
    LaunchError,
    Launcher,
    render_remote_start,
)
from repro.xserver import XServer


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def launcher(server):
    return Launcher(server)


class TestLocalLaunch:
    def test_run_local(self, server, launcher):
        app = launcher.run_local("xclock -geometry 100x100+1+2")
        assert app.host == "localhost"
        assert app.argv[0] == "xclock"

    def test_empty_command(self, launcher):
        with pytest.raises(LaunchError):
            launcher.run_local("")

    def test_run_line_strips_ampersand(self, launcher):
        app = launcher.run_line("xclock &")
        assert app.argv == ["xclock"]


class TestRemoteLaunch:
    def test_rsh_with_display(self, server, launcher):
        launcher.add_host(Host("far.example.com"))
        app = launcher.run_rsh(
            'rsh far.example.com "env DISPLAY=localhost:0.0 xclock"'
        )
        assert app.host == "far.example.com"

    def test_rsh_without_display_fails(self, server, launcher):
        """The §7.1 failure: a bare rsh shell has no DISPLAY, so the
        client cannot start."""
        launcher.add_host(Host("bare.example.com"))
        with pytest.raises(LaunchError, match="DISPLAY"):
            launcher.run_rsh('rsh bare.example.com "xclock"')

    def test_rsh_host_env_provides_display(self, server, launcher):
        """A host whose non-login shell init sets DISPLAY works even
        without the inline setting."""
        launcher.add_host(
            Host("nice.example.com", rsh_env={"DISPLAY": "localhost:0.0"})
        )
        app = launcher.run_rsh('rsh nice.example.com "xclock"')
        assert app.host == "nice.example.com"

    def test_unknown_host(self, launcher):
        with pytest.raises(LaunchError, match="unknown host"):
            launcher.run_rsh('rsh ghost.example.com "xclock"')

    def test_command_not_installed(self, server, launcher):
        launcher.add_host(
            Host("slim.example.com",
                 rsh_env={"DISPLAY": "localhost:0.0"},
                 installed=["xterm"]),
        )
        with pytest.raises(LaunchError, match="not found"):
            launcher.run_rsh('rsh slim.example.com "xclock"')
        app = launcher.run_rsh('rsh slim.example.com "xterm"')
        assert app.host == "slim.example.com"

    def test_inline_variable_assignment(self, server, launcher):
        launcher.add_host(Host("bare.example.com"))
        app = launcher.run_rsh(
            'rsh bare.example.com "DISPLAY=localhost:0.0 xclock"'
        )
        assert app.host == "bare.example.com"

    def test_run_line_routes_rsh(self, server, launcher):
        launcher.add_host(Host("far.example.com"))
        app = launcher.run_line(
            'rsh far.example.com "env DISPLAY=localhost:0.0 xclock" &'
        )
        assert app.host == "far.example.com"


class TestRemoteStartTemplate:
    def test_default_template_renders(self):
        line = render_remote_start(
            DEFAULT_REMOTE_START, "far.example.com", "localhost:0.0",
            "xterm -ls",
        )
        assert line == (
            'rsh far.example.com "env DISPLAY=localhost:0.0 xterm -ls"'
        )

    def test_default_template_is_launchable(self, server, launcher):
        """The default template produces lines the bare-host launcher
        accepts — the whole point of the customizable string."""
        launcher.add_host(Host("bare.example.com"))
        line = render_remote_start(
            DEFAULT_REMOTE_START, "bare.example.com", "localhost:0.0", "xclock"
        )
        app = launcher.run_line(line + " &")
        assert app.host == "bare.example.com"

    def test_custom_template(self):
        line = render_remote_start(
            "on %h run %c for %d", "h1", "d1", "c1"
        )
        assert line == "on h1 run c1 for d1"
