"""The soak harness: a quick-profile run must complete with zero
oracle drift, replay bit-identically for the same seed, survive its
injected WM crash with a flight dump ending at the crash span, and
export the ``swm-soak/1`` payload CI consumes."""

import json

import pytest

from repro.session.soak import (
    PROFILES,
    SCHEMA,
    SoakRunner,
    derive_seed,
    run_soak,
)

SEED = 20260808


@pytest.fixture(scope="module")
def quick_run(tmp_path_factory):
    """One shared quick-profile run (module scope keeps the suite
    fast); tests only read its results."""
    base = tmp_path_factory.mktemp("soak")
    runner = SoakRunner(
        SEED, "quick",
        store_dir=str(base / "store"),
        dump_dir=str(base / "dumps"),
    )
    result = runner.run()
    yield runner, result
    runner.close()


class TestQuickProfile:
    def test_completes_clean(self, quick_run):
        runner, result = quick_run
        totals = result["totals"]
        assert totals["crash_storm"] is None
        assert totals["oracle_checks"] > 0
        assert totals["requests"] > 1000
        assert len(result["phases"]) == len(PROFILES["quick"].phases)

    def test_crash_phase_recovered(self, quick_run):
        runner, result = quick_run
        totals = result["totals"]
        # The crash phases fire exactly one WMCrash each; the
        # supervisor restarted the WM every time.
        crash_phases = [p for p in result["phases"] if p["kind"] == "crash"]
        assert crash_phases
        assert totals["crashes"] >= len(crash_phases)
        assert totals["restarts"] == totals["crashes"] + 1

    def test_phase_records_carry_latency_and_signature(self, quick_run):
        runner, result = quick_run
        for phase in result["phases"]:
            assert phase["requests"] > 0
            assert set(phase["latency"]) == {
                "p50_ns", "p95_ns", "p99_ns", "max_ns"
            }
            assert phase["latency"]["p99_ns"] > 0
            assert len(phase["signature"]) == 8
            assert "cache_hit_rate" in phase
        # Subsystem p99s appear once the WM has handled events.
        assert any(p["subsystems"] for p in result["phases"])

    def test_flight_dump_ends_at_crash_span(self, quick_run):
        runner, result = quick_run
        dumps = result["totals"]["flight_dumps"]
        assert dumps, "crash phase produced no flight dump"
        artifact = json.load(open(dumps[0]))
        assert artifact["schema"] == "swm-flight/1"
        assert artifact["seed"] == SEED
        assert artifact["reason"].startswith("WMCrash:")
        spans = artifact["spans"]
        # The ring must end at the crashing request (its span and the
        # outer request it unwound through), with at least 100 spans of
        # preceding history for the post-mortem.
        crash_tail = [
            s for s in spans[-2:]
            if any(n.startswith("crash=") for n in s["notes"])
        ]
        assert crash_tail
        crash_index = min(
            i for i, s in enumerate(spans)
            if any(n.startswith("crash=") for n in s["notes"])
        )
        assert crash_index >= 100
        # The injected fault's marker span is in the ring too.
        assert any(s["kind"] == "fault" for s in spans)

    def test_payload_schema(self, quick_run):
        runner, result = quick_run
        assert result["schema"] == SCHEMA == "swm-soak/1"
        assert result["seed"] == SEED
        assert "--seed" in result["replay"]
        totals = result["totals"]
        assert set(totals) >= {
            "steps", "requests", "oracle_checks", "crashes", "restarts",
            "span_count", "signature", "flight_dumps", "wall_s",
        }
        json.dumps(result)  # exportable as-is

    def test_write_exports_json(self, quick_run, tmp_path):
        runner, result = quick_run
        path = runner.write(str(tmp_path / "BENCH_soak.json"))
        assert json.load(open(path))["totals"] == result["totals"]


class TestDeterminism:
    def _signature(self, seed, tmp_path, tag):
        runner = SoakRunner(
            seed, "quick", store_dir=str(tmp_path / f"store-{tag}")
        )
        try:
            result = runner.run()
        finally:
            runner.close()
        totals = result["totals"]
        return (
            totals["signature"], totals["span_count"], totals["requests"],
            [p["signature"] for p in result["phases"]],
        )

    def test_same_seed_bit_identical_span_sequence(self, tmp_path):
        first = self._signature(SEED, tmp_path, "a")
        second = self._signature(SEED, tmp_path, "b")
        assert first == second

    def test_different_seed_diverges(self, tmp_path):
        first = self._signature(SEED, tmp_path, "a2")
        other = self._signature(SEED + 1, tmp_path, "c")
        assert first[0] != other[0]

    def test_derive_seed_decorrelates_substreams(self):
        assert derive_seed(SEED, "soak-workload") != \
            derive_seed(SEED, "soak-fuzz")
        assert derive_seed(SEED, "x") == derive_seed(SEED, "x")


class TestRunSoak:
    def test_cli_driver_writes_payload(self, tmp_path):
        out = tmp_path / "BENCH_soak.json"
        code, result = run_soak(
            SEED, profile="quick",
            out=str(out),
            dump_dir=str(tmp_path / "dumps"),
            store_dir=str(tmp_path / "store"),
        )
        assert code == 0
        assert json.load(open(out))["schema"] == "swm-soak/1"
        assert result["totals"]["crash_storm"] is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown soak profile"):
            SoakRunner(1, "nope")
