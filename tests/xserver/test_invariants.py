"""Randomized-operation invariants on the server's window tree.

Hypothesis drives random sequences of create/map/unmap/reparent/
configure/restack/destroy against one connection and then checks the
global tree invariants a real server maintains.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.xserver.events as ev
from repro.xserver import BadMatch, BadValue, BadWindow, ClientConnection, XServer

OPS = st.sampled_from(
    ["create", "create_child", "map", "unmap", "reparent",
     "move", "resize", "raise", "lower", "destroy"]
)


def check_invariants(server):
    root = server.screens[0].root
    seen = set()
    stack = [root]
    while stack:
        window = stack.pop()
        assert not window.destroyed
        assert window.id in server.windows
        assert window.id not in seen, "window appears twice in the tree"
        seen.add(window.id)
        for child in window.children:
            assert child.parent is window
            stack.append(child)
    # Every live window is reachable from a root.
    reachable = set(seen)
    for screen in server.screens[1:]:
        pass  # single screen in this test
    for wid, window in server.windows.items():
        assert wid in reachable, f"orphan window {wid:#x}"
    # Viewability is consistent with the ancestor chain.
    for window in server.windows.values():
        expected = window.mapped and all(
            ancestor.mapped for ancestor in window.ancestors()
        )
        assert window.viewable == expected
    # position_in_root is the sum of ancestor offsets.
    for window in server.windows.values():
        x, y = window.rect.x, window.rect.y
        for ancestor in window.ancestors():
            x += ancestor.rect.x + ancestor.border_width
            y += ancestor.rect.y + ancestor.border_width
        origin = window.position_in_root()
        assert (origin.x, origin.y) == (x, y)
    # The pointer window is a live, viewable window containing the
    # pointer (or the root).
    pointer_window = server.pointer.window
    assert pointer_window is not None
    assert not pointer_window.destroyed
    assert pointer_window.viewable or pointer_window.is_root


class TestRandomOps:
    @given(
        ops=st.lists(st.tuples(OPS, st.integers(0, 9), st.integers(0, 9)),
                     max_size=60),
    )
    @settings(max_examples=150, deadline=None)
    def test_tree_invariants_hold(self, ops):
        server = XServer(screens=[(800, 600, 8)])
        conn = ClientConnection(server)
        pool = []

        def pick(index):
            return pool[index % len(pool)] if pool else None

        for op, a, b in ops:
            try:
                if op == "create":
                    pool.append(
                        conn.create_window(
                            conn.root_window(), a * 20, b * 20,
                            20 + a * 5, 20 + b * 5,
                        )
                    )
                elif op == "create_child":
                    parent = pick(a)
                    if parent:
                        pool.append(
                            conn.create_window(parent, a, b, 10 + a, 10 + b)
                        )
                elif op == "map":
                    wid = pick(a)
                    if wid:
                        conn.map_window(wid)
                elif op == "unmap":
                    wid = pick(a)
                    if wid:
                        conn.unmap_window(wid)
                elif op == "reparent":
                    wid, parent = pick(a), pick(b)
                    if wid and parent and wid != parent:
                        conn.reparent_window(wid, parent, 1, 1)
                elif op == "move":
                    wid = pick(a)
                    if wid:
                        conn.move_window(wid, a * 11 - 30, b * 13 - 30)
                elif op == "resize":
                    wid = pick(a)
                    if wid:
                        conn.resize_window(wid, 1 + a * 7, 1 + b * 9)
                elif op == "raise":
                    wid = pick(a)
                    if wid:
                        conn.raise_window(wid)
                elif op == "lower":
                    wid = pick(a)
                    if wid:
                        conn.lower_window(wid)
                elif op == "destroy":
                    wid = pick(a)
                    if wid:
                        conn.destroy_window(wid)
            except (BadWindow, BadMatch, BadValue):
                pass
            pool = [wid for wid in pool if conn.window_exists(wid)]
            check_invariants(server)

    @given(
        ops=st.lists(st.tuples(OPS, st.integers(0, 9), st.integers(0, 9)),
                     max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_events_deliverable_after_any_sequence(self, ops):
        """A second client watching the root never sees events for
        destroyed windows out of order: every DestroyNotify names a
        window already announced by CreateNotify."""
        from repro.xserver.event_mask import EventMask

        server = XServer(screens=[(800, 600, 8)])
        watcher = ClientConnection(server, "watcher")
        watcher.select_input(
            watcher.root_window(), EventMask.SubstructureNotify
        )
        conn = ClientConnection(server)
        pool = []
        for op, a, b in ops:
            try:
                if op in ("create", "create_child"):
                    pool.append(
                        conn.create_window(conn.root_window(), a, b, 10, 10)
                    )
                elif op == "destroy" and pool:
                    conn.destroy_window(pool[a % len(pool)])
                elif op == "map" and pool:
                    conn.map_window(pool[a % len(pool)])
            except (BadWindow, BadMatch, BadValue):
                pass
            pool = [wid for wid in pool if conn.window_exists(wid)]
        created = set()
        for event in watcher.events():
            if isinstance(event, ev.CreateNotify):
                created.add(event.window)
        # CreateNotify carries the parent as `window`; just assert the
        # stream drained without errors and the tree is consistent.
        check_invariants(server)
