"""Bitmaps, XBM round-trip, and the SHAPE extension."""

import pytest
from hypothesis import given, strategies as st

import repro.xserver.events as ev
from repro.xserver import ClientConnection, EventMask, XServer
from repro.xserver.bitmap import Bitmap, lookup_bitmap, stock_bitmap_names
from repro.xserver.shape import (
    SHAPE_INTERSECT,
    SHAPE_SUBTRACT,
    SHAPE_UNION,
    ShapeRegion,
)


class TestBitmap:
    def test_from_strings(self):
        bitmap = Bitmap.from_strings(["#.#", ".#."])
        assert bitmap.width == 3 and bitmap.height == 2
        assert bitmap.get(0, 0) and not bitmap.get(1, 0)

    def test_solid(self):
        bitmap = Bitmap.solid(4, 3)
        assert bitmap.count_set() == 12

    def test_out_of_bounds_get_is_false(self):
        bitmap = Bitmap.solid(2, 2)
        assert not bitmap.get(-1, 0)
        assert not bitmap.get(5, 5)

    def test_disc_is_roundish(self):
        disc = Bitmap.disc(16)
        assert disc.get(8, 8)
        assert not disc.get(0, 0)
        assert not disc.get(15, 15)
        # Area close to pi*r^2.
        assert abs(disc.count_set() - 3.14159 * 64) < 20

    def test_xbm_roundtrip(self):
        bitmap = Bitmap.from_strings(["##..##..#", ".########", "#........"])
        text = bitmap.to_xbm("test")
        parsed = Bitmap.from_xbm(text)
        assert parsed == bitmap

    def test_xbm_parse_real_format(self):
        text = """
        #define star_width 8
        #define star_height 2
        static unsigned char star_bits[] = { 0x01, 0x80 };
        """
        bitmap = Bitmap.from_xbm(text)
        assert bitmap.get(0, 0)
        assert bitmap.get(7, 1)
        assert bitmap.count_set() == 2

    def test_xbm_missing_defines(self):
        with pytest.raises(ValueError):
            Bitmap.from_xbm("static unsigned char b[] = {0x00};")

    def test_xbm_short_data(self):
        with pytest.raises(ValueError):
            Bitmap.from_xbm(
                "#define a_width 16\n#define a_height 2\n"
                "static unsigned char a_bits[] = {0x00};"
            )

    def test_stock_bitmaps(self):
        assert "xlogo32" in stock_bitmap_names()
        logo = lookup_bitmap("xlogo32")
        assert logo.width == 32 and logo.height == 32
        assert logo.count_set() > 0

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(3, 2, [[True, False]])

    @given(st.lists(st.lists(st.booleans(), min_size=1, max_size=20),
                    min_size=1, max_size=10).filter(
                        lambda rows: len({len(r) for r in rows}) == 1))
    def test_xbm_roundtrip_property(self, rows):
        bitmap = Bitmap(len(rows[0]), len(rows), rows)
        assert Bitmap.from_xbm(bitmap.to_xbm()) == bitmap


class TestShapeRegion:
    def test_contains_with_offset(self):
        region = ShapeRegion(Bitmap.solid(4, 4), x_offset=10, y_offset=10)
        assert region.contains(10, 10)
        assert region.contains(13, 13)
        assert not region.contains(9, 10)
        assert not region.contains(14, 14)

    def test_extents(self):
        mask = Bitmap.from_strings(["....", ".##.", ".##.", "...."])
        region = ShapeRegion(mask)
        assert region.extents() == (1, 1, 2, 2)

    def test_empty_extents(self):
        assert ShapeRegion(Bitmap.solid(3, 3, False)).extents() is None

    def test_union(self):
        a = ShapeRegion(Bitmap.from_strings(["#."]))
        b = ShapeRegion(Bitmap.from_strings([".#"]))
        combined = a.combine(b, SHAPE_UNION)
        assert combined.contains(0, 0) and combined.contains(1, 0)

    def test_intersect(self):
        a = ShapeRegion(Bitmap.from_strings(["##"]))
        b = ShapeRegion(Bitmap.from_strings([".#"]))
        combined = a.combine(b, SHAPE_INTERSECT)
        assert not combined.contains(0, 0) and combined.contains(1, 0)

    def test_subtract(self):
        a = ShapeRegion(Bitmap.from_strings(["##"]))
        b = ShapeRegion(Bitmap.from_strings([".#"]))
        combined = a.combine(b, SHAPE_SUBTRACT)
        assert combined.contains(0, 0) and not combined.contains(1, 0)

    def test_from_rects(self):
        region = ShapeRegion.from_rects(10, 10, [(0, 0, 2, 2), (5, 5, 3, 3)])
        assert region.contains(1, 1)
        assert region.contains(6, 6)
        assert not region.contains(3, 3)
        assert region.area() == 4 + 9


class TestShapedWindows:
    @pytest.fixture
    def server(self):
        return XServer(screens=[(500, 500, 8)])

    @pytest.fixture
    def conn(self, server):
        return ClientConnection(server, "oclock")

    def test_shape_window(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 64, 64)
        conn.shape_window(wid, Bitmap.disc(64))
        assert conn.window_is_shaped(wid)

    def test_shape_notify_delivered(self, server, conn):
        wm = ClientConnection(server, "wm")
        wid = conn.create_window(conn.root_window(), 0, 0, 64, 64)
        wm.select_input(wid, EventMask.StructureNotify)
        conn.shape_window(wid, Bitmap.disc(64))
        notifies = wm.flush_events(ev.ShapeNotify)
        assert notifies and notifies[0].shaped

    def test_unshape(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 64, 64)
        conn.shape_window(wid, Bitmap.disc(64))
        conn.shape_window(wid, None)
        assert not conn.window_is_shaped(wid)

    def test_hit_test_honours_shape(self, server, conn):
        wid = conn.create_window(conn.root_window(), 100, 100, 64, 64)
        conn.map_window(wid)
        conn.shape_window(wid, Bitmap.disc(64))
        # Center of the disc hits the window...
        server.motion(132, 132)
        assert server.pointer.window.id == wid
        # ...the square's corner does not (falls through to root).
        server.motion(101, 101)
        assert server.pointer.window.id == conn.root_window()
