"""The structured tracing layer: histogram bucket math, flight-recorder
ring semantics, span capture at the three hot paths (requests, event
deliveries, subsystem dispatch), fault annotations, determinism under
seeded fault plans, and — the load-bearing guarantee — that a disabled
tracer changes nothing."""

import json

import pytest

from repro.core.templates import load_template
from repro.core.wm import Swm
from repro.xserver import ClientConnection, XServer
from repro.xserver.errors import BadWindow
from repro.xserver.faults import ERROR, FaultPlan
from repro.xserver.trace import (
    BUCKETS,
    FlightRecorder,
    LatencyHistogram,
    Tracer,
    TraceSpan,
)


@pytest.fixture
def server():
    return XServer(screens=[(1000, 800, 8)])


@pytest.fixture
def traced(server):
    server.tracer.enable()
    return server


def span(serial, **kwargs):
    defaults = dict(
        tick=0, kind="request", name="op", client=1,
        subsystem=None, duration_ns=10, notes=(),
    )
    defaults.update(kwargs)
    return TraceSpan(serial=serial, **defaults)


class TestLatencyHistogram:
    def test_bucket_edges(self):
        # Bucket index is bit_length: 0→0, 1→1, 2..3→2, 4..7→3, ...
        hist = LatencyHistogram()
        for ns in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
            hist.record(ns)
        assert hist.counts[0] == 1          # the exact zero
        assert hist.counts[1] == 1          # [1, 2)
        assert hist.counts[2] == 2          # [2, 4)
        assert hist.counts[3] == 2          # [4, 8): 4 and 7
        assert hist.counts[4] == 1          # [8, 16)
        assert hist.counts[10] == 1         # [512, 1024)
        assert hist.counts[11] == 1         # [1024, 2048)
        assert hist.count == 9
        assert hist.max_ns == 1024

    def test_huge_duration_clamps_to_last_bucket(self):
        hist = LatencyHistogram()
        hist.record(2 ** 200)
        assert hist.counts[BUCKETS - 1] == 1
        assert hist.percentile(0.5) == (1 << (BUCKETS - 1)) - 1

    def test_negative_duration_counts_as_zero(self):
        # A clock hiccup must not corrupt the bucket array.
        hist = LatencyHistogram()
        hist.record(-5)
        assert hist.counts[0] == 1
        assert hist.total_ns == 0

    def test_empty_percentiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.5) == 0
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p99_ns"] == 0
        assert snap["buckets"] == {}

    def test_percentile_reports_bucket_ceiling(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(100)                # bucket 7: [64, 128)
        hist.record(100_000)                # bucket 17: [65536, 131072)
        assert hist.percentile(0.50) == 127
        assert hist.percentile(0.95) == 127
        assert hist.percentile(0.999) == (1 << 17) - 1

    def test_snapshot_only_lists_occupied_buckets(self):
        hist = LatencyHistogram()
        hist.record(5)
        assert hist.snapshot()["buckets"] == {"3": 1}


class TestFlightRecorder:
    def test_ring_wraps_keeping_newest(self):
        ring = FlightRecorder(capacity=4)
        for serial in range(1, 11):
            ring.record(span(serial))
        assert len(ring) == 4
        assert [s.serial for s in ring.spans] == [7, 8, 9, 10]

    def test_dump_schema(self):
        ring = FlightRecorder(capacity=4)
        ring.record(span(1, notes=("crash=boom",)))
        artifact = ring.dump("WMCrash:boom", seed=42, extra={"k": "v"})
        assert artifact["schema"] == "swm-flight/1"
        assert artifact["reason"] == "WMCrash:boom"
        assert artifact["seed"] == 42
        assert artifact["span_count"] == 1
        assert artifact["spans"][0]["notes"] == ["crash=boom"]
        assert artifact["extra"] == {"k": "v"}
        json.dumps(artifact)  # must be JSON-serializable as-is

    def test_serials_stay_monotonic_across_wraparound(self):
        tracer = Tracer(capacity=8)
        tracer.enable()
        for _ in range(50):
            tracer.record_request("op", 0, 1, 10)
        serials = [k[0] for k in tracer.span_keys()]
        assert serials == list(range(43, 51))
        assert tracer.spans == 50


class TestSpanCapture:
    def test_request_spans_at_dispatch_chokepoint(self, traced):
        conn = ClientConnection(traced, "app")
        root = conn.root_window()
        wid = conn.create_window(root, 0, 0, 50, 50)
        conn.map_window(wid)
        snap = traced.stats().snapshot()["trace"]
        assert snap["enabled"] is True
        assert snap["opcodes"]["create_window"]["count"] == 1
        assert snap["opcodes"]["map_window"]["count"] == 1
        assert snap["requests"]["count"] >= 3
        for hist in snap["opcodes"].values():
            assert set(hist) >= {"p50_ns", "p95_ns", "p99_ns"}

    def test_failed_request_annotated_with_error(self, traced):
        conn = ClientConnection(traced, "app")
        with pytest.raises(BadWindow):
            conn.map_window(0xDEAD)
        keys = traced.tracer.span_keys()
        failed = [k for k in keys if k[3] == "map_window"]
        assert failed and failed[-1][6] == ("error=BadWindow",)

    def test_event_spans_carry_pipeline_outcome(self, traced):
        from repro.xserver import EventMask

        conn = ClientConnection(traced, "app")
        wid = conn.create_window(conn.root_window(), 0, 0, 50, 50)
        conn.select_input(wid, EventMask.PointerMotion)
        conn.map_window(wid)
        for x in range(5):
            traced.warp_pointer(conn.client_id, wid, 10 + x, 10)
        snap = traced.tracer.snapshot()
        assert snap["events"].get("MotionNotify", 0) >= 5
        outcomes = {
            k[6][0] for k in traced.tracer.span_keys() if k[2] == "event"
        }
        assert "append" in outcomes
        assert "coalesce" in outcomes  # the motion burst collapsed

    def test_subsystem_dispatch_histograms(self, traced, tmp_path):
        wm = Swm(traced, load_template("OpenLook+"),
                 places_path=str(tmp_path / "p.places"))
        conn = ClientConnection(traced, "app")
        wid = conn.create_window(conn.root_window(), 10, 10, 120, 90)
        conn.map_window(wid)
        wm.process_pending()
        assert wid in wm.managed
        snap = traced.stats().snapshot()["trace"]
        assert "requests" in snap["subsystems"]  # MapRequest consumer
        assert snap["subsystems"]["requests"]["count"] >= 1
        consuming = [
            k for k in traced.tracer.span_keys() if k[2] == "dispatch"
        ]
        assert any(k[5] == "requests" for k in consuming)

    def test_batch_ops_annotated(self, traced):
        conn = ClientConnection(traced, "app")
        wid = conn.create_window(conn.root_window(), 0, 0, 50, 50)
        conn.map_window(wid)
        with conn.batch():
            conn.move_window(wid, 5, 5)
            conn.move_window(wid, 9, 9)
        batched = [
            k for k in traced.tracer.span_keys()
            if k[2] == "request" and "batch" in k[6]
        ]
        assert len(batched) >= 2

    def test_fault_marker_spans(self, server):
        server.tracer.enable()
        plan = FaultPlan(seed=7)
        plan.rule(ERROR, probability=1.0, requests=("map_window",),
                  max_fires=1)
        server.install_faults(plan)
        conn = ClientConnection(server, "victim")
        wid = conn.create_window(conn.root_window(), 0, 0, 40, 40)
        with pytest.raises(Exception):
            conn.map_window(wid)
        server.clear_faults()
        snap = server.tracer.snapshot()
        assert snap["faults"].get("error") == 1
        fault_keys = [
            k for k in server.tracer.span_keys() if k[2] == "fault"
        ]
        assert fault_keys and fault_keys[0][3] == "map_window"


def _seeded_workload(seed, enable=True):
    """A small fault-seasoned workload; returns the server."""
    server = XServer(screens=[(800, 600, 8)])
    if enable:
        server.tracer.enable(capacity=256)
    plan = FaultPlan(seed=seed)
    plan.rule(ERROR, probability=0.3, requests=("configure_window",))
    server.install_faults(plan)
    conn = ClientConnection(server, "app")
    root = conn.root_window()
    wids = [conn.create_window(root, i * 10, 0, 60, 40) for i in range(4)]
    for wid in wids:
        conn.map_window(wid)
    for step in range(40):
        try:
            conn.configure_window(wids[step % 4], x=step, y=step)
        except Exception:
            pass
    server.clear_faults()
    return server


class TestDeterminism:
    def test_same_seed_same_span_sequence(self):
        a = _seeded_workload(1234)
        b = _seeded_workload(1234)
        assert a.tracer.span_keys() == b.tracer.span_keys()
        assert a.tracer.signature == b.tracer.signature
        assert a.tracer.spans == b.tracer.spans

    def test_different_seed_diverges(self):
        a = _seeded_workload(1234)
        b = _seeded_workload(4321)
        assert a.tracer.signature != b.tracer.signature

    def test_reset_metrics_keeps_sequence_state(self):
        server = _seeded_workload(1234)
        tracer = server.tracer
        spans, signature = tracer.spans, tracer.signature
        ring = list(tracer.span_keys())
        tracer.reset_metrics()
        assert tracer.spans == spans
        assert tracer.signature == signature
        assert tracer.span_keys() == ring
        assert tracer.snapshot()["requests"]["count"] == 0
        assert tracer.snapshot()["opcodes"] == {}


class TestInertness:
    """Tracing disabled must be invisible: same counters, same
    behaviour, no spans — the single `tracer.enabled` test aside."""

    def _comparable(self, server):
        snap = server.stats().snapshot()
        snap.pop("trace", None)
        return snap

    def test_disabled_tracer_records_nothing(self):
        server = _seeded_workload(1234, enable=False)
        tracer = server.tracer
        assert not tracer.enabled
        assert tracer.spans == 0
        assert tracer.signature == 0
        assert tracer.span_keys() == []
        snap = server.stats().snapshot()["trace"]
        assert snap["enabled"] is False

    def test_stats_identical_with_and_without_tracing(self):
        on = self._comparable(_seeded_workload(1234, enable=True))
        off = self._comparable(_seeded_workload(1234, enable=False))
        assert on == off

    def test_wm_behaviour_identical_with_and_without_tracing(self, tmp_path):
        def build(enable, tag):
            server = XServer(screens=[(1000, 800, 8)])
            if enable:
                server.tracer.enable()
            wm = Swm(server, load_template("OpenLook+"),
                     places_path=str(tmp_path / f"{tag}.places"))
            conn = ClientConnection(server, "app")
            wid = conn.create_window(conn.root_window(), 10, 10, 100, 80)
            conn.map_window(wid)
            wm.process_pending()
            managed = wm.managed[wid]
            return (
                sorted(wm.managed),
                managed.frame,
                wm.client_desktop_position(managed).x,
            )

        assert build(True, "on") == build(False, "off")

    def test_enable_is_idempotent_and_disable_stops_recording(self, server):
        tracer = server.tracer
        tracer.enable()
        tracer.enable()
        conn = ClientConnection(server, "app")
        conn.root_window()
        before = tracer.spans
        assert before > 0
        tracer.disable()
        conn.root_window()
        assert tracer.spans == before


class TestDump:
    def test_dump_writes_json_with_signature(self, traced, tmp_path):
        ClientConnection(traced, "app").root_window()
        path = traced.tracer.dump(
            str(tmp_path / "sub" / "flight.json"),
            reason="test", seed=99, extra={"note": "hi"},
        )
        artifact = json.loads(open(path).read())
        assert artifact["schema"] == "swm-flight/1"
        assert artifact["signature"] == f"{traced.tracer.signature:08x}"
        assert artifact["total_spans"] == traced.tracer.spans
        assert artifact["extra"] == {"note": "hi"}
        assert artifact["spans"]
