"""Cache invalidation for the server's hot-path caches.

The window tree memoises root origins, viewability, event-interest, and
per-parent stacking indexes (see ``repro.xserver.window``).  These tests
drive every invalidation edge — pan-style configure, border change,
reparent, restack, map/unmap, destroy-subwindows, selection change,
client close — and assert the caches serve *fresh* answers afterwards,
with no opt-out needed for correctness.
"""

import pytest

import repro.xserver.events as ev
from repro.xserver import ClientConnection, EventMask, NONE, XServer


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def conn(server):
    return ClientConnection(server, "app")


def manual_origin(window):
    """Root origin recomputed the slow way, bypassing the cache."""
    x, y = window.rect.x, window.rect.y
    for ancestor in window.ancestors():
        x += ancestor.rect.x + ancestor.border_width
        y += ancestor.rect.y + ancestor.border_width
    return x, y


def build_desktop(conn, children=6, grandchildren=2):
    """A pan-style tree: one big 'desktop' window full of descendants."""
    desk = conn.create_window(conn.root_window(), 0, 0, 1100, 880)
    conn.map_window(desk)
    tree = []
    for i in range(children):
        child = conn.create_window(
            desk, 30 + i * 170, 40 + (i % 2) * 300, 150, 250, border_width=2
        )
        conn.map_window(child)
        inners = []
        for j in range(grandchildren):
            inner = conn.create_window(child, 10, 10 + j * 100, 120, 80)
            conn.map_window(inner)
            inners.append(inner)
        tree.append((child, inners))
    return desk, tree


class TestPanInvalidation:
    def test_pan_refreshes_every_descendant(self, server, conn):
        """A pan is one ConfigureWindow on the desktop window; every
        descendant must report fresh root coordinates afterwards."""
        desk, tree = build_desktop(conn)
        # Warm every cache.
        for child, inners in tree:
            for wid in [child] + inners:
                server.window(wid).position_in_root()
        conn.move_window(desk, -400, -300)
        for child, inners in tree:
            for wid in [child] + inners:
                window = server.window(wid)
                origin = window.position_in_root()
                assert (origin.x, origin.y) == manual_origin(window)
        # translate_coordinates sees the pan too.
        child, inners = tree[0]
        x, y, _ = conn.translate_coordinates(inners[0], conn.root_window(), 0, 0)
        assert (x, y) == manual_origin(server.window(inners[0]))

    def test_pan_refreshes_query_pointer(self, server, conn):
        desk, tree = build_desktop(conn)
        child = tree[0][0]
        info = conn.query_pointer(child)
        conn.move_window(desk, -200, -100)
        after = conn.query_pointer(child)
        assert after["win_x"] == info["win_x"] + 200
        assert after["win_y"] == info["win_y"] + 100

    def test_repeated_pans_each_fresh(self, server, conn):
        desk, tree = build_desktop(conn, children=3, grandchildren=1)
        leaf = tree[-1][1][0]
        for step in range(8):
            conn.move_window(desk, -step * 50, -step * 30)
            window = server.window(leaf)
            origin = window.position_in_root()
            assert (origin.x, origin.y) == manual_origin(window)

    def test_border_change_shifts_descendants(self, server, conn):
        desk, tree = build_desktop(conn, children=1, grandchildren=1)
        inner = tree[0][1][0]
        before = server.window(inner).position_in_root()
        conn.configure_window(desk, border_width=7)
        after = server.window(inner).position_in_root()
        assert (after.x, after.y) == (before.x + 7, before.y + 7)

    def test_geometry_generation_bumps(self, server, conn):
        wid = conn.create_window(conn.root_window(), 10, 10, 100, 100)
        window = server.window(wid)
        gen = window.geometry_generation
        conn.move_window(wid, 20, 20)
        assert window.geometry_generation > gen
        gen = window.geometry_generation
        conn.configure_window(wid, border_width=3)
        assert window.geometry_generation > gen
        frame = conn.create_window(conn.root_window(), 0, 0, 500, 500)
        gen = window.geometry_generation
        conn.reparent_window(wid, frame, 5, 5)
        assert window.geometry_generation > gen


class TestReparentInvalidation:
    def test_reparent_refreshes_subtree(self, server, conn):
        frame = conn.create_window(conn.root_window(), 300, 200, 400, 400,
                                   border_width=3)
        conn.map_window(frame)
        wid = conn.create_window(conn.root_window(), 10, 10, 100, 100)
        inner = conn.create_window(wid, 5, 5, 50, 50)
        conn.map_window(wid)
        conn.map_window(inner)
        server.window(inner).position_in_root()  # warm
        conn.reparent_window(wid, frame, 20, 30)
        window = server.window(inner)
        origin = window.position_in_root()
        assert (origin.x, origin.y) == manual_origin(window)
        assert (origin.x, origin.y) == (300 + 3 + 20 + 5, 200 + 3 + 30 + 5)

    def test_reparent_refreshes_viewability(self, server, conn):
        hidden = conn.create_window(conn.root_window(), 0, 0, 200, 200)
        # not mapped
        wid = conn.create_window(conn.root_window(), 10, 10, 100, 100)
        conn.map_window(wid)
        assert server.window(wid).viewable
        conn.reparent_window(wid, hidden, 0, 0)
        assert server.window(wid).mapped       # remapped after reparent
        assert not server.window(wid).viewable  # parent unmapped


class TestVisibilityInvalidation:
    def test_unmap_ancestor_hides_subtree(self, server, conn):
        desk, tree = build_desktop(conn, children=2, grandchildren=2)
        leaves = [wid for _, inners in tree for wid in inners]
        assert all(server.window(w).viewable for w in leaves)
        conn.unmap_window(desk)
        assert not any(server.window(w).viewable for w in leaves)
        assert all(
            server.window(w).map_state == 1 for w in leaves  # IsUnviewable
        )
        conn.map_window(desk)
        assert all(server.window(w).viewable for w in leaves)


class TestStackingInvalidation:
    def test_restack_changes_hit_test(self, server, conn):
        a = conn.create_window(conn.root_window(), 100, 100, 200, 200)
        b = conn.create_window(conn.root_window(), 100, 100, 200, 200)
        conn.map_window(a)
        conn.map_window(b)
        server.motion(150, 150)
        assert server.pointer.window.id == b
        conn.raise_window(a)
        # The restack itself refreshes the pointer window.
        assert server.pointer.window.id == a
        info = conn.query_pointer(conn.root_window())
        assert info["child"] == a
        conn.lower_window(a)
        assert server.pointer.window.id == b

    def test_circulate_changes_hit_test(self, server, conn):
        wids = [
            conn.create_window(conn.root_window(), 100, 100, 200, 200)
            for _ in range(3)
        ]
        for wid in wids:
            conn.map_window(wid)
        server.motion(150, 150)
        assert server.pointer.window.id == wids[-1]
        conn.circulate_window(conn.root_window(), ev.RAISE_LOWEST)
        assert server.pointer.window.id == wids[0]

    def test_destroy_subwindows_refreshes_hit_test(self, server, conn):
        desk, tree = build_desktop(conn, children=2, grandchildren=1)
        child = tree[0][0]
        origin = server.window(child).position_in_root()
        server.motion(origin.x + 15, origin.y + 15)
        assert server.pointer.window.id == tree[0][1][0]
        conn.destroy_subwindows(desk)
        assert server.pointer.window.id == desk
        info = conn.query_pointer(desk)
        assert info["child"] == NONE

    def test_stacking_index_is_top_to_bottom(self, server, conn):
        wids = [
            conn.create_window(conn.root_window(), i * 10, 0, 50, 50)
            for i in range(3)
        ]
        for wid in wids:
            conn.map_window(wid)
        root = server.screens[0].root
        index = [child.id for child, _ in root.stacking_index()]
        assert index[: len(wids)] == list(reversed(wids))


class TestInterestInvalidation:
    def test_select_input_refreshes_all_masks(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 50, 50)
        window = server.window(wid)
        assert window.all_masks() == EventMask.NoEvent
        conn.select_input(wid, EventMask.PointerMotion)
        assert window.all_masks() == EventMask.PointerMotion
        other = ClientConnection(server, "other")
        other.select_input(wid, EventMask.KeyPress)
        assert window.all_masks() == EventMask.PointerMotion | EventMask.KeyPress
        assert window.clients_selecting(EventMask.KeyPress) == [other.client_id]

    def test_close_client_drops_interest(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 50, 50)
        other = ClientConnection(server, "other")
        other.select_input(wid, EventMask.KeyPress)
        assert window_masks(server, wid) & EventMask.KeyPress
        other.close()
        assert not window_masks(server, wid) & EventMask.KeyPress
        assert server.window(wid).clients_selecting(EventMask.KeyPress) == []

    def test_deselect_refreshes(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 50, 50)
        conn.select_input(wid, EventMask.PointerMotion)
        assert server.window(wid).clients_selecting(EventMask.PointerMotion)
        conn.select_input(wid, EventMask.NoEvent)
        assert server.window(wid).all_masks() == EventMask.NoEvent


def window_masks(server, wid):
    return server.window(wid).all_masks()


class TestCacheCounters:
    def test_counters_in_snapshot(self, server, conn):
        snapshot = server.stats().snapshot()
        assert set(snapshot["caches"]) == {
            "geometry", "visibility", "stacking_index", "interest", "region"
        }

    def test_hits_accumulate_and_invalidations_count(self, server, conn):
        wid = conn.create_window(conn.root_window(), 10, 10, 100, 100)
        window = server.window(wid)
        stats = server.stats()
        stats.reset()
        window.position_in_root()
        window.position_in_root()
        assert stats.cache_hits("geometry") >= 1
        before = stats.cache_invalidations("geometry")
        conn.move_window(wid, 50, 50)
        assert stats.cache_invalidations("geometry") > before

    def test_reset_preserves_correctness(self, server, conn):
        """Resetting counters must not revalidate stale entries."""
        wid = conn.create_window(conn.root_window(), 10, 10, 100, 100)
        window = server.window(wid)
        window.position_in_root()
        server.stats().reset()
        conn.move_window(wid, 77, 88)
        origin = window.position_in_root()
        assert (origin.x, origin.y) == (77, 88)

    def test_steady_state_hit_rate(self, server, conn):
        desk, tree = build_desktop(conn)
        for step in range(50):  # warm
            server.motion(10 + step * 7, 10 + step * 5)
        server.stats().reset()
        for step in range(200):
            server.motion(10 + (step * 13) % 1000, 10 + (step * 7) % 800)
        assert server.stats().cache_hit_rate() >= 0.9
