"""EventPipeline: coalescing semantics, stats instrumentation, and the
client queue contracts (handler snapshot safety, flush order)."""

from collections import deque

import pytest

import repro.xserver.events as ev
from repro.xserver import (
    ClientConnection,
    CoalescingStage,
    EventMask,
    EventPipeline,
    XServer,
)
from repro.xserver.pipeline import APPEND, COALESCE, DROP, PipelineStage


@pytest.fixture
def server():
    return XServer(screens=[(1000, 800, 8)])


@pytest.fixture
def conn(server):
    return ClientConnection(server, "app")


def mapped_window(conn, parent=None, x=0, y=0, w=100, h=100, **kwargs):
    parent = parent if parent is not None else conn.root_window()
    wid = conn.create_window(parent, x, y, w, h, **kwargs)
    conn.map_window(wid)
    conn.events()
    return wid


class TestCoalescingStage:
    """Unit-level pipeline behaviour, independent of the server."""

    def pipeline(self):
        return EventPipeline([CoalescingStage()])

    def test_motion_burst_collapses_to_latest(self):
        pipe, queue = self.pipeline(), deque()
        for i in range(10):
            pipe.deliver(ev.MotionNotify(window=7, x_root=i, y_root=i), queue)
        assert len(queue) == 1
        assert (queue[0].x_root, queue[0].y_root) == (9, 9)

    def test_no_coalescing_across_windows(self):
        pipe, queue = self.pipeline(), deque()
        pipe.deliver(ev.MotionNotify(window=7, x_root=1), queue)
        pipe.deliver(ev.MotionNotify(window=8, x_root=2), queue)
        pipe.deliver(ev.MotionNotify(window=7, x_root=3), queue)
        assert [e.window for e in queue] == [7, 8, 7]

    def test_only_consecutive_runs_compress(self):
        # An intervening non-coalescable event breaks the run; relative
        # order of retained events is preserved.
        pipe, queue = self.pipeline(), deque()
        pipe.deliver(ev.MotionNotify(window=7, x_root=1), queue)
        pipe.deliver(ev.MotionNotify(window=7, x_root=2), queue)
        pipe.deliver(ev.ButtonPress(window=7), queue)
        pipe.deliver(ev.MotionNotify(window=7, x_root=3), queue)
        kinds = [type(e).__name__ for e in queue]
        assert kinds == ["MotionNotify", "ButtonPress", "MotionNotify"]
        assert queue[0].x_root == 2 and queue[2].x_root == 3

    def test_configure_notify_requires_both_windows_equal(self):
        pipe, queue = self.pipeline(), deque()
        pipe.deliver(ev.ConfigureNotify(window=1, configured_window=5), queue)
        pipe.deliver(ev.ConfigureNotify(window=1, configured_window=5, x=9), queue)
        assert len(queue) == 1 and queue[0].x == 9
        pipe.deliver(ev.ConfigureNotify(window=1, configured_window=6), queue)
        assert len(queue) == 2

    def test_expose_coalesces_per_window(self):
        pipe, queue = self.pipeline(), deque()
        pipe.deliver(ev.Expose(window=3, width=10), queue)
        pipe.deliver(ev.Expose(window=3, width=20), queue)
        pipe.deliver(ev.Expose(window=4, width=30), queue)
        assert [(e.window, e.width) for e in queue] == [(3, 20), (4, 30)]

    def test_button_press_never_coalesces(self):
        pipe, queue = self.pipeline(), deque()
        pipe.deliver(ev.ButtonPress(window=7), queue)
        pipe.deliver(ev.ButtonPress(window=7), queue)
        assert len(queue) == 2

    def test_disabled_stage_appends_everything(self):
        pipe, queue = self.pipeline(), deque()
        pipe.stage("coalesce").enabled = False
        pipe.deliver(ev.MotionNotify(window=7, x_root=1), queue)
        pipe.deliver(ev.MotionNotify(window=7, x_root=2), queue)
        assert len(queue) == 2

    def test_deliver_reports_outcome(self):
        pipe, queue = self.pipeline(), deque()
        assert pipe.deliver(ev.MotionNotify(window=7), queue) == APPEND
        assert pipe.deliver(ev.MotionNotify(window=7), queue) == COALESCE

    def test_drop_stage_short_circuits(self):
        class DropAll(PipelineStage):
            name = "dropall"

            def process(self, delivery):
                delivery.outcome = DROP

        pipe, queue = self.pipeline(), deque()
        pipe.add_stage(DropAll(), before="coalesce")
        assert pipe.deliver(ev.MotionNotify(window=7), queue) == DROP
        assert not queue


class TestStageManagement:
    """add_stage placement and naming contracts."""

    def make_stage(self, stage_name):
        class Named(PipelineStage):
            name = stage_name

            def process(self, delivery):
                pass

        return Named()

    def test_add_before_unknown_name_appends(self):
        # Pinned behaviour: an unknown `before` is not an error — the
        # stage lands at the end, where a misplaced instrumentation-ish
        # stage is harmless.
        pipe = EventPipeline([CoalescingStage()])
        pipe.add_stage(self.make_stage("extra"), before="no-such-stage")
        assert [s.name for s in pipe.stages] == ["coalesce", "extra"]

    def test_add_before_existing_name_inserts(self):
        pipe = EventPipeline([CoalescingStage()])
        pipe.add_stage(self.make_stage("first"), before="coalesce")
        assert [s.name for s in pipe.stages] == ["first", "coalesce"]

    def test_duplicate_stage_name_rejected(self):
        pipe = EventPipeline([CoalescingStage()])
        with pytest.raises(ValueError, match="coalesce"):
            pipe.add_stage(self.make_stage("coalesce"))
        # The pipeline is unchanged after the rejection.
        assert [s.name for s in pipe.stages] == ["coalesce"]

    def test_remove_then_re_add_is_allowed(self):
        pipe = EventPipeline([CoalescingStage()])
        removed = pipe.remove_stage("coalesce")
        assert removed is not None
        pipe.add_stage(removed)
        assert pipe.stage("coalesce") is removed

    def test_default_client_pipeline_stage_order(self):
        server = XServer(screens=[(1000, 800, 8)])
        conn = ClientConnection(server, "app")
        names = [s.name for s in conn.pipeline.stages]
        # Backpressure must sit after coalescing (a tail-absorbed event
        # needs no pressure response) and before instrumentation (so
        # sheds are counted as drops).
        assert names == ["faults", "coalesce", "backpressure", "stats"]


class TestServerStats:
    def test_delivered_counts_match_drained_events(self, server, conn):
        wid = mapped_window(conn, event_mask=EventMask.PointerMotion)
        for i in range(5):
            server.motion(10 + i, 10)
        motions = conn.flush_events(ev.MotionNotify)
        stats = server.stats()
        # Coalescing on: the client drains exactly what was counted as
        # delivered; the rest was counted as coalesced.
        assert len(motions) == stats.delivered_count(
            "MotionNotify", client_id=conn.client_id
        )
        assert stats.raw_count("MotionNotify", client_id=conn.client_id) == 5
        assert (
            stats.delivered_count("MotionNotify", client_id=conn.client_id)
            + stats.coalesced_count("MotionNotify", client_id=conn.client_id)
            == 5
        )

    def test_uncoalesced_client_delivers_raw_count(self, server):
        conn = ClientConnection(server, "raw", coalesce=False)
        mapped_window(conn, event_mask=EventMask.PointerMotion)
        server.stats().reset()
        for i in range(5):
            server.motion(20 + i, 20)
        motions = conn.flush_events(ev.MotionNotify)
        assert len(motions) == 5
        assert server.stats().delivered_count(
            "MotionNotify", client_id=conn.client_id
        ) == 5
        assert server.stats().coalesced_count(client_id=conn.client_id) == 0

    def test_request_counters(self, server, conn):
        before = server.stats().requests_of("create_window")
        conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.create_window(conn.root_window(), 0, 0, 10, 10)
        assert server.stats().requests_of("create_window") == before + 2
        assert server.stats().total_requests() >= before + 2

    def test_snapshot_is_plain_data(self, server, conn):
        mapped_window(conn, event_mask=EventMask.PointerMotion)
        server.motion(5, 5)
        snap = server.stats().snapshot()
        assert isinstance(snap, dict)
        assert "requests" in snap and "delivered" in snap


class TestClientQueueContracts:
    def test_flush_events_preserves_relative_order(self, server, conn):
        """flush_events(of_type=...) keeps retained events oldest-first
        in delivery order (regression guard for the drain contract)."""
        wid = mapped_window(
            conn,
            event_mask=EventMask.ButtonPress
            | EventMask.ButtonRelease
            | EventMask.PointerMotion,
        )
        server.motion(10, 10)
        server.button_press(1)
        server.button_release(1)
        server.button_press(2)
        server.button_release(2)
        presses = conn.flush_events(ev.ButtonPress)
        assert [e.button for e in presses] == [1, 2]
        assert [e.serial for e in presses] == sorted(e.serial for e in presses)

    def test_handler_removing_itself_does_not_skip_others(self, server, conn):
        """queue_event iterates a snapshot of event_handlers: a handler
        that unsubscribes itself must not cause later handlers to be
        skipped for the same event."""
        seen = []

        def one_shot(event):
            seen.append(("one_shot", type(event).__name__))
            conn.event_handlers.remove(one_shot)

        def steady(event):
            seen.append(("steady", type(event).__name__))

        mapped_window(conn, event_mask=EventMask.ButtonPress)
        conn.event_handlers.extend([one_shot, steady])
        server.motion(10, 10)
        server.button_press(1)
        server.button_release(1)
        assert ("one_shot", "ButtonPress") in seen
        assert ("steady", "ButtonPress") in seen
        # The one-shot really unsubscribed: a second press only reaches
        # the steady handler.
        count_before = len(seen)
        server.button_press(1)
        server.button_release(1)
        new = seen[count_before:]
        assert ("steady", "ButtonPress") in new
        assert all(name != "one_shot" for name, _ in new)
