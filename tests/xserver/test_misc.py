"""Colors, fonts, cursors, XIDs, rendering, stacking."""

import pytest
from hypothesis import given, strategies as st

from repro.xserver import ClientConnection, XServer
from repro.xserver.colors import luminance, parse_color, to_monochrome
from repro.xserver.cursorfont import cursor_glyph, is_cursor_name
from repro.xserver.errors import BadColor, BadName, BadValue
from repro.xserver.fonts import load_font
from repro.xserver.render import Canvas, render_window
from repro.xserver.window import Window
from repro.xserver.geometry import Rect
from repro.xserver.xid import XIDAllocator, XIDRange
import repro.xserver.events as ev


class TestColors:
    def test_named(self):
        assert parse_color("black") == (0, 0, 0)
        assert parse_color("white") == (255, 255, 255)

    def test_named_with_spaces_and_case(self):
        assert parse_color("Slate Grey") == (112, 128, 144)
        assert parse_color("slategrey") == (112, 128, 144)
        assert parse_color("SlateGrey") == (112, 128, 144)

    def test_hex_rrggbb(self):
        assert parse_color("#ff8000") == (255, 128, 0)

    def test_hex_rgb(self):
        assert parse_color("#f80") == (255, 136, 0)

    def test_hex_16bit(self):
        assert parse_color("#ffff00000000") == (255, 0, 0)

    def test_unknown(self):
        with pytest.raises(BadColor):
            parse_color("not a color")

    def test_bad_hex(self):
        with pytest.raises(BadColor):
            parse_color("#ffff")

    def test_monochrome_mapping(self):
        assert to_monochrome((255, 255, 0)) == (255, 255, 255)
        assert to_monochrome((0, 0, 128)) == (0, 0, 0)

    def test_luminance_ordering(self):
        assert luminance((255, 255, 255)) > luminance((100, 100, 100)) > luminance((0, 0, 0))


class TestFonts:
    def test_builtin(self):
        font = load_font("fixed")
        assert font.text_width("hello") == 5 * font.char_width

    def test_nxn(self):
        font = load_font("12x24")
        assert font.char_width == 12 and font.height == 24

    def test_xlfd_pixel_size(self):
        font = load_font("-adobe-helvetica-bold-r-normal--14-100-100-100-p-82-iso8859-1")
        assert font.height == 14

    def test_xlfd_wildcard(self):
        font = load_font("-*-helvetica-medium-r-*-*-*-120-*-*-*-*-*-*")
        assert font.height > 6

    def test_unknown_font(self):
        with pytest.raises(BadName):
            load_font("definitely-not-a-font")

    def test_extents(self):
        font = load_font("8x13")
        width, height = font.text_extents("ab")
        assert width == 16 and height == 13


class TestCursors:
    def test_known_glyphs(self):
        assert cursor_glyph("left_ptr") == 68
        assert cursor_glyph("question_arrow") == 92
        assert is_cursor_name("fleur")

    def test_unknown_glyph(self):
        with pytest.raises(BadValue):
            cursor_glyph("sparkly_unicorn")


class TestXIDs:
    def test_ranges_disjoint(self):
        alloc = XIDAllocator()
        a = alloc.new_range()
        b = alloc.new_range()
        ids_a = {a.allocate() for _ in range(100)}
        ids_b = {b.allocate() for _ in range(100)}
        assert not ids_a & ids_b

    def test_owns(self):
        alloc = XIDAllocator()
        rng = alloc.new_range()
        xid = rng.allocate()
        assert rng.owns(xid)
        assert not alloc.server_range.owns(xid)

    def test_server_skips_reserved(self):
        alloc = XIDAllocator()
        assert alloc.allocate_server_id() >= 0x100


class TestCanvas:
    def test_text_and_frame(self):
        canvas = Canvas(10, 3)
        canvas.frame(0, 0, 10, 3)
        canvas.text(1, 1, "hi")
        out = canvas.to_string()
        lines = out.split("\n")
        assert lines[0].startswith("+")
        assert "hi" in lines[1]

    def test_put_out_of_bounds_ignored(self):
        canvas = Canvas(2, 2)
        canvas.put(5, 5, "x")  # no exception
        assert "x" not in canvas.to_string()


class TestRenderWindow:
    def test_renders_nested_windows(self):
        server = XServer(screens=[(320, 320, 8)])
        conn = ClientConnection(server)
        outer = conn.create_window(conn.root_window(), 0, 0, 320, 320,
                                   border_width=1)
        inner = conn.create_window(outer, 16, 32, 160, 160, border_width=1)
        conn.map_window(outer)
        conn.map_window(inner)
        conn.set_string_property(inner, "SWM_LABEL", "clock")
        out = render_window(server.window(outer), server.atoms)
        assert "clock" in out
        assert "+" in out

    def test_unmapped_child_not_rendered(self):
        server = XServer(screens=[(320, 320, 8)])
        conn = ClientConnection(server)
        outer = conn.create_window(conn.root_window(), 0, 0, 320, 320)
        inner = conn.create_window(outer, 16, 32, 160, 160)
        conn.map_window(outer)
        conn.set_string_property(inner, "SWM_LABEL", "hidden")
        out = render_window(server.window(outer), server.atoms)
        assert "hidden" not in out

    def test_shaped_window_renders_at_signs(self):
        from repro.xserver.bitmap import Bitmap

        server = XServer(screens=[(320, 320, 8)])
        conn = ClientConnection(server)
        wid = conn.create_window(conn.root_window(), 0, 0, 128, 128)
        conn.map_window(wid)
        server.window(wid).shape = None
        conn.shape_window(wid, Bitmap.disc(128))
        out = render_window(server.window(wid), server.atoms)
        assert "@" in out


class TestStacking:
    @pytest.fixture
    def tree(self):
        server = XServer(screens=[(500, 500, 8)])
        conn = ClientConnection(server)
        root = conn.root_window()
        wids = [conn.create_window(root, 10 * i, 10 * i, 50, 50)
                for i in range(4)]
        for wid in wids:
            conn.map_window(wid)
        return server, conn, wids

    def test_circulate_raise_lowest(self, tree):
        server, conn, wids = tree
        conn.circulate_window(conn.root_window(), ev.RAISE_LOWEST)
        _, _, children = conn.query_tree(conn.root_window())
        assert children[-1] == wids[0]

    def test_circulate_lower_highest(self, tree):
        server, conn, wids = tree
        conn.circulate_window(conn.root_window(), ev.LOWER_HIGHEST)
        _, _, children = conn.query_tree(conn.root_window())
        assert children[0] == wids[-1]

    def test_top_if_raises_occluded(self, tree):
        server, conn, wids = tree
        # wids[0] overlaps wids[1]; TopIf should raise it.
        conn.configure_window(wids[0], stack_mode=ev.TOP_IF)
        _, _, children = conn.query_tree(conn.root_window())
        assert children[-1] == wids[0]

    def test_top_if_noop_when_unobscured(self, tree):
        server, conn, wids = tree
        conn.move_window(wids[0], 400, 400)  # away from everyone
        conn.configure_window(wids[0], stack_mode=ev.TOP_IF)
        _, _, children = conn.query_tree(conn.root_window())
        assert children[0] == wids[0]

    def test_opposite_flips(self, tree):
        server, conn, wids = tree
        conn.configure_window(wids[0], stack_mode=ev.OPPOSITE)
        _, _, children = conn.query_tree(conn.root_window())
        assert children[-1] == wids[0]
        conn.configure_window(wids[0], stack_mode=ev.OPPOSITE)
        _, _, children = conn.query_tree(conn.root_window())
        assert children[0] == wids[0]

    @given(ops=st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=20))
    def test_restack_preserves_set(self, ops):
        server = XServer(screens=[(500, 500, 8)])
        conn = ClientConnection(server)
        root = conn.root_window()
        wids = [conn.create_window(root, 0, 0, 50, 50) for _ in range(4)]
        for index, raise_it in ops:
            if raise_it:
                conn.raise_window(wids[index])
            else:
                conn.lower_window(wids[index])
        _, _, children = conn.query_tree(root)
        assert sorted(children) == sorted(wids)
