"""Save-set semantics on client shutdown (ICCCM §4.1.3.1).

When a window manager dies, every client window it stashed in its
save-set must come back: reparented to the root, mapped if the WM had
it unmapped, and repainted if an unmapped frame had been hiding it.
These pin the close_client() rescue paths.
"""

from repro.xserver import XServer
from repro.xserver.client import ClientConnection
from repro.xserver.event_mask import EventMask


def wm_with_framed_client(server, map_frame=True):
    """An app window reparented into a 'WM' frame + save-set entry."""
    app = ClientConnection(server, "app")
    wm = ClientConnection(server, "wm")
    root = app.root_window(0)
    win = app.create_window(root, 100, 100, 300, 200)
    app.map_window(win)
    frame = wm.create_window(root, 90, 90, 320, 230)
    wm.reparent_window(win, frame, 10, 25)
    wm.add_to_save_set(win)
    if map_frame:
        wm.map_window(frame)
    return app, wm, win, frame


class TestSaveSetRescue:
    def test_window_unmapped_by_wm_is_remapped(self):
        """The WM unmapped the client (mid-iconify, say) and then died:
        the rescue must remap it, not strand an invisible window."""
        server = XServer(screens=[(800, 600, 8)])
        app, wm, win, frame = wm_with_framed_client(server)
        wm.unmap_window(win)
        assert not server.window(win).mapped

        wm.close()

        window = server.window(win)
        assert window.parent is server.screens[0].root
        assert window.mapped
        assert window.viewable
        assert frame not in server.windows or server.windows[frame].destroyed

    def test_window_hidden_by_unmapped_frame_gets_exposed(self):
        """Mapped all along but hidden inside an unmapped frame: the
        rescue makes it viewable, which must repaint it just like a
        fresh map — the client sees Expose."""
        server = XServer(screens=[(800, 600, 8)])
        app, wm, win, frame = wm_with_framed_client(server, map_frame=False)
        app.select_input(win, EventMask.Exposure | EventMask.StructureNotify)
        window = server.window(win)
        assert window.mapped and not window.viewable

        app._queue.clear()  # drain setup noise; only the rescue remains
        wm.close()

        window = server.window(win)
        assert window.parent is server.screens[0].root
        assert window.viewable
        names = [type(e).__name__ for e in list(app._queue)]
        assert "Expose" in names

    def test_rescued_window_keeps_root_position(self):
        server = XServer(screens=[(800, 600, 8)])
        app, wm, win, frame = wm_with_framed_client(server)
        before = server.window(win).position_in_root()

        wm.close()

        window = server.window(win)
        after = window.position_in_root()
        assert (after.x, after.y) == (before.x, before.y)

    def test_non_save_set_windows_are_destroyed(self):
        server = XServer(screens=[(800, 600, 8)])
        app, wm, win, frame = wm_with_framed_client(server)
        extra = wm.create_window(wm.root_window(0), 0, 0, 50, 50)
        wm.map_window(extra)

        wm.close()

        assert extra not in server.windows or server.windows[extra].destroyed
        assert not server.window(win).destroyed

    def test_pointer_window_refreshed_after_teardown(self):
        """The pointer was over a WM window; after the WM dies the
        pointer must resolve to a live window, not a corpse."""
        server = XServer(screens=[(800, 600, 8)])
        app, wm, win, frame = wm_with_framed_client(server)
        server.motion(95, 95)  # over the frame border area
        assert server.pointer.window is not None

        wm.close()

        current = server.pointer.window
        assert current is not None
        assert not current.destroyed
