"""Per-client quotas, backpressure, and the grab watchdog.

These are the containment unit tests: each exercises one layer of the
adversarial-client defences with a deliberately tight
:class:`QuotaLimits`, independent of the fuzz suite (which drives all
layers at once under a seeded hostile workload).
"""

import pytest

import repro.xserver.events as ev
from repro.testing import assert_quotas_enforced, quota_problems
from repro.xserver import (
    BadValue,
    ClientConnection,
    ConnectionClosed,
    EventMask,
    QueueEmpty,
    QuotaExceeded,
    QuotaLimits,
    XError,
    XServer,
)
from repro.xserver.quotas import property_bytes


def make_server(**limits) -> XServer:
    return XServer(
        screens=[(1000, 800, 8)], quota_limits=QuotaLimits(**limits)
    )


@pytest.fixture
def server():
    return XServer(screens=[(1000, 800, 8)])


@pytest.fixture
def conn(server):
    return ClientConnection(server, "app")


class TestWindowQuota:
    def test_denied_past_limit_offender_only(self):
        server = make_server(max_windows=3)
        evil = ClientConnection(server, "evil")
        bystander = ClientConnection(server, "bystander")
        root = evil.root_window()
        wids = [evil.create_window(root, 0, 0, 10, 10) for _ in range(3)]
        with pytest.raises(QuotaExceeded):
            evil.create_window(root, 0, 0, 10, 10)
        # The quota is per client: the bystander is unaffected.
        bystander.create_window(root, 0, 0, 10, 10)
        assert server.stats().quota_denied_count(
            evil.client_id, "windows"
        ) == 1
        assert server.stats().quota_denied_count(bystander.client_id) == 0
        # Destroying a window refunds budget.
        evil.destroy_window(wids[0])
        evil.create_window(root, 0, 0, 10, 10)
        assert_quotas_enforced(server)

    def test_quota_exceeded_is_badalloc(self):
        server = make_server(max_windows=1)
        conn = ClientConnection(server, "app")
        conn.create_window(conn.root_window(), 0, 0, 10, 10)
        # Existing degradation paths catch XError; QuotaExceeded must
        # flow through them unchanged.
        with pytest.raises(XError) as exc:
            conn.create_window(conn.root_window(), 0, 0, 10, 10)
        assert exc.value.name == "QuotaExceeded"

    def test_destroying_parent_refunds_subtree(self):
        server = make_server(max_windows=4)
        conn = ClientConnection(server, "app")
        top = conn.create_window(conn.root_window(), 0, 0, 100, 100)
        for _ in range(3):
            conn.create_window(top, 0, 0, 10, 10)
        with pytest.raises(QuotaExceeded):
            conn.create_window(top, 0, 0, 10, 10)
        conn.destroy_window(top)  # destroys the children too
        assert server.quotas.windows.get(conn.client_id, 0) == 0
        assert_quotas_enforced(server)

    def test_soft_warning_band_counts_without_denying(self):
        server = make_server(max_windows=10, soft_fraction=0.5)
        conn = ClientConnection(server, "app")
        for _ in range(8):
            conn.create_window(conn.root_window(), 0, 0, 10, 10)
        assert server.stats().quota_warning_count(
            conn.client_id, "windows"
        ) == 3  # windows 6..8 are past the 50% band
        assert server.stats().quota_denied_count(conn.client_id) == 0


class TestPropertyQuota:
    def test_denied_before_mutation(self):
        server = make_server(max_property_bytes=100)
        conn = ClientConnection(server, "app")
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.set_string_property(wid, "A", "x" * 60)
        with pytest.raises(QuotaExceeded):
            conn.set_string_property(wid, "B", "y" * 60)
        # The denied change really mutated nothing.
        assert conn.get_property(wid, "B") is None
        assert_quotas_enforced(server)

    def test_replace_and_delete_refund(self):
        server = make_server(max_property_bytes=100)
        conn = ClientConnection(server, "app")
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.set_string_property(wid, "A", "x" * 90)
        conn.set_string_property(wid, "A", "x" * 10)  # replace shrinks
        conn.set_string_property(wid, "B", "y" * 80)  # fits after refund
        conn.delete_property(wid, "B")
        assert server.quotas.prop_bytes.get(conn.client_id, 0) == 10
        assert_quotas_enforced(server)

    def test_append_accumulates(self):
        from repro.xserver.properties import PROP_MODE_APPEND

        server = make_server(max_property_bytes=100)
        conn = ClientConnection(server, "app")
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.change_property(wid, "A", "STRING", 8, "x" * 60)
        with pytest.raises(QuotaExceeded):
            conn.change_property(
                wid, "A", "STRING", 8, "y" * 60, PROP_MODE_APPEND
            )
        assert_quotas_enforced(server)

    def test_charge_follows_acting_client(self):
        # B overwriting a property on A's window adopts the charge: A's
        # budget is refunded, B's is charged.
        server = make_server(max_property_bytes=100)
        a = ClientConnection(server, "a")
        b = ClientConnection(server, "b")
        wid = a.create_window(a.root_window(), 0, 0, 10, 10)
        a.set_string_property(wid, "A", "x" * 40)
        b.set_string_property(wid, "A", "y" * 70)
        assert server.quotas.prop_bytes.get(a.client_id, 0) == 0
        assert server.quotas.prop_bytes.get(b.client_id, 0) == 70
        assert_quotas_enforced(server)

    def test_rejected_change_charges_nothing(self):
        server = make_server(max_property_bytes=100)
        conn = ClientConnection(server, "app")
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        with pytest.raises(BadValue):
            conn.change_property(wid, "A", "STRING", 12, "x")  # bad format
        assert server.quotas.prop_bytes.get(conn.client_id, 0) == 0
        assert_quotas_enforced(server)

    def test_property_bytes_wire_sizes(self):
        assert property_bytes(8, "abcd") == 4
        assert property_bytes(16, [1, 2, 3]) == 6
        assert property_bytes(32, [1, 2, 3]) == 12


class TestGrabAndRateQuota:
    def test_grab_quota_denies_offender(self):
        server = make_server(max_pending_grabs=2)
        conn = ClientConnection(server, "app")
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.grab_button(wid, 1, 0, EventMask.ButtonPress)
        conn.grab_key(wid, "a", 0)
        with pytest.raises(QuotaExceeded):
            conn.grab_button(wid, 2, 0, EventMask.ButtonPress)
        # Releasing one grab restores headroom (lazy recount, no
        # refund bookkeeping to drift).
        conn.ungrab_button(wid, 1, 0)
        conn.grab_button(wid, 2, 0, EventMask.ButtonPress)
        assert_quotas_enforced(server)

    def test_request_rate_window_resets_each_tick(self):
        server = make_server(max_requests_per_tick=5)
        conn = ClientConnection(server, "app")
        root = conn.root_window()
        for _ in range(5):
            conn.window_exists(root)  # queries carry no client_id: free
        wids = [conn.create_window(root, 0, 0, 10, 10) for _ in range(5)]
        with pytest.raises(QuotaExceeded):
            conn.map_window(wids[0])
        server.housekeeping_tick()  # new rate window
        conn.map_window(wids[0])
        assert server.stats().quota_denied_count(
            conn.client_id, "requests"
        ) == 1


def fill_queue(victim, wid, count):
    """Append *count* structural (never-coalescing) events to the
    victim's queue via SendEvent."""
    for i in range(count):
        victim.send_event(
            wid,
            ev.ClientMessage(window=wid, message_type=1, data=(i,)),
            EventMask.Exposure,
        )


class TestBackpressure:
    def limits(self):
        return dict(high_water=4, low_water=1, hard_cap=8, coalesce_scan=8)

    def victim(self, server):
        conn = ClientConnection(server, "victim", coalesce=False)
        wid = conn.create_window(conn.root_window(), 0, 0, 100, 100)
        conn.select_input(wid, EventMask.Exposure)
        return conn, wid

    def test_force_coalesce_past_high_water(self):
        server = make_server(**self.limits())
        conn, wid = self.victim(server)
        conn.set_coalescing(True)
        conn.send_event(
            wid, ev.Expose(window=wid, width=1), EventMask.Exposure
        )
        fill_queue(conn, wid, 4)  # queue: Expose + 4 ClientMessages
        assert conn.pending() == 5
        conn.send_event(
            wid, ev.Expose(window=wid, width=99), EventMask.Exposure
        )
        # Past high water the new Expose coalesced into the old one in
        # place — across the intervening ClientMessages.
        assert conn.pending() == 5
        events = conn.events()
        assert isinstance(events[0], ev.Expose) and events[0].width == 99
        snap = server.stats().snapshot()
        assert snap["quotas"]["force_coalesced"] == {"Expose": 1}

    def test_sheddable_dropped_structural_kept(self):
        server = make_server(**self.limits())
        conn, wid = self.victim(server)
        fill_queue(conn, wid, 5)
        conn.send_event(
            wid, ev.MotionNotify(window=wid, x_root=1), EventMask.Exposure
        )
        assert conn.pending() == 5  # motion shed
        fill_queue(conn, wid, 1)
        assert conn.pending() == 6  # structural still appends
        assert server.stats().shed_count(
            "MotionNotify", client_id=conn.client_id
        ) == 1
        # Sheds are a subset of drops (instrumentation sees them too).
        assert server.stats().dropped_count(
            client_id=conn.client_id
        ) >= 1

    def test_hard_cap_throttles_until_drained(self):
        server = make_server(**self.limits())
        conn, wid = self.victim(server)
        fill_queue(conn, wid, 8)
        assert conn.pending() == 8
        fill_queue(conn, wid, 1)  # at the cap: throttled + shed
        assert conn.pending() == 8
        assert server.quotas.is_throttled(conn.client_id)
        assert server.stats().throttle_count(conn.client_id) == 1
        fill_queue(conn, wid, 3)  # everything shed while throttled
        assert conn.pending() == 8
        # Draining to the low-water mark lifts the throttle.
        while conn.pending() > 1:
            conn.next_event()
        assert not server.quotas.is_throttled(conn.client_id)
        fill_queue(conn, wid, 1)
        assert conn.pending() == 2
        snap = server.stats().snapshot()
        assert snap["quotas"]["shed_reasons"]["capped"] == 1
        assert snap["quotas"]["shed_reasons"]["throttled"] == 3
        assert snap["quotas"]["unthrottles"] == {conn.client_id: 1}
        assert_quotas_enforced(server)

    def test_disabled_quotas_disable_backpressure(self):
        server = make_server(**self.limits())
        server.quotas.enabled = False
        conn, wid = self.victim(server)
        fill_queue(conn, wid, 20)
        assert conn.pending() == 20
        assert server.stats().shed_count() == 0


class TestGrabWatchdog:
    def test_non_draining_holder_loses_grab(self):
        server = make_server(grab_tick_budget=3)
        holder = ClientConnection(server, "holder")
        wid = holder.create_window(holder.root_window(), 0, 0, 100, 100)
        holder.map_window(wid)
        holder.grab_pointer(wid, EventMask.PointerMotion)
        assert server.active_grab is not None
        for _ in range(3):
            server.housekeeping_tick()
        assert server.active_grab is not None  # within budget
        server.housekeeping_tick()
        assert server.active_grab is None
        assert server.stats().grabs_broken_count("not-draining") == 1

    def test_draining_holder_keeps_grab(self):
        server = make_server(grab_tick_budget=3)
        holder = ClientConnection(server, "holder")
        wid = holder.create_window(holder.root_window(), 0, 0, 100, 100)
        holder.map_window(wid)
        holder.select_input(wid, EventMask.PointerMotion)
        holder.grab_pointer(wid, EventMask.PointerMotion)
        for i in range(10):
            server.motion(10 + i, 10)  # grab routes motion to holder
            holder.events()  # ...which keeps draining
            server.housekeeping_tick()
        assert server.active_grab is not None
        assert server.stats().grabs_broken_count() == 0

    def test_dead_holder_grab_broken(self):
        server = make_server(grab_tick_budget=3)
        holder = ClientConnection(server, "holder")
        wid = holder.create_window(holder.root_window(), 0, 0, 100, 100)
        holder.map_window(wid)
        holder.grab_pointer(wid, EventMask.PointerMotion)
        # Simulate a holder that vanished without any teardown path
        # running (close/abandon clear the grab themselves; the
        # watchdog is the backstop when neither ran).
        del server.clients[holder.client_id]
        server.housekeeping_tick()
        assert server.active_grab is None
        assert server.stats().grabs_broken_count("dead-holder") == 1

    def test_throttled_client_passive_grabs_pruned(self):
        server = make_server(
            high_water=2, low_water=1, hard_cap=4, grab_tick_budget=2
        )
        jammed = ClientConnection(server, "jammed")
        wid = jammed.create_window(jammed.root_window(), 0, 0, 100, 100)
        jammed.select_input(wid, EventMask.Exposure)
        jammed.grab_button(wid, 1, 0, EventMask.ButtonPress)
        fill_queue(jammed, wid, 5)  # hard cap: throttled
        assert server.quotas.is_throttled(jammed.client_id)
        assert server.grabs.count_for_client(jammed.client_id) == 1
        for _ in range(3):
            server.housekeeping_tick()
        assert server.grabs.count_for_client(jammed.client_id) == 0
        assert server.stats().grabs_broken_count("passive-throttled") == 1


class TestConnectionContracts:
    def test_next_event_raises_queue_empty(self, conn):
        with pytest.raises(QueueEmpty):
            conn.next_event()
        # Backwards compatible with pre-existing IndexError handlers.
        with pytest.raises(IndexError):
            conn.next_event()

    def test_dead_connection_fails_fast(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        server.close_client(conn.client_id)
        with pytest.raises(ConnectionClosed):
            conn.create_window(conn.root_window(), 0, 0, 10, 10)
        with pytest.raises(ConnectionClosed):
            conn.map_window(wid)
        with pytest.raises(ConnectionClosed):
            conn.change_property(wid, "A", "STRING", 8, "x")
        # Local reads stay usable: teardown code inspects corpses.
        assert conn.events() == []
        assert conn.pending() == 0

    def test_stale_client_id_rejected_at_server(self, server, conn):
        """The server-side backstop: requests under an unregistered
        client id are refused even when they bypass ClientConnection."""
        dead_id = conn.client_id
        server.close_client(dead_id)
        with pytest.raises(ConnectionClosed):
            server.create_window(
                dead_id, 99999, server.root_of_screen(0).id, 0, 0, 10, 10
            )

    def test_flush_discards_count_as_dropped(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 100, 100)
        conn.select_input(wid, EventMask.Exposure)
        conn.map_window(wid)
        conn.events()  # discard the Expose the map generated
        before = server.stats().dropped_count(client_id=conn.client_id)
        fill_queue(conn, wid, 3)
        kept = conn.flush_events(ev.Expose)
        assert kept == []
        after = server.stats().dropped_count(client_id=conn.client_id)
        assert after - before >= 3


class TestQuotaOracle:
    def test_healthy_server_has_no_problems(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 100, 100)
        conn.map_window(wid)
        conn.set_string_property(wid, "WM_NAME", "hello")
        assert quota_problems(server) == []

    def test_oracle_detects_ledger_drift(self, server, conn):
        conn.create_window(conn.root_window(), 0, 0, 100, 100)
        server.quotas.windows[conn.client_id] += 5  # corrupt the ledger
        problems = quota_problems(server)
        assert any("window ledger" in p for p in problems)
        with pytest.raises(AssertionError):
            assert_quotas_enforced(server)
