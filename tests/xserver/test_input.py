"""Pointer/keyboard dispatch, propagation, crossings, and grabs."""

import pytest

import repro.xserver.events as ev
from repro.xserver import ClientConnection, EventMask, NONE, XServer
from repro.xserver.input import ANY_MODIFIER


@pytest.fixture
def server():
    return XServer(screens=[(1000, 800, 8)])


@pytest.fixture
def conn(server):
    return ClientConnection(server, "app")


def mapped_window(conn, parent=None, x=0, y=0, w=100, h=100, **kwargs):
    parent = parent if parent is not None else conn.root_window()
    wid = conn.create_window(parent, x, y, w, h, **kwargs)
    conn.map_window(wid)
    conn.events()
    return wid


class TestPointerDispatch:
    def test_button_press_to_selecting_window(self, server, conn):
        wid = mapped_window(conn, x=10, y=10, event_mask=EventMask.ButtonPress)
        server.motion(50, 50)
        conn.events()
        server.button_press(1)
        presses = conn.flush_events(ev.ButtonPress)
        assert len(presses) == 1
        press = presses[0]
        assert press.window == wid
        assert (press.x, press.y) == (40, 40)
        assert (press.x_root, press.y_root) == (50, 50)
        assert press.button == 1
        server.button_release(1)

    def test_event_propagates_to_ancestor(self, server, conn):
        outer = mapped_window(conn, w=300, h=300, event_mask=EventMask.ButtonPress)
        inner = mapped_window(conn, parent=outer, x=10, y=10, w=50, h=50)
        server.motion(20, 20)
        conn.events()
        server.button_press(1)
        presses = conn.flush_events(ev.ButtonPress)
        assert presses[0].window == outer
        assert presses[0].subwindow == inner
        server.button_release(1)

    def test_do_not_propagate_blocks(self, server, conn):
        outer = mapped_window(conn, w=300, h=300, event_mask=EventMask.ButtonPress)
        inner = mapped_window(conn, parent=outer, x=10, y=10, w=50, h=50)
        conn.change_window_attributes(
            inner, do_not_propagate_mask=EventMask.ButtonPress
        )
        server.motion(20, 20)
        conn.events()
        server.button_press(1)
        assert not conn.flush_events(ev.ButtonPress)
        server.button_release(1)

    def test_release_reports_button_in_state(self, server, conn):
        wid = mapped_window(conn, event_mask=EventMask.ButtonRelease)
        server.motion(50, 50)
        server.button_press(2)
        server.button_release(2)
        releases = conn.flush_events(ev.ButtonRelease)
        assert releases and releases[0].state & ev.BUTTON2_MASK

    def test_motion_events_coalesce_by_default(self, server, conn):
        """Motion compression: an undrained run of MotionNotify on one
        window collapses to the latest event (X11 semantics)."""
        wid = mapped_window(conn, event_mask=EventMask.PointerMotion)
        server.motion(10, 10)
        server.motion(20, 20)
        motions = conn.flush_events(ev.MotionNotify)
        assert len(motions) == 1
        assert (motions[0].x_root, motions[0].y_root) == (20, 20)

    def test_motion_events_uncoalesced_on_opt_out(self, server, conn):
        conn.set_coalescing(False)
        wid = mapped_window(conn, event_mask=EventMask.PointerMotion)
        server.motion(10, 10)
        server.motion(20, 20)
        motions = conn.flush_events(ev.MotionNotify)
        assert len(motions) == 2

    def test_pointer_clamped_to_screen(self, server, conn):
        server.motion(5000, 5000)
        assert server.pointer.x == 999 and server.pointer.y == 799


class TestCrossings:
    def test_enter_leave_between_siblings(self, server, conn):
        a = mapped_window(conn, x=0, y=0, w=100, h=100,
                          event_mask=EventMask.EnterWindow | EventMask.LeaveWindow)
        b = mapped_window(conn, x=200, y=0, w=100, h=100,
                          event_mask=EventMask.EnterWindow | EventMask.LeaveWindow)
        server.motion(50, 50)
        conn.events()
        server.motion(250, 50)
        kinds = [(e.type_name, e.window) for e in conn.events()
                 if isinstance(e, (ev.EnterNotify, ev.LeaveNotify))]
        assert ("LeaveNotify", a) in kinds
        assert ("EnterNotify", b) in kinds

    def test_enter_detail_inferior(self, server, conn):
        outer = mapped_window(conn, w=300, h=300,
                              event_mask=EventMask.LeaveWindow)
        inner = mapped_window(conn, parent=outer, x=100, y=100, w=50, h=50,
                              event_mask=EventMask.EnterWindow)
        server.motion(10, 10)
        conn.events()
        server.motion(120, 120)
        enters = conn.flush_events(ev.EnterNotify)
        assert enters and enters[0].detail == ev.NOTIFY_ANCESTOR
        leaves = [e for e in conn._queue if isinstance(e, ev.LeaveNotify)]

    def test_unmap_under_pointer_triggers_crossing(self, server, conn):
        top = mapped_window(conn, x=0, y=0, w=100, h=100)
        server.motion(50, 50)
        under = conn.root_window()
        conn.select_input(under, EventMask.EnterWindow)
        conn.events()
        conn.unmap_window(top)
        enters = conn.flush_events(ev.EnterNotify)
        assert enters and enters[0].window == under


class TestKeyboard:
    def test_key_to_pointer_window_with_pointer_root_focus(self, server, conn):
        wid = mapped_window(conn, event_mask=EventMask.KeyPress)
        server.motion(50, 50)
        server.key_press("Up")
        presses = conn.flush_events(ev.KeyPress)
        assert presses and presses[0].keysym == "Up"
        server.key_release("Up")

    def test_key_to_explicit_focus(self, server, conn):
        focused = mapped_window(conn, x=0, y=0, w=50, h=50,
                                event_mask=EventMask.KeyPress)
        other = mapped_window(conn, x=500, y=500, w=50, h=50)
        conn.set_input_focus(focused)
        server.motion(520, 520)  # pointer elsewhere
        conn.events()
        server.key_press("a")
        presses = conn.flush_events(ev.KeyPress)
        assert presses and presses[0].window == focused
        server.key_release("a")

    def test_focus_none_swallows_keys(self, server, conn):
        wid = mapped_window(conn, event_mask=EventMask.KeyPress)
        conn.set_input_focus(NONE)
        server.motion(50, 50)
        conn.events()
        server.key_press("a")
        assert not conn.flush_events(ev.KeyPress)
        server.key_release("a")

    def test_modifier_state(self, server, conn):
        wid = mapped_window(conn, event_mask=EventMask.KeyPress)
        server.motion(50, 50)
        server.key_press("Shift_L")
        conn.events()
        server.key_press("a")
        presses = conn.flush_events(ev.KeyPress)
        assert presses and presses[0].state & ev.SHIFT_MASK
        server.key_release("a")
        server.key_release("Shift_L")

    def test_focus_events(self, server, conn):
        a = mapped_window(conn, event_mask=EventMask.FocusChange)
        b = mapped_window(conn, x=200, y=0, event_mask=EventMask.FocusChange)
        conn.set_input_focus(a)
        conn.set_input_focus(b)
        kinds = [(e.type_name, e.window) for e in conn.events()
                 if isinstance(e, (ev.FocusIn, ev.FocusOut))]
        assert ("FocusIn", a) in kinds
        assert ("FocusOut", a) in kinds
        assert ("FocusIn", b) in kinds


class TestGrabs:
    def test_passive_button_grab_activates(self, server, conn):
        wm = ClientConnection(server, "wm")
        target = mapped_window(conn, x=0, y=0, w=200, h=200)
        wm.grab_button(
            conn.root_window(), 1, ANY_MODIFIER,
            EventMask.ButtonPress | EventMask.ButtonRelease | EventMask.PointerMotion,
        )
        server.motion(50, 50)
        server.button_press(1)
        presses = wm.flush_events(ev.ButtonPress)
        assert presses and presses[0].window == conn.root_window()
        # While the grab is active, motion goes to the grab client.
        server.motion(60, 60)
        assert wm.flush_events(ev.MotionNotify)
        server.button_release(1)
        assert wm.flush_events(ev.ButtonRelease)
        # Grab ended: further motion no longer goes to wm.
        server.motion(70, 70)
        assert not wm.flush_events(ev.MotionNotify)

    def test_modifier_specific_grab(self, server, conn):
        wm = ClientConnection(server, "wm")
        wm.grab_button(conn.root_window(), 1, ev.MOD1_MASK,
                       EventMask.ButtonPress)
        server.motion(50, 50)
        server.button_press(1)  # no modifier -> no grab
        assert not wm.flush_events(ev.ButtonPress)
        server.button_release(1)
        server.key_press("Alt_L")
        server.button_press(1)
        assert wm.flush_events(ev.ButtonPress)
        server.button_release(1)
        server.key_release("Alt_L")

    def test_active_pointer_grab(self, server, conn):
        wm = ClientConnection(server, "wm")
        grab_win = mapped_window(conn, x=0, y=0, w=10, h=10)
        status = wm.grab_pointer(grab_win, EventMask.ButtonPress)
        assert status == 0
        server.motion(500, 500)
        server.button_press(3)
        presses = wm.flush_events(ev.ButtonPress)
        assert presses and presses[0].window == grab_win
        server.button_release(3)
        wm.ungrab_pointer()
        server.button_press(3)
        assert not wm.flush_events(ev.ButtonPress)
        server.button_release(3)

    def test_second_grab_fails(self, server, conn):
        wm = ClientConnection(server, "wm")
        other = ClientConnection(server, "other")
        wid = mapped_window(conn)
        assert wm.grab_pointer(wid, EventMask.ButtonPress) == 0
        assert other.grab_pointer(wid, EventMask.ButtonPress) == 1
        wm.ungrab_pointer()

    def test_ungrab_button(self, server, conn):
        wm = ClientConnection(server, "wm")
        wm.grab_button(conn.root_window(), 1, ANY_MODIFIER, EventMask.ButtonPress)
        wm.ungrab_button(conn.root_window(), 1, ANY_MODIFIER)
        server.motion(50, 50)
        server.button_press(1)
        assert not wm.flush_events(ev.ButtonPress)
        server.button_release(1)

    def test_key_grab(self, server, conn):
        wm = ClientConnection(server, "wm")
        wm.grab_key(conn.root_window(), "F1", ANY_MODIFIER)
        server.key_press("F1")
        presses = wm.flush_events(ev.KeyPress)
        assert presses and presses[0].keysym == "F1"
        server.key_release("F1")


class TestWarpPointer:
    def test_warp_to_window(self, server, conn):
        wid = mapped_window(conn, x=300, y=300, w=100, h=100)
        conn.warp_pointer(wid, 10, 10)
        assert (server.pointer.x, server.pointer.y) == (310, 310)

    def test_relative_warp(self, server, conn):
        server.motion(100, 100)
        conn.warp_pointer(NONE, -50, 25)
        assert (server.pointer.x, server.pointer.y) == (50, 125)
