"""Geometry primitives and X geometry-string parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.xserver.geometry import (
    CENTER,
    Geometry,
    Point,
    Rect,
    Size,
    WIDTH_VALUE,
    X_NEGATIVE,
    X_VALUE,
    Y_VALUE,
    parse_geometry,
    parse_panel_position,
)


class TestParseGeometry:
    def test_full_spec(self):
        geo = parse_geometry("120x120+1010+359")
        assert (geo.width, geo.height) == (120, 120)
        assert (geo.x, geo.y) == (1010, 359)
        assert not geo.x_negative and not geo.y_negative

    def test_size_only(self):
        geo = parse_geometry("80x24")
        assert (geo.width, geo.height) == (80, 24)
        assert geo.x is None and geo.y is None

    def test_position_only(self):
        geo = parse_geometry("+5-7")
        assert geo.width is None
        assert (geo.x, geo.y) == (5, 7)
        assert not geo.x_negative and geo.y_negative

    def test_leading_equals(self):
        geo = parse_geometry("=100x50+1+2")
        assert geo.width == 100

    def test_negative_zero_is_distinct(self):
        neg = parse_geometry("-0+0")
        pos = parse_geometry("+0+0")
        assert neg.x_negative and not pos.x_negative
        assert neg.x == pos.x == 0

    def test_flags(self):
        geo = parse_geometry("10x10-3+4")
        assert geo.flags & WIDTH_VALUE
        assert geo.flags & X_VALUE
        assert geo.flags & Y_VALUE
        assert geo.flags & X_NEGATIVE

    def test_empty_spec(self):
        geo = parse_geometry("")
        assert geo.flags == 0

    @pytest.mark.parametrize("bad", ["x", "10x", "10x10+5", "++", "12x12+a+b"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_geometry(bad)

    def test_resolve_negative_offsets(self):
        geo = parse_geometry("100x50-10-20")
        pos = geo.resolve(Size(1000, 800), Size(100, 50))
        assert pos == Point(1000 - 100 - 10, 800 - 50 - 20)

    def test_resolve_positive(self):
        geo = parse_geometry("+30+40")
        assert geo.resolve(Size(1000, 800)) == Point(30, 40)

    @given(
        w=st.integers(1, 30000),
        h=st.integers(1, 30000),
        x=st.integers(0, 30000),
        y=st.integers(0, 30000),
        xneg=st.booleans(),
        yneg=st.booleans(),
    )
    def test_roundtrip(self, w, h, x, y, xneg, yneg):
        geo = Geometry(w, h, x, y, xneg, yneg)
        assert parse_geometry(str(geo)) == geo


class TestPanelPosition:
    def test_simple(self):
        assert parse_panel_position("+0+1") == (0, 1, False, False)

    def test_centered_column(self):
        col, row, cneg, rneg = parse_panel_position("+C+0")
        assert col is CENTER and row == 0

    def test_right_aligned(self):
        col, row, cneg, rneg = parse_panel_position("-0+0")
        assert col == 0 and cneg and not rneg

    def test_lowercase_center(self):
        col, _, _, _ = parse_panel_position("+c+0")
        assert col is CENTER

    @pytest.mark.parametrize("bad", ["", "+1", "1+1", "-C+0", "+x+0"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_panel_position(bad)


class TestRect:
    def test_contains(self):
        rect = Rect(10, 10, 5, 5)
        assert rect.contains(10, 10)
        assert rect.contains(14, 14)
        assert not rect.contains(15, 15)

    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 10, 10)
        assert a.intersection(b) == Rect(5, 5, 5, 5)

    def test_disjoint_intersection(self):
        assert Rect(0, 0, 5, 5).intersection(Rect(10, 10, 5, 5)) is None

    def test_union(self):
        assert Rect(0, 0, 5, 5).union(Rect(10, 10, 5, 5)) == Rect(0, 0, 15, 15)

    def test_union_with_empty(self):
        assert Rect(0, 0, 0, 0).union(Rect(3, 3, 2, 2)) == Rect(3, 3, 2, 2)

    def test_translated(self):
        assert Rect(1, 2, 3, 4).translated(10, 20) == Rect(11, 22, 3, 4)

    def test_clamped_within(self):
        outer = Rect(0, 0, 100, 100)
        assert Rect(-5, -5, 10, 10).clamped_within(outer).origin == Point(0, 0)
        assert Rect(95, 95, 10, 10).clamped_within(outer).origin == Point(90, 90)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 5, 5))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(8, 8, 5, 5))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Size(-1, 5)

    @given(
        ax=st.integers(-100, 100), ay=st.integers(-100, 100),
        aw=st.integers(0, 50), ah=st.integers(0, 50),
        bx=st.integers(-100, 100), by=st.integers(-100, 100),
        bw=st.integers(0, 50), bh=st.integers(0, 50),
    )
    def test_intersection_symmetric_and_contained(self, ax, ay, aw, ah, bx, by, bw, bh):
        a = Rect(ax, ay, aw, ah)
        b = Rect(bx, by, bw, bh)
        ab = a.intersection(b)
        ba = b.intersection(a)
        assert ab == ba
        if ab is not None:
            assert a.contains_rect(ab) and b.contains_rect(ab)
            assert a.union(b).contains_rect(ab)
