"""Batch executor semantics: coalescing, split rules, determinism.

The contract under test (see ``repro.xserver.batch``): every op in a
batch runs through its real entry point — ticks, fault draws, quota
charges and stats are per logical request — while notification
synthesis coalesces per window (configure) / per window+atom
(property) and flushes at batch end, at any fault boundary, and at any
per-op X error (quota denials included).
"""

import pytest

import repro.xserver.events as ev
from repro.xserver import (
    ClientConnection,
    EventMask,
    XServer,
)
from repro.xserver.errors import XError
from repro.xserver.faults import ConnectionClosed, FaultPlan
from repro.xserver.quotas import QuotaLimits


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def conn(server):
    return ClientConnection(server, "app")


def make_window(conn, x=10, y=10, w=100, h=80, select=True):
    wid = conn.create_window(conn.root_window(), x, y, w, h)
    if select:
        conn.select_input(
            wid,
            EventMask.StructureNotify
            | EventMask.Exposure
            | EventMask.PropertyChange,
        )
    conn.map_window(wid)
    conn.events()
    return wid


def events_of(conn, type_name):
    return [e for e in conn.events() if type(e).__name__ == type_name]


class TestBatchCoalescing:
    def test_last_write_wins_configure(self, server, conn):
        wid = make_window(conn)
        with conn.batch() as results:
            for step in range(8):
                conn.move_window(wid, step, step)
        assert len(results) == 8
        assert all(r["ok"] for r in results)
        notifies = events_of(conn, "ConfigureNotify")
        assert len(notifies) == 1
        assert (notifies[0].x, notifies[0].y) == (7, 7)
        assert server.stats().batched_count() == 8
        assert server.stats().batch_coalesced_count() == 7

    def test_configure_runs_coalesce_per_window(self, server, conn):
        wids = [make_window(conn, x=i * 30) for i in range(3)]
        with conn.batch():
            for _ in range(4):
                for wid in wids:
                    conn.move_window(wid, 5, 5)
        notifies = events_of(conn, "ConfigureNotify")
        assert len(notifies) == 3
        assert {n.window for n in notifies} == set(wids)

    def test_stacking_ops_fuse_into_final_notify(self, server, conn):
        below = make_window(conn, x=0)
        above = make_window(conn, x=10)
        with conn.batch():
            conn.raise_window(below)
            conn.lower_window(below)
            conn.raise_window(below)
        notifies = [
            n for n in events_of(conn, "ConfigureNotify")
            if n.window == below
        ]
        assert len(notifies) == 1
        # Final state: raised above its sibling.
        assert notifies[0].above_sibling == above

    def test_property_overwrites_squash(self, server, conn):
        wid = make_window(conn)
        atom = conn.intern_atom("SWM_TEST")
        string = conn.intern_atom("STRING")
        with conn.batch():
            for i in range(5):
                conn.change_property(wid, atom, string, 8, f"v{i}")
        notifies = events_of(conn, "PropertyNotify")
        assert len(notifies) == 1
        assert notifies[0].state == ev.PROPERTY_NEW_VALUE
        prop = conn.get_property(wid, atom)
        assert prop.as_string() == "v4"

    def test_change_then_delete_reports_delete(self, server, conn):
        wid = make_window(conn)
        atom = conn.intern_atom("SWM_TEST")
        string = conn.intern_atom("STRING")
        with conn.batch():
            conn.change_property(wid, atom, string, 8, "value")
            conn.delete_property(wid, atom)
        notifies = events_of(conn, "PropertyNotify")
        assert len(notifies) == 1
        assert notifies[0].state == ev.PROPERTY_DELETE

    def test_net_grow_exposes_once_net_shrink_not_at_all(self, server, conn):
        wid = make_window(conn, w=100, h=100)
        with conn.batch():
            conn.resize_window(wid, 200, 200)
            conn.resize_window(wid, 100, 100)
        assert not events_of(conn, "Expose")  # net no-growth
        with conn.batch():
            conn.resize_window(wid, 50, 50)
            conn.resize_window(wid, 150, 150)
        exposes = events_of(conn, "Expose")
        assert len(exposes) == 1  # net growth: one damage pass
        assert (exposes[0].width, exposes[0].height) == (150, 150)

    def test_non_batchable_request_flushes_first(self, server, conn):
        wid = make_window(conn)
        with conn.batch():
            conn.move_window(wid, 40, 41)
            # A read must observe the buffered move: the client flushes
            # the batch before issuing it.
            x, y, _, _, _ = conn.get_geometry(wid)
            assert (x, y) == (40, 41)
            notifies = events_of(conn, "ConfigureNotify")
            assert len(notifies) == 1

    def test_nested_batch_joins_outer(self, server, conn):
        wid = make_window(conn)
        with conn.batch() as outer:
            conn.move_window(wid, 1, 1)
            with conn.batch() as inner:
                conn.move_window(wid, 2, 2)
            assert inner is outer
            # Still buffered: the inner exit must not flush.
            assert not events_of(conn, "ConfigureNotify")
        assert len(events_of(conn, "ConfigureNotify")) == 1

    def test_per_op_error_is_result_not_exception(self, server, conn):
        # Coalescing off: the delivery pipeline would merge the two
        # flush segments' notifies while they sit in the queue.
        conn.set_coalescing(False)
        wid = make_window(conn)
        gone = conn.create_window(conn.root_window(), 0, 0, 10, 10)
        conn.destroy_window(gone)
        conn.events()
        with conn.batch() as results:
            conn.move_window(wid, 3, 3)
            conn.move_window(gone, 4, 4)  # BadWindow: error-as-data
            conn.move_window(wid, 5, 5)
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error"] == "BadWindow"
        notifies = events_of(conn, "ConfigureNotify")
        # The error split the batch: one notify per flush segment.
        assert [(n.x, n.y) for n in notifies] == [(3, 3), (5, 5)]


class TestBatchSplitBoundaries:
    def test_quota_denial_splits_batch(self):
        server = XServer(
            screens=[(800, 600, 8)],
            quota_limits=QuotaLimits(max_property_bytes=64),
        )
        conn = ClientConnection(server, "app")
        conn.set_coalescing(False)  # keep both flush segments visible
        wid = make_window(conn)
        atom = conn.intern_atom("SWM_TEST")
        string = conn.intern_atom("STRING")
        with conn.batch() as results:
            conn.move_window(wid, 9, 9)
            conn.change_property(wid, atom, string, 8, "x" * 4096)
            conn.move_window(wid, 11, 11)
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error"] == "QuotaExceeded"
        notifies = events_of(conn, "ConfigureNotify")
        # Split at the denial: the first move flushed there, the second
        # at batch end.
        assert [(n.x, n.y) for n in notifies] == [(9, 9), (11, 11)]
        assert server.stats().quota_denied_count() == 1

    def test_fault_error_splits_batch(self, server, conn):
        wids = [make_window(conn, x=i * 30) for i in range(3)]
        plan = FaultPlan(seed=7)
        plan.rule(
            "error", requests=["configure_window"], error="BadImplementation",
            arm_after=1, max_fires=1,
        )
        server.install_faults(plan)
        with conn.batch() as results:
            for wid in wids:
                conn.move_window(wid, 2, 2)
        server.clear_faults()
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error"] == "BadImplementation"
        notifies = events_of(conn, "ConfigureNotify")
        # The fault fired before op 2 mutated anything, flushing op 1's
        # pending notify; op 3 flushed at batch end.
        assert [n.window for n in notifies] == [wids[0], wids[2]]
        assert plan.injected("error") == 1

    def test_stale_fault_splits_and_op_fails_cleanly(self, server, conn):
        victim = make_window(conn, x=0)
        other = make_window(conn, x=200)
        plan = FaultPlan(seed=7)
        plan.rule(
            "stale", requests=["configure_window"], arm_after=1, max_fires=1,
        )
        server.install_faults(plan)
        with conn.batch() as results:
            conn.move_window(other, 2, 2)
            conn.move_window(victim, 3, 3)  # stale race destroys victim
            conn.move_window(other, 4, 4)
        server.clear_faults()
        assert results[0]["ok"] is True
        assert results[1] == {
            "ok": False, "error": "BadWindow",
            "detail": results[1]["detail"],
        }
        assert results[2]["ok"] is True
        assert victim not in server.windows
        destroys = events_of(conn, "DestroyNotify")
        assert [d.window for d in destroys] == [victim]

    def test_kill_fault_propagates_out_of_batch(self, server, conn):
        wid = make_window(conn)
        plan = FaultPlan(seed=7)
        plan.rule("kill", requests=["configure_window"], arm_after=1)
        server.install_faults(plan)
        with pytest.raises(ConnectionClosed):
            with conn.batch():
                conn.move_window(wid, 1, 1)
                conn.move_window(wid, 2, 2)
        server.clear_faults()
        assert not conn.is_alive()


class TestReplayDeterminism:
    """A seeded fault plan must replay bit-identically whether the
    workload issues its requests one by one or through batch()."""

    @pytest.mark.parametrize("seed", [7, 1337, 2025, 90210])
    def test_batched_run_matches_unbatched(self, seed):
        def build():
            server = XServer(screens=[(1152, 900, 8)])
            conn = ClientConnection(server, "app")
            wids = [
                make_window(conn, x=i * 40, y=i * 25, select=(i % 2 == 0))
                for i in range(6)
            ]
            plan = FaultPlan(seed)
            plan.rule(
                "error", probability=0.2, requests=["configure_window"],
                error="BadImplementation",
            )
            plan.rule(
                "stale", probability=0.1, requests=["change_property"],
                max_fires=2,
            )
            server.install_faults(plan)
            return server, conn, wids, plan

        def workload(conn, wids, use_batch):
            atom = conn.intern_atom("SWM_TEST")
            string = conn.intern_atom("STRING")

            def ops():
                for step in range(4):
                    for wid in wids:
                        yield ("configure_window", conn.move_window,
                               (wid, step * 7, step * 5))
                        if step % 2 == 0:
                            yield ("change_property", conn.change_property,
                                   (wid, atom, string, 8, f"s{step}"))

            if use_batch:
                with conn.batch():
                    for _, call, args in ops():
                        call(*args)
            else:
                for _, call, args in ops():
                    # Mirror the executor's errors-as-data semantics.
                    try:
                        call(*args)
                    except XError:
                        pass

        def fingerprint(server, plan):
            tree = sorted(
                (wid, w.rect, w.mapped, w.parent.id if w.parent else None)
                for wid, w in server.windows.items()
            )
            log = [
                (f.serial, f.kind, f.target, f.client_id, f.detail)
                for f in plan.log
            ]
            return tree, log, dict(server.stats().snapshot()["requests"])

        server_a, conn_a, wids_a, plan_a = build()
        workload(conn_a, wids_a, use_batch=False)
        server_b, conn_b, wids_b, plan_b = build()
        workload(conn_b, wids_b, use_batch=True)

        assert wids_a == wids_b
        tree_a, log_a, requests_a = fingerprint(server_a, plan_a)
        tree_b, log_b, requests_b = fingerprint(server_b, plan_b)
        assert log_a == log_b  # identical RNG draws and fault history
        assert tree_a == tree_b  # identical final tree state
        # Identical per-request accounting, except the batch wrapper.
        requests_b.pop("execute_batch", None)
        assert requests_a == requests_b
