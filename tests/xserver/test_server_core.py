"""Core server semantics: redirect, reparent, configure, save-set."""

import pytest

import repro.xserver.events as ev
from repro.xserver import (
    BadAccess,
    BadMatch,
    BadValue,
    BadWindow,
    ClientConnection,
    EventMask,
    MAX_WINDOW_SIZE,
    NONE,
    XServer,
)


@pytest.fixture
def server():
    return XServer(screens=[(1152, 900, 8)])


@pytest.fixture
def wm(server):
    conn = ClientConnection(server, "wm")
    conn.select_input(
        conn.root_window(),
        EventMask.SubstructureRedirect | EventMask.SubstructureNotify,
    )
    conn.events()
    return conn


@pytest.fixture
def app(server):
    return ClientConnection(server, "app")


def make_window(conn, parent=None, x=10, y=10, w=100, h=80, **kwargs):
    parent = parent if parent is not None else conn.root_window()
    return conn.create_window(parent, x, y, w, h, **kwargs)


class TestCreateDestroy:
    def test_create_notify_to_parent(self, server, wm, app):
        wid = make_window(app)
        creates = wm.flush_events(ev.CreateNotify)
        assert len(creates) == 1
        assert creates[0].parent == wm.root_window()

    def test_zero_size_rejected(self, server, app):
        with pytest.raises(BadValue):
            app.create_window(app.root_window(), 0, 0, 0, 10)

    def test_oversize_rejected(self, server, app):
        with pytest.raises(BadValue):
            app.create_window(app.root_window(), 0, 0, MAX_WINDOW_SIZE + 1, 10)

    def test_max_size_allowed(self, server, app):
        wid = app.create_window(
            app.root_window(), 0, 0, MAX_WINDOW_SIZE, MAX_WINDOW_SIZE
        )
        assert server.window(wid).width == MAX_WINDOW_SIZE

    def test_destroy_removes_subtree(self, server, app):
        parent = make_window(app)
        child = make_window(app, parent=parent)
        app.destroy_window(parent)
        assert not app.window_exists(parent)
        assert not app.window_exists(child)

    def test_destroy_root_rejected(self, server, app):
        with pytest.raises(BadWindow):
            app.destroy_window(app.root_window())

    def test_destroy_notify_delivered(self, server, app):
        wid = make_window(app, event_mask=EventMask.StructureNotify)
        app.events()
        app.destroy_window(wid)
        kinds = [e.type_name for e in app.events()]
        assert "DestroyNotify" in kinds

    def test_destroy_subwindows(self, server, app):
        parent = make_window(app)
        child_a = make_window(app, parent=parent)
        child_b = make_window(app, parent=parent)
        app.destroy_subwindows(parent)
        assert app.window_exists(parent)
        assert not app.window_exists(child_a)
        assert not app.window_exists(child_b)


class TestMapRedirect:
    def test_map_redirected_to_wm(self, server, wm, app):
        wid = make_window(app)
        wm.events()
        assert app.map_window(wid) is False
        assert not server.window(wid).mapped
        requests = wm.flush_events(ev.MapRequest)
        assert len(requests) == 1
        assert requests[0].requestor == wid

    def test_override_redirect_not_intercepted(self, server, wm, app):
        wid = make_window(app, override_redirect=True)
        assert app.map_window(wid) is True
        assert server.window(wid).mapped
        assert not wm.flush_events(ev.MapRequest)

    def test_wm_own_map_not_intercepted(self, server, wm, app):
        wid = make_window(app)
        wm.events()
        assert wm.map_window(wid) is True
        assert server.window(wid).mapped

    def test_only_one_redirector(self, server, wm):
        other = ClientConnection(server, "wm2")
        with pytest.raises(BadAccess):
            other.select_input(
                other.root_window(), EventMask.SubstructureRedirect
            )

    def test_redirector_can_reselect(self, server, wm):
        wm.select_input(
            wm.root_window(),
            EventMask.SubstructureRedirect | EventMask.PropertyChange,
        )

    def test_redirect_released_on_clear(self, server, wm):
        wm.select_input(wm.root_window(), EventMask.NoEvent)
        other = ClientConnection(server, "wm2")
        other.select_input(other.root_window(), EventMask.SubstructureRedirect)

    def test_map_notify_on_map(self, server, app):
        wid = make_window(app, event_mask=EventMask.StructureNotify)
        app.map_window(wid)
        kinds = [e.type_name for e in app.events()]
        assert "MapNotify" in kinds

    def test_unmap_notify(self, server, app):
        wid = make_window(app, event_mask=EventMask.StructureNotify)
        app.map_window(wid)
        app.events()
        app.unmap_window(wid)
        kinds = [e.type_name for e in app.events()]
        assert "UnmapNotify" in kinds

    def test_expose_on_viewable_map(self, server, app):
        wid = make_window(app, event_mask=EventMask.Exposure)
        app.map_window(wid)
        assert app.flush_events(ev.Expose)


class TestConfigureRedirect:
    def test_configure_redirected(self, server, wm, app):
        wid = make_window(app)
        wm.events()
        assert app.move_window(wid, 50, 60) is False
        assert server.window(wid).x == 10
        requests = wm.flush_events(ev.ConfigureRequest)
        assert len(requests) == 1
        assert requests[0].x == 50 and requests[0].y == 60
        assert requests[0].value_mask == ev.CWX | ev.CWY

    def test_configure_applies_without_wm(self, server, app):
        wid = make_window(app)
        assert app.move_resize_window(wid, 5, 6, 70, 80) is True
        win = server.window(wid)
        assert (win.x, win.y, win.width, win.height) == (5, 6, 70, 80)

    def test_configure_notify_fields(self, server, app):
        wid = make_window(app, event_mask=EventMask.StructureNotify)
        app.events()
        app.move_window(wid, 42, 24)
        notifies = app.flush_events(ev.ConfigureNotify)
        assert notifies and notifies[-1].x == 42 and notifies[-1].y == 24

    def test_sibling_without_stackmode_rejected(self, server, app):
        a = make_window(app)
        b = make_window(app)
        with pytest.raises(BadMatch):
            app.configure_window(a, sibling=b)

    def test_restack_above_sibling(self, server, app):
        a = make_window(app)
        b = make_window(app)
        c = make_window(app)
        app.configure_window(a, sibling=b, stack_mode=ev.ABOVE)
        _, _, children = app.query_tree(app.root_window())
        assert children.index(a) == children.index(b) + 1

    def test_raise_lower(self, server, app):
        a = make_window(app)
        b = make_window(app)
        app.raise_window(a)
        _, _, children = app.query_tree(app.root_window())
        assert children[-1] == a
        app.lower_window(a)
        _, _, children = app.query_tree(app.root_window())
        assert children[0] == a

    def test_coordinates_out_of_range(self, server, app):
        wid = make_window(app)
        with pytest.raises(BadValue):
            app.move_window(wid, 40000, 0)

    def test_moving_parent_sends_no_configure_to_child(self, server, app):
        """The paper (§6.3): panning the desktop (moving the big window)
        generates no ConfigureNotify for the windows on it."""
        parent = make_window(app, w=500, h=500)
        child = make_window(app, parent=parent, event_mask=EventMask.StructureNotify)
        app.map_window(parent)
        app.map_window(child)
        app.events()
        app.move_window(parent, 200, 200)
        assert not app.flush_events(ev.ConfigureNotify)


class TestReparent:
    def test_reparent_moves_window(self, server, wm, app):
        wid = make_window(app)
        frame = make_window(wm, x=0, y=0, w=200, h=200)
        wm.reparent_window(wid, frame, 4, 20)
        _, parent, _ = app.query_tree(wid)
        assert parent == frame
        assert server.window(wid).x == 4

    def test_reparent_notify_to_window(self, server, wm, app):
        wid = make_window(app, event_mask=EventMask.StructureNotify)
        frame = make_window(wm, w=200, h=200)
        app.events()
        wm.reparent_window(wid, frame, 0, 0)
        notifies = app.flush_events(ev.ReparentNotify)
        assert notifies and notifies[0].parent == frame

    def test_reparent_mapped_window_remaps_via_redirect(self, server, wm, app):
        """Remapping after reparent goes through the redirect machinery
        when issued by a non-WM client; the WM's own remap applies."""
        wid = make_window(app)
        wm.events()
        wm.map_window(wid)
        frame = make_window(wm, w=200, h=200)
        wm.map_window(frame)
        wm.reparent_window(wid, frame, 0, 0)
        assert server.window(wid).mapped

    def test_reparent_to_descendant_rejected(self, server, app):
        a = make_window(app)
        b = make_window(app, parent=a)
        with pytest.raises(BadMatch):
            app.reparent_window(a, b, 0, 0)

    def test_reparent_root_rejected(self, server, app):
        with pytest.raises(BadMatch):
            app.reparent_window(app.root_window(), app.root_window(), 0, 0)

    def test_position_in_root_accumulates(self, server, wm, app):
        frame = make_window(wm, x=100, y=50, w=300, h=300, border_width=2)
        wid = make_window(app)
        wm.reparent_window(wid, frame, 10, 20)
        origin = server.window(wid).position_in_root()
        assert (origin.x, origin.y) == (100 + 2 + 10, 50 + 2 + 20)


class TestSaveSet:
    def test_save_set_survives_wm_death(self, server, wm, app):
        wid = make_window(app)
        wm.events()
        frame = make_window(wm, w=300, h=300)
        wm.add_to_save_set(wid)
        wm.reparent_window(wid, frame, 5, 5)
        wm.map_window(frame)
        wm.map_window(wid)
        wm.close()
        _, parent, _ = app.query_tree(wid)
        assert parent == app.root_window()
        assert server.window(wid).mapped
        assert not app.window_exists(frame)

    def test_non_save_set_frame_children_die_with_wm(self, server, wm, app):
        wid = make_window(app)
        frame = make_window(wm, w=300, h=300)
        wm.reparent_window(wid, frame, 5, 5)
        # No save-set insertion: the client window is destroyed along
        # with the frame subtree.
        wm.close()
        assert not app.window_exists(wid)

    def test_cannot_save_set_own_window(self, server, app):
        wid = make_window(app)
        with pytest.raises(BadMatch):
            app.add_to_save_set(wid)

    def test_save_set_delete(self, server, wm, app):
        wid = make_window(app)
        wm.add_to_save_set(wid)
        wm.remove_from_save_set(wid)
        frame = make_window(wm, w=300, h=300)
        wm.reparent_window(wid, frame, 5, 5)
        wm.close()
        assert not app.window_exists(wid)


class TestProperties:
    def test_property_notify(self, server, wm, app):
        wid = make_window(app)
        wm.select_input(wid, EventMask.PropertyChange)
        app.set_string_property(wid, "WM_NAME", "xclock")
        notifies = wm.flush_events(ev.PropertyNotify)
        assert notifies
        assert server.atoms.name(notifies[0].atom) == "WM_NAME"

    def test_get_string_property(self, server, app):
        wid = make_window(app)
        app.set_string_property(wid, "WM_NAME", "hello")
        assert app.get_string_property(wid, "WM_NAME") == "hello"

    def test_delete_property_notify_state(self, server, wm, app):
        wid = make_window(app)
        app.set_string_property(wid, "WM_NAME", "x")
        wm.select_input(wid, EventMask.PropertyChange)
        app.delete_property(wid, "WM_NAME")
        notifies = wm.flush_events(ev.PropertyNotify)
        assert notifies and notifies[0].state == ev.PROPERTY_DELETE

    def test_list_properties(self, server, app):
        wid = make_window(app)
        app.set_string_property(wid, "WM_NAME", "a")
        app.set_string_property(wid, "WM_ICON_NAME", "b")
        names = {server.atoms.name(a) for a in app.list_properties(wid)}
        assert names == {"WM_NAME", "WM_ICON_NAME"}


class TestQueries:
    def test_translate_coordinates(self, server, wm, app):
        frame = make_window(wm, x=100, y=100, w=300, h=300)
        wid = make_window(app)
        wm.reparent_window(wid, frame, 10, 20)
        x, y, child = app.translate_coordinates(wid, app.root_window(), 0, 0)
        assert (x, y) == (110, 120)

    def test_translate_finds_child(self, server, app):
        parent = make_window(app, x=0, y=0, w=500, h=500)
        child = make_window(app, parent=parent, x=50, y=50, w=100, h=100)
        app.map_window(parent)
        app.map_window(child)
        _, _, hit = app.translate_coordinates(
            app.root_window(), parent, 60, 60
        )
        assert hit == child

    def test_query_tree_order_is_stacking(self, server, app):
        a = make_window(app)
        b = make_window(app)
        _, _, children = app.query_tree(app.root_window())
        assert children == [a, b]

    def test_get_geometry(self, server, app):
        wid = make_window(app, x=7, y=8, w=70, h=80, border_width=3)
        assert app.get_geometry(wid) == (7, 8, 70, 80, 3)

    def test_window_attributes(self, server, app):
        wid = make_window(app, override_redirect=True)
        attrs = app.get_window_attributes(wid)
        assert attrs["override_redirect"] is True
        assert attrs["map_state"] == 0


class TestUnifiedHitTest:
    """translate_coordinates and query_pointer share one child hit-test:
    borders count as part of the window and SHAPE regions are honoured
    by both (they used to disagree — translate ignored SHAPE, pointer
    queries ignored borders)."""

    @pytest.fixture
    def shaped_child(self, server, app):
        from repro.xserver import ShapeRegion

        parent = make_window(app, x=0, y=0, w=500, h=500)
        child = make_window(app, parent=parent, x=50, y=50, w=100, h=100,
                            border_width=4)
        app.map_window(parent)
        app.map_window(child)
        # Only the left half of the child is part of its shape.
        region = ShapeRegion.from_rects(100, 100, [(0, 0, 50, 100)])
        server.window(child).shape = region
        server._refresh_pointer_window()
        return parent, child

    def both_hits(self, server, app, parent, x, y):
        """(translate child, query_pointer child) for parent-local x, y."""
        _, _, t_child = app.translate_coordinates(app.root_window(), parent, x, y)
        server.motion(x, y)  # parent at origin: parent-local == root
        q_child = app.query_pointer(parent)["child"]
        return t_child, q_child

    def test_agree_inside_shape(self, server, app, shaped_child):
        parent, child = shaped_child
        assert self.both_hits(server, app, parent, 60, 60) == (child, child)

    def test_agree_outside_shape(self, server, app, shaped_child):
        """In the rectangle but outside the SHAPE region: neither path
        reports the child."""
        parent, child = shaped_child
        assert self.both_hits(server, app, parent, 130, 60) == (NONE, NONE)

    def test_agree_on_border_of_unshaped(self, server, app):
        parent = make_window(app, x=0, y=0, w=500, h=500)
        child = make_window(app, parent=parent, x=50, y=50, w=100, h=100,
                            border_width=4)
        app.map_window(parent)
        app.map_window(child)
        # (48, 48) lies on the 4px border ring around the content
        # (content [50, 150), ring [46, 50)); (44, 44) is outside it.
        assert self.both_hits(server, app, parent, 48, 48) == (child, child)
        assert self.both_hits(server, app, parent, 44, 44) == (NONE, NONE)

    def test_shaped_border_clipped(self, server, app, shaped_child):
        """A shaped window's border is clipped to the shape: border
        pixels outside the region do not hit."""
        parent, child = shaped_child
        assert self.both_hits(server, app, parent, 48, 48) == (NONE, NONE)

    def test_window_at_honours_border(self, server, app):
        child = make_window(app, x=100, y=100, w=50, h=50, border_width=5)
        app.map_window(child)
        server.motion(97, 97)  # on the border
        assert server.pointer.window.id == child
        server.motion(90, 90)  # outside the border
        assert server.pointer.window.id == app.root_window()


class TestSendEvent:
    def test_send_event_with_mask(self, server, wm, app):
        wid = make_window(app)
        wm.select_input(wid, EventMask.StructureNotify)
        msg = ev.ClientMessage(window=wid, message_type=1, data=(1, 2, 3))
        app.send_event(wid, msg, EventMask.StructureNotify)
        got = wm.flush_events(ev.ClientMessage)
        assert got and got[0].send_event

    def test_send_event_zero_mask_goes_to_creator(self, server, wm, app):
        wid = make_window(app)
        msg = ev.ClientMessage(window=wid, message_type=1)
        wm.send_event(wid, msg)
        assert app.flush_events(ev.ClientMessage)


class TestReset:
    def test_reset_destroys_everything(self, server, wm, app):
        wid = make_window(app)
        server.reset()
        assert not server.windows.get(wid)
        assert server.generation == 2
        # Root survives.
        assert server.screens[0].root.mapped

    def test_reset_clears_root_properties(self, server, app):
        root = app.root_window()
        app.set_string_property(root, "SWM_RESTART_INFO", "data")
        server.reset()
        atom = server.atoms.intern("SWM_RESTART_INFO")
        assert server.screens[0].root.properties.get(atom) is None


class TestMultiScreen:
    def test_two_screens(self):
        server = XServer(screens=[(1152, 900, 8), (1024, 768, 1)])
        assert len(server.screens) == 2
        assert not server.screens[0].monochrome
        assert server.screens[1].monochrome

    def test_roots_are_distinct(self):
        server = XServer(screens=[(100, 100, 8), (200, 200, 8)])
        conn = ClientConnection(server)
        assert conn.root_window(0) != conn.root_window(1)

    def test_reparent_across_screens_rejected(self):
        server = XServer(screens=[(100, 100, 8), (200, 200, 8)])
        conn = ClientConnection(server)
        wid = conn.create_window(conn.root_window(0), 0, 0, 10, 10)
        with pytest.raises(BadMatch):
            conn.reparent_window(wid, conn.root_window(1), 0, 0)
