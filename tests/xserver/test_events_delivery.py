"""Event delivery details: Expose, SendEvent propagation, masks."""

import pytest

import repro.xserver.events as ev
from repro.xserver import ClientConnection, EventMask, XServer


@pytest.fixture
def server():
    return XServer(screens=[(800, 600, 8)])


@pytest.fixture
def conn(server):
    return ClientConnection(server)


class TestExpose:
    def test_expose_on_map(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 100, 100,
                                 event_mask=EventMask.Exposure)
        conn.map_window(wid)
        exposes = conn.flush_events(ev.Expose)
        assert exposes and exposes[0].width == 100

    def test_no_expose_when_unviewable(self, server, conn):
        parent = conn.create_window(conn.root_window(), 0, 0, 200, 200)
        child = conn.create_window(parent, 0, 0, 50, 50,
                                   event_mask=EventMask.Exposure)
        conn.map_window(child)  # parent still unmapped
        assert not conn.flush_events(ev.Expose)
        conn.map_window(parent)  # now the subtree becomes viewable
        assert conn.flush_events(ev.Expose)

    def test_expose_on_grow(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 100, 100,
                                 event_mask=EventMask.Exposure)
        conn.map_window(wid)
        conn.events()
        conn.resize_window(wid, 150, 150)
        assert conn.flush_events(ev.Expose)

    def test_no_expose_on_shrink(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 100, 100,
                                 event_mask=EventMask.Exposure)
        conn.map_window(wid)
        conn.events()
        conn.resize_window(wid, 50, 50)
        assert not conn.flush_events(ev.Expose)


class TestSendEventPropagation:
    def test_propagate_walks_ancestors(self, server, conn):
        outer = conn.create_window(conn.root_window(), 0, 0, 200, 200)
        inner = conn.create_window(outer, 0, 0, 50, 50)
        watcher = ClientConnection(server, "watch")
        watcher.select_input(outer, EventMask.StructureNotify)
        message = ev.ClientMessage(window=inner, message_type=1)
        conn.send_event(inner, message, EventMask.StructureNotify,
                        propagate=True)
        got = watcher.flush_events(ev.ClientMessage)
        assert got and got[0].send_event

    def test_no_propagate_stays_put(self, server, conn):
        outer = conn.create_window(conn.root_window(), 0, 0, 200, 200)
        inner = conn.create_window(outer, 0, 0, 50, 50)
        watcher = ClientConnection(server, "watch")
        watcher.select_input(outer, EventMask.StructureNotify)
        message = ev.ClientMessage(window=inner, message_type=1)
        conn.send_event(inner, message, EventMask.StructureNotify,
                        propagate=False)
        assert not watcher.flush_events(ev.ClientMessage)

    def test_send_to_pointer_root(self, server, conn):
        from repro.xserver import POINTER_ROOT

        conn.select_input(conn.root_window(), EventMask.PropertyChange)
        message = ev.ClientMessage(window=0, message_type=1)
        conn.send_event(POINTER_ROOT, message, EventMask.PropertyChange)
        assert conn.flush_events(ev.ClientMessage)


class TestMaskIsolation:
    def test_two_clients_independent_masks(self, server):
        a = ClientConnection(server, "a")
        b = ClientConnection(server, "b")
        wid = a.create_window(a.root_window(), 0, 0, 100, 100)
        a.select_input(wid, EventMask.PropertyChange)
        b.select_input(wid, EventMask.StructureNotify)
        a.set_string_property(wid, "WM_NAME", "x")
        assert a.flush_events(ev.PropertyNotify)
        assert not b.flush_events(ev.PropertyNotify)
        a.map_window(wid)
        assert b.flush_events(ev.MapNotify)
        assert not a.flush_events(ev.MapNotify)

    def test_deselect_stops_delivery(self, server, conn):
        wid = conn.create_window(conn.root_window(), 0, 0, 100, 100,
                                 event_mask=EventMask.PropertyChange)
        conn.set_string_property(wid, "WM_NAME", "x")
        assert conn.flush_events(ev.PropertyNotify)
        conn.select_input(wid, EventMask.NoEvent)
        conn.set_string_property(wid, "WM_NAME", "y")
        assert not conn.flush_events(ev.PropertyNotify)

    def test_all_masks_union(self, server):
        a = ClientConnection(server, "a")
        b = ClientConnection(server, "b")
        wid = a.create_window(a.root_window(), 0, 0, 100, 100)
        a.select_input(wid, EventMask.PropertyChange)
        b.select_input(wid, EventMask.KeyPress)
        attrs = a.get_window_attributes(wid)
        assert attrs["all_event_masks"] & EventMask.PropertyChange
        assert attrs["all_event_masks"] & EventMask.KeyPress


class TestOwnerEventsGrab:
    def test_owner_events_delivers_to_own_window(self, server):
        wm = ClientConnection(server, "wm")
        own = wm.create_window(wm.root_window(), 0, 0, 100, 100,
                               event_mask=EventMask.ButtonPress)
        wm.map_window(own)
        wm.grab_pointer(wm.root_window(), EventMask.ButtonPress,
                        owner_events=True)
        server.motion(50, 50)  # over the wm's own window
        server.button_press(1)
        presses = wm.flush_events(ev.ButtonPress)
        assert presses and presses[0].window == own
        server.button_release(1)
        wm.ungrab_pointer()

    def test_owner_events_falls_back_to_grab_window(self, server):
        wm = ClientConnection(server, "wm")
        other = ClientConnection(server, "app")
        foreign = other.create_window(other.root_window(), 0, 0, 100, 100)
        other.map_window(foreign)
        wm.grab_pointer(wm.root_window(), EventMask.ButtonPress,
                        owner_events=True)
        server.motion(50, 50)  # over the foreign window
        server.button_press(1)
        presses = wm.flush_events(ev.ButtonPress)
        assert presses and presses[0].window == wm.root_window()
        server.button_release(1)
        wm.ungrab_pointer()
