"""Property tests for the band-based region algebra.

Seeded random rect soups are checked against a naive pixel-set oracle:
union/intersect/subtract round-trips, area conservation, band-form
invariants, and the fast paths.  The soup coordinates are small enough
that the oracle stays cheap but still exercise negative coordinates,
adjacency, containment and heavy overlap.
"""

import random

import pytest

from repro.xserver.geometry import Rect
from repro.xserver.region import Region

SEEDS = [7, 1337, 2025, 90210]


def rect_soup(rng, count, span=60, size=24):
    return [
        Rect(
            rng.randint(-span // 2, span),
            rng.randint(-span // 2, span),
            rng.randint(1, size),
            rng.randint(1, size),
        )
        for _ in range(count)
    ]


def pixels(rects):
    cells = set()
    for rect in rects:
        for y in range(rect.y, rect.y + rect.height):
            for x in range(rect.x, rect.x + rect.width):
                cells.add((x, y))
    return cells


def region_pixels(region):
    return pixels(region.rects())


def assert_canonical(region):
    """The band-form invariants every operation must preserve."""
    previous = None
    for y1, y2, walls in region.bands:
        assert y1 < y2, "empty band"
        assert walls, "band with no intervals"
        assert len(walls) % 2 == 0, "odd wall count"
        for i in range(len(walls) - 1):
            assert walls[i] < walls[i + 1], "unsorted/empty/adjacent walls"
        if previous is not None:
            prev_y2, prev_walls = previous
            assert prev_y2 <= y1, "vertically overlapping bands"
            if prev_y2 == y1:
                assert prev_walls != walls, "unmerged identical bands"
        previous = (y2, walls)


class TestRegionBasics:
    def test_empty_singleton(self):
        assert Region.EMPTY.empty
        assert not Region.EMPTY
        assert Region.EMPTY.area() == 0
        assert Region.EMPTY.rects() == []
        assert Region.EMPTY.extents() is None

    def test_degenerate_rect_is_empty(self):
        assert Region.from_rect(Rect(5, 5, 0, 10)) is Region.EMPTY
        assert Region.from_rect(Rect(5, 5, 10, 0)) is Region.EMPTY

    def test_single_rect(self):
        region = Region.from_rect(Rect(2, 3, 10, 5))
        assert region.area() == 50
        assert region.extents() == Rect(2, 3, 10, 5)
        assert region.rects() == [Rect(2, 3, 10, 5)]
        assert region.contains(2, 3)
        assert region.contains(11, 7)
        assert not region.contains(12, 7)
        assert not region.contains(2, 8)
        assert_canonical(region)

    def test_adjacent_rects_merge(self):
        # Horizontally adjacent, same band: one interval.
        region = Region.from_rect(Rect(0, 0, 5, 5)).union(Rect(5, 0, 5, 5))
        assert region.bands == ((0, 5, (0, 10)),)
        # Vertically adjacent, same walls: one band.
        region = Region.from_rect(Rect(0, 0, 5, 5)).union(Rect(0, 5, 5, 5))
        assert region.bands == ((0, 10, (0, 5)),)

    def test_equality_is_set_equality(self):
        a = Region.union_all([Rect(0, 0, 4, 4), Rect(4, 0, 4, 4)])
        b = Region.from_rect(Rect(0, 0, 8, 4))
        assert a == b
        assert hash(a) == hash(b)

    def test_translate_round_trip(self):
        region = Region.union_all([Rect(0, 0, 5, 5), Rect(10, 8, 3, 7)])
        moved = region.translated(13, -4)
        assert moved.area() == region.area()
        assert moved.translated(-13, 4) == region
        assert region.translated(0, 0) is region

    def test_operator_aliases_and_rect_coercion(self):
        a = Region.from_rect(Rect(0, 0, 10, 10))
        b = Rect(5, 5, 10, 10)
        assert (a | b) == a.union(b)
        assert (a & Region.from_rect(b)) == a.intersect(b)
        assert (a - Region.from_rect(b)) == a.subtract(b)


class TestRegionProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ops_match_pixel_oracle(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            soup_a = rect_soup(rng, rng.randint(0, 6))
            soup_b = rect_soup(rng, rng.randint(0, 6))
            a = Region.union_all(soup_a)
            b = Region.union_all(soup_b)
            cells_a = pixels(soup_a)
            cells_b = pixels(soup_b)
            assert region_pixels(a) == cells_a
            assert region_pixels(a | b) == cells_a | cells_b
            assert region_pixels(a & b) == cells_a & cells_b
            assert region_pixels(a - b) == cells_a - cells_b
            for derived in (a, b, a | b, a & b, a - b):
                assert_canonical(derived)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_area_conservation(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            a = Region.union_all(rect_soup(rng, rng.randint(1, 6)))
            b = Region.union_all(rect_soup(rng, rng.randint(1, 6)))
            # |A ∪ B| = |A| + |B| - |A ∩ B|
            assert (a | b).area() == a.area() + b.area() - (a & b).area()
            # |A - B| = |A| - |A ∩ B|
            assert (a - b).area() == a.area() - (a & b).area()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_subtract_union_round_trip(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            a = Region.union_all(rect_soup(rng, rng.randint(1, 6)))
            b = Region.union_all(rect_soup(rng, rng.randint(1, 6)))
            # (A - B) ∪ (A ∩ B) = A, and the two parts are disjoint.
            assert ((a - b) | (a & b)) == a
            assert ((a - b) & (a & b)).empty

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rects_are_disjoint_and_band_ordered(self, seed):
        rng = random.Random(seed)
        for _ in range(10):
            region = Region.union_all(rect_soup(rng, rng.randint(1, 8)))
            rects = region.rects()
            assert sum(r.width * r.height for r in rects) == region.area()
            keys = [(r.y, r.x) for r in rects]
            assert keys == sorted(keys)
            for i, r1 in enumerate(rects):
                for r2 in rects[i + 1:]:
                    assert r1.intersection(r2) is None

    @pytest.mark.parametrize("seed", SEEDS)
    def test_point_and_rect_probes_match_oracle(self, seed):
        rng = random.Random(seed)
        soup = rect_soup(rng, 5)
        region = Region.union_all(soup)
        cells = pixels(soup)
        for _ in range(200):
            x = rng.randint(-40, 90)
            y = rng.randint(-40, 90)
            assert region.contains(x, y) == ((x, y) in cells)
        for probe in rect_soup(rng, 40):
            expected = bool(pixels([probe]) & cells)
            assert region.intersects_rect(probe) == expected

    def test_fast_paths(self):
        a = Region.from_rect(Rect(0, 0, 10, 10))
        assert (a | Region.EMPTY) is a
        assert (Region.EMPTY | a) is a
        assert (a & Region.EMPTY) is Region.EMPTY
        assert (a - Region.EMPTY) is a
        assert (Region.EMPTY - a) is Region.EMPTY
        assert (a | a) is a
        assert (a & a) is a
        assert (a - a) is Region.EMPTY
        far = Region.from_rect(Rect(100, 100, 5, 5))
        assert (a & far) is Region.EMPTY
        assert (a - far) is a
