"""Atom interning and window property storage."""

import pytest
from hypothesis import given, strategies as st

from repro.xserver.atoms import AtomTable, LAST_PREDEFINED
from repro.xserver.errors import BadAtom, BadMatch, BadValue
from repro.xserver.properties import (
    PROP_MODE_APPEND,
    PROP_MODE_PREPEND,
    PROP_MODE_REPLACE,
    Property,
    PropertyMap,
)


class TestAtoms:
    def test_predefined_values(self):
        table = AtomTable()
        assert table.intern("WM_NAME") == 39
        assert table.intern("WM_CLASS") == 67
        assert table.intern("STRING") == 31

    def test_intern_new(self):
        table = AtomTable()
        atom = table.intern("SWM_ROOT")
        assert atom > LAST_PREDEFINED
        assert table.name(atom) == "SWM_ROOT"

    def test_intern_is_idempotent(self):
        table = AtomTable()
        assert table.intern("FOO") == table.intern("FOO")

    def test_only_if_exists(self):
        table = AtomTable()
        assert table.intern("NOPE", only_if_exists=True) is None
        table.intern("NOPE")
        assert table.intern("NOPE", only_if_exists=True) is not None

    def test_bad_atom_name(self):
        table = AtomTable()
        with pytest.raises(BadAtom):
            table.intern("")

    def test_name_of_unknown(self):
        with pytest.raises(BadAtom):
            AtomTable().name(99999)

    @given(st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=30))
    def test_distinct_names_distinct_atoms(self, names):
        table = AtomTable()
        atoms = {name: table.intern(name) for name in names}
        assert len(set(atoms.values())) == len(set(names))


class TestProperty:
    def test_string_property(self):
        prop = Property(31, 8, "xclock")
        assert prop.as_string() == "xclock"
        assert len(prop) == 6

    def test_string_list_encoding(self):
        prop = Property(31, 8, "xclock\0XClock\0")
        assert prop.as_strings() == ["xclock", "XClock"]

    def test_string_list_without_trailing_nul(self):
        prop = Property(31, 8, "a\0b")
        assert prop.as_strings() == ["a", "b"]

    def test_empty_string_list(self):
        assert Property(31, 8, "").as_strings() == []

    def test_format32(self):
        prop = Property(6, 32, [1, 2, 3])
        assert prop.data == [1, 2, 3]

    def test_bad_format(self):
        with pytest.raises(BadValue):
            Property(6, 9, [1])

    def test_value_out_of_format_range(self):
        with pytest.raises(BadValue):
            Property(6, 16, [70000])

    def test_as_string_requires_format8(self):
        with pytest.raises(BadMatch):
            Property(6, 32, [1]).as_string()


class TestPropertyMap:
    def test_replace(self):
        props = PropertyMap()
        props.change(39, 31, 8, "one")
        props.change(39, 31, 8, "two")
        assert props.get(39).as_string() == "two"

    def test_append(self):
        props = PropertyMap()
        props.change(34, 31, 8, "abc")
        props.change(34, 31, 8, "def", PROP_MODE_APPEND)
        assert props.get(34).as_string() == "abcdef"

    def test_prepend(self):
        props = PropertyMap()
        props.change(34, 31, 8, "abc")
        props.change(34, 31, 8, "def", PROP_MODE_PREPEND)
        assert props.get(34).as_string() == "defabc"

    def test_append_format32(self):
        props = PropertyMap()
        props.change(6, 6, 32, [1])
        props.change(6, 6, 32, [2, 3], PROP_MODE_APPEND)
        assert props.get(6).data == [1, 2, 3]

    def test_append_to_missing_behaves_like_replace(self):
        props = PropertyMap()
        props.change(34, 31, 8, "xyz", PROP_MODE_APPEND)
        assert props.get(34).as_string() == "xyz"

    def test_append_type_mismatch(self):
        props = PropertyMap()
        props.change(34, 31, 8, "abc")
        with pytest.raises(BadMatch):
            props.change(34, 6, 8, "def", PROP_MODE_APPEND)

    def test_append_format_mismatch(self):
        props = PropertyMap()
        props.change(34, 6, 32, [1])
        with pytest.raises(BadMatch):
            props.change(34, 6, 16, [2], PROP_MODE_APPEND)

    def test_delete(self):
        props = PropertyMap()
        props.change(39, 31, 8, "x")
        assert props.delete(39)
        assert not props.delete(39)
        assert props.get(39) is None

    def test_list_atoms(self):
        props = PropertyMap()
        props.change(39, 31, 8, "x")
        props.change(67, 31, 8, "y")
        assert sorted(props.list_atoms()) == [39, 67]

    def test_bad_mode(self):
        props = PropertyMap()
        props.change(39, 31, 8, "x")
        with pytest.raises(BadValue):
            props.change(39, 31, 8, "y", mode=7)

    @given(st.lists(st.binary(max_size=16), max_size=10))
    def test_appends_concatenate(self, chunks):
        props = PropertyMap()
        props.change(34, 31, 8, b"")
        for chunk in chunks:
            props.change(34, 31, 8, chunk, PROP_MODE_APPEND)
        assert props.get(34).data == b"".join(chunks)
