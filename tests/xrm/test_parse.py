"""Resource file parsing."""

import pytest

from repro.xrm.parse import (
    ResourceParseError,
    parse_lines,
    split_specifier,
)


class TestSplitSpecifier:
    def test_tight_bindings(self):
        assert split_specifier("swm.color.screen0") == [
            (".", "swm"),
            (".", "color"),
            (".", "screen0"),
        ]

    def test_loose_binding(self):
        assert split_specifier("swm*background") == [
            (".", "swm"),
            ("*", "background"),
        ]

    def test_leading_star(self):
        assert split_specifier("*foreground") == [("*", "foreground")]

    def test_consecutive_stars_collapse(self):
        assert split_specifier("swm**x") == [(".", "swm"), ("*", "x")]

    def test_question_component(self):
        assert split_specifier("swm.?.screen0") == [
            (".", "swm"),
            (".", "?"),
            (".", "screen0"),
        ]

    def test_star_dot_mix(self):
        # '*.' -- the star wins for the following component.
        assert split_specifier("a*.b") == [(".", "a"), ("*", "b")]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            split_specifier("")

    def test_bad_component(self):
        with pytest.raises(ValueError):
            split_specifier("a.b c.d")


class TestParseLines:
    def test_basic_entry(self):
        entries = list(parse_lines("swm*background: gray\n"))
        assert entries == [([(".", "swm"), ("*", "background")], "gray")]

    def test_comments_and_blanks_skipped(self):
        text = "! a comment\n\nswm.x: 1\n"
        assert len(list(parse_lines(text))) == 1

    def test_preprocessor_skipped(self):
        text = '#include "other"\nswm.x: 1\n'
        assert len(list(parse_lines(text))) == 1

    def test_continuation(self):
        text = "swm*panel.p: \\\n  button a +0+0 \\\n  button b +1+0\n"
        entries = list(parse_lines(text))
        assert len(entries) == 1
        assert "button a +0+0" in entries[0][1]
        assert "button b +1+0" in entries[0][1]

    def test_missing_colon(self):
        with pytest.raises(ResourceParseError):
            list(parse_lines("swm.value gray\n"))

    def test_value_escapes(self):
        entries = list(parse_lines(r"swm.x: line1\nline2"))
        assert entries[0][1] == "line1\nline2"

    def test_value_with_colon(self):
        entries = list(parse_lines("swm.display: host:0.0\n"))
        assert entries[0][1] == "host:0.0"

    def test_single_leading_space_stripped(self):
        entries = list(parse_lines("swm.x:  spaced\n"))
        assert entries[0][1] == "spaced"

    def test_error_carries_lineno(self):
        try:
            list(parse_lines("ok.x: 1\nbroken line\n"))
        except ResourceParseError as exc:
            assert exc.lineno == 2
        else:
            pytest.fail("expected ResourceParseError")
