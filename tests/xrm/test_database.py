"""Xrm matching precedence rules."""

import pytest
from hypothesis import given, strategies as st

from repro.xrm import ResourceDatabase

QUERY_NAMES = "swm.color.screen0.xclock.xclock.decoration".split(".")
QUERY_CLASSES = "Swm.Color.Screen0.XClock.XClock.Decoration".split(".")


def db_with(*entries):
    db = ResourceDatabase()
    for spec, value in entries:
        db.put(spec, value)
    return db


class TestBasicMatching:
    def test_exact_tight_match(self):
        db = db_with(("swm.color.screen0.xclock.xclock.decoration", "win"))
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "win"

    def test_loose_match(self):
        db = db_with(("swm*decoration", "win"))
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "win"

    def test_class_component_match(self):
        db = db_with(("Swm*XClock*Decoration", "win"))
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "win"

    def test_no_match(self):
        db = db_with(("swm*xterm*decoration", "lose"))
        assert db.get(QUERY_NAMES, QUERY_CLASSES) is None

    def test_attribute_must_match(self):
        db = db_with(("swm*xclock", "lose"))
        assert db.get(QUERY_NAMES, QUERY_CLASSES) is None

    def test_entry_longer_than_query(self):
        db = db_with(("swm.a.b.c.d.e.f.g", "lose"))
        assert db.get(["swm", "x"], ["Swm", "X"]) is None

    def test_question_mark_matches_one_level(self):
        db = db_with(("swm.?.screen0*decoration", "win"))
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "win"

    def test_question_mark_consumes_exactly_one(self):
        db = db_with(("?.decoration", "maybe"))
        assert db.get(["swm", "decoration"], ["Swm", "Decoration"]) == "maybe"
        assert db.get(QUERY_NAMES, QUERY_CLASSES) is None

    def test_single_component_query(self):
        db = db_with(("*x", "loose"), ("x", "tight"))
        assert db.get(["x"], ["X"]) == "tight"


class TestPrecedence:
    """The documented XrmGetResource precedence rules, §3 of the paper
    relies on them for per-screen and per-client configuration."""

    def test_instance_beats_class(self):
        db = db_with(
            ("swm*xclock.xclock.decoration", "instance"),
            ("swm*XClock.XClock.Decoration", "class"),
        )
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "instance"

    def test_class_beats_question(self):
        db = db_with(
            ("swm*XClock.xclock.decoration", "class"),
            ("swm*?.xclock.decoration", "question"),
        )
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "class"

    def test_specified_beats_skipped(self):
        db = db_with(
            ("swm.color*decoration", "specified"),
            ("swm*decoration", "skipped"),
        )
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "specified"

    def test_tight_beats_loose_on_same_level(self):
        db = db_with(
            ("swm.color*decoration", "tight"),
            ("swm*color*decoration", "loose"),
        )
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "tight"

    def test_earlier_level_dominates(self):
        # Entry A specifies level 1 ("color"); entry B skips it but is
        # more specific later.  Precedence is evaluated left to right,
        # so A wins at the first differing level.
        db = db_with(
            ("swm.color*decoration", "a"),
            ("swm*xclock.xclock.decoration", "b"),
        )
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "a"
        db2 = db_with(
            ("swm.color*decoration", "a"),
            ("swm*screen0.xclock.xclock.decoration", "b"),
        )
        assert db2.get(QUERY_NAMES, QUERY_CLASSES) == "a"

    def test_swm_instance_beats_Swm_class(self):
        """The paper: 'either Swm or swm, the latter having precedence'."""
        db = db_with(
            ("Swm*decoration", "generic"),
            ("swm*decoration", "specific"),
        )
        assert db.get(QUERY_NAMES, QUERY_CLASSES) == "specific"

    def test_per_screen_override(self):
        db = db_with(
            ("swm*background", "gray"),
            ("swm.color.screen1*background", "blue"),
        )
        screen0 = "swm.color.screen0.xclock.xclock.background".split(".")
        screen1 = "swm.color.screen1.xclock.xclock.background".split(".")
        classes = "Swm.Color.Screen1.XClock.XClock.Background".split(".")
        assert db.get(screen0, classes) == "gray"
        assert db.get(screen1, classes) == "blue"

    def test_mono_vs_color(self):
        db = db_with(
            ("swm.monochrome*background", "white"),
            ("swm.color*background", "bisque"),
        )
        mono = "swm.monochrome.screen0.background".split(".")
        color = "swm.color.screen0.background".split(".")
        classes = "Swm.Monochrome.Screen0.Background".split(".")
        cclasses = "Swm.Color.Screen0.Background".split(".")
        assert db.get(mono, classes) == "white"
        assert db.get(color, cclasses) == "bisque"


class TestDatabaseOps:
    def test_put_overwrites(self):
        db = db_with(("a.b", "1"), ("a.b", "2"))
        assert db.get(["a", "b"], ["A", "B"]) == "2"

    def test_remove(self):
        db = db_with(("a.b", "1"))
        assert db.remove("a.b")
        assert not db.remove("a.b")
        assert db.get(["a", "b"], ["A", "B"]) is None

    def test_merge_overrides(self):
        base = db_with(("a*x", "base"))
        overlay = db_with(("a*x", "overlay"))
        base.merge(overlay)
        assert base.get(["a", "x"], ["A", "X"]) == "overlay"

    def test_copy_is_independent(self):
        db = db_with(("a.b", "1"))
        clone = db.copy()
        clone.put("a.b", "2")
        assert db.get(["a", "b"], ["A", "B"]) == "1"

    def test_load_string_and_to_string_roundtrip(self):
        db = db_with(("swm*panel.p", "button a +0+0"), ("swm.x", "1"))
        text = db.to_string()
        db2 = ResourceDatabase()
        db2.load_string(text)
        assert sorted(db2.entries()) == sorted(db.entries())

    def test_get_string_convenience(self):
        db = db_with(("swm*background", "gray"))
        assert db.get_string("swm.screen0.background", "Swm.Screen0.Background") == "gray"

    def test_mismatched_lengths_rejected(self):
        db = ResourceDatabase()
        with pytest.raises(ValueError):
            db.get(["a"], ["A", "B"])

    def test_load_file(self, tmp_path):
        path = tmp_path / "resources"
        path.write_text("swm.x: 42\n")
        db = ResourceDatabase()
        assert db.load_file(path) == 1
        assert db.get(["swm", "x"], ["Swm", "X"]) == "42"

    def test_cache_invalidation(self):
        db = db_with(("a*x", "1"))
        assert db.get(["a", "b", "x"], ["A", "B", "X"]) == "1"
        db.put("a.b.x", "2")
        assert db.get(["a", "b", "x"], ["A", "B", "X"]) == "2"


_COMPONENT = st.sampled_from(["swm", "color", "screen0", "xclock", "panel",
                              "button", "decoration", "background"])


class TestMatchingProperties:
    @given(names=st.lists(_COMPONENT, min_size=1, max_size=5))
    def test_full_tight_specifier_always_wins(self, names):
        classes = [n.capitalize() for n in names]
        db = ResourceDatabase()
        db.put("*" + names[-1], "loose")
        db.put(".".join(names), "exact")
        assert db.get(names, classes) == "exact"

    @given(names=st.lists(_COMPONENT, min_size=2, max_size=5))
    def test_star_attribute_matches_any_depth(self, names):
        classes = [n.capitalize() for n in names]
        db = ResourceDatabase()
        db.put("*" + names[-1], "val")
        assert db.get(names, classes) == "val"

    @given(names=st.lists(_COMPONENT, min_size=1, max_size=5),
           extra=_COMPONENT)
    def test_no_false_positive_on_wrong_attribute(self, names, extra):
        classes = [n.capitalize() for n in names]
        db = ResourceDatabase()
        db.put("*" + names[-1] + "-nomatch", "val")
        assert db.get(names, classes) is None
