"""Property test: the Xrm DP matcher against a brute-force reference.

The reference enumerates every alignment of entry components onto query
levels and scores them with the same per-level precedence key; the
production matcher must agree on both matchability and winner.
"""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.xrm.database import ResourceDatabase, _match_score

_COMPONENTS = ["app", "panel", "button", "ok", "font"]
_QUERY_NAMES = ["app", "panel", "button", "ok", "font"]
_QUERY_CLASSES = ["App", "Panel", "Button", "Ok", "Font"]


def reference_score(entry, names, classes):
    """Brute force: choose which query levels the entry's components
    consume (in order), allowing skips only under loose bindings."""
    levels = len(names)
    parts = len(entry)
    if parts > levels:
        return None
    best = None
    for positions in combinations(range(levels), parts):
        # Every level must be consumed or skipped by a loose binding:
        # a level not in positions must be skippable, i.e. covered by
        # the loose binding of the next consuming component (or the
        # entry ends and there are no trailing unconsumed levels).
        ok = True
        score = []
        pos_iter = list(positions)
        # Check trailing: the last component must consume the last level.
        if pos_iter[-1] != levels - 1:
            continue
        prev_end = -1
        for index, level in enumerate(pos_iter):
            binding, component = entry[index]
            # Levels between prev_end+1 .. level-1 are skipped: only
            # allowed when this component has a loose binding.
            skipped = level - prev_end - 1
            if skipped > 0 and binding != "*":
                ok = False
                break
            for _ in range(skipped):
                score.append((0, 0, 0))
            tight = 1 if binding == "." else 0
            if component == names[level]:
                score.append((1, 3, tight))
            elif component == classes[level]:
                score.append((1, 2, tight))
            elif component == "?":
                score.append((1, 1, tight))
            else:
                ok = False
                break
            prev_end = level
        if not ok:
            continue
        candidate = tuple(score)
        if best is None or candidate > best:
            best = candidate
    return best


_component_strategy = st.sampled_from(
    _COMPONENTS + [c.capitalize() for c in _COMPONENTS] + ["?", "zzz"]
)
_entry_strategy = st.lists(
    st.tuples(st.sampled_from([".", "*"]), _component_strategy),
    min_size=1,
    max_size=5,
)


class TestAgainstReference:
    @given(entry=_entry_strategy)
    @settings(max_examples=300)
    def test_matcher_agrees_with_reference(self, entry):
        entry = tuple(entry)
        got = _match_score(entry, _QUERY_NAMES, _QUERY_CLASSES)
        want = reference_score(entry, _QUERY_NAMES, _QUERY_CLASSES)
        assert got == want

    @given(entries=st.lists(_entry_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_database_winner_is_best_scoring(self, entries):
        db = ResourceDatabase()
        scored = {}
        for index, entry in enumerate(entries):
            entry = tuple(entry)
            spec = ""
            for position, (binding, component) in enumerate(entry):
                if position == 0:
                    spec += ("*" if binding == "*" else "") + component
                else:
                    spec += binding if binding == "*" else "."
                    spec += component
            db.put(spec, f"v{index}")
            score = reference_score(entry, _QUERY_NAMES, _QUERY_CLASSES)
            if score is not None:
                # Later identical specifiers overwrite earlier ones.
                scored[entry] = (score, f"v{index}")
        got = db.get(_QUERY_NAMES, _QUERY_CLASSES)
        if not scored:
            assert got is None
        else:
            best_score = max(score for score, _ in scored.values())
            winners = {value for score, value in scored.values()
                       if score == best_score}
            assert got in winners
