"""Attribute context resolution and type conversion."""

import pytest

from repro.toolkit import AttributeContext, convert_bool
from repro.xrm import ResourceDatabase


@pytest.fixture
def db():
    db = ResourceDatabase()
    db.load_string(
        """
swm*button.foo.bindings: <Btn1>: f.raise
swm*background: gray
swm.color.screen1*background: blue
swm*button*borderWidth: 2
swm*panel.openLook.resizeCorners: True
swm*font: 8x13
swm*cursor: left_ptr
swm*button.close.image: xlogo16
swm*titleHeight: 0x14
"""
    )
    return db


def ctx(db, screen=0, mono=False):
    kind = "monochrome" if mono else "color"
    return AttributeContext(
        db,
        ["swm", kind, f"screen{screen}"],
        ["Swm", kind.capitalize(), "Screen"],
        monochrome=mono,
    )


class TestLookup:
    def test_object_binding_lookup(self, db):
        value = ctx(db).lookup(["button", "foo"], "bindings")
        assert value == "<Btn1>: f.raise"

    def test_per_screen_override(self, db):
        assert ctx(db, screen=0).get_string([], "background") == "gray"
        assert ctx(db, screen=1).get_string([], "background") == "blue"

    def test_missing_returns_default(self, db):
        assert ctx(db).get_string(["button", "zzz"], "nothing", "dflt") == "dflt"

    def test_extended_context(self, db):
        sticky = ctx(db).extended(["sticky"])
        assert sticky.prefix_names[-1] == "sticky"
        assert sticky.prefix_classes[-1] == "Sticky"
        # Generic resources still reachable through the extension.
        assert sticky.get_string([], "background") == "gray"


class TestTypedConversions:
    def test_bool(self, db):
        assert ctx(db).get_bool(["panel", "openLook"], "resizeCorners") is True
        assert ctx(db).get_bool(["panel", "other"], "resizeCorners", False) is False

    def test_int(self, db):
        assert ctx(db).get_int(["button", "x"], "borderWidth") == 2

    def test_int_hex(self, db):
        assert ctx(db).get_int([], "titleHeight") == 0x14

    def test_int_bad_value_falls_back(self, db):
        db.put("swm*weird", "not-a-number")
        assert ctx(db).get_int([], "weird", 7) == 7

    def test_color(self, db):
        assert ctx(db).get_color([], "background") == (190, 190, 190)

    def test_color_monochrome_screen(self, db):
        db.put("swm.monochrome.screen0*background", "yellow")
        assert ctx(db, mono=True).get_color([], "background") == (255, 255, 255)

    def test_color_bad_value_falls_back(self, db):
        db.put("swm*badcolor", "zorp")
        assert ctx(db).get_color([], "badcolor", "black") == (0, 0, 0)

    def test_font(self, db):
        font = ctx(db).get_font([])
        assert font.char_width == 8

    def test_font_fallback(self, db):
        db.put("swm*font", "no-such-font")
        assert ctx(db).get_font([]).name == "fixed"

    def test_bitmap(self, db):
        bitmap = ctx(db).get_bitmap(["button", "close"], "image")
        assert bitmap is not None and bitmap.width == 16

    def test_bitmap_missing(self, db):
        assert ctx(db).get_bitmap(["button", "x"], "image") is None

    def test_cursor(self, db):
        assert ctx(db).get_cursor([]) == "left_ptr"

    def test_cursor_invalid_falls_back(self, db):
        db.put("swm*cursor", "sparkles")
        assert ctx(db).get_cursor([]) == "left_ptr"


class TestConvertBool:
    @pytest.mark.parametrize("word", ["True", "true", "ON", "yes", "1"])
    def test_truthy(self, word):
        assert convert_bool(word) is True

    @pytest.mark.parametrize("word", ["False", "off", "NO", "0"])
    def test_falsy(self, word):
        assert convert_bool(word) is False

    def test_garbage_uses_default(self):
        assert convert_bool("maybe", default=True) is True
        assert convert_bool("maybe", default=False) is False


class TestContextValidation:
    def test_mismatched_prefix_rejected(self, db):
        with pytest.raises(ValueError):
            AttributeContext(db, ["a"], ["A", "B"])
