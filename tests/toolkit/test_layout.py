"""The row/column panel layout engine."""

import pytest
from hypothesis import given, strategies as st

from repro.toolkit.layout import LayoutItem, layout_panel
from repro.xserver.geometry import CENTER


def item(name, w, h, col, row, col_neg=False, row_neg=False):
    return LayoutItem(name, w, h, col, row, col_neg, row_neg)


class TestRows:
    def test_single_row_left_packing(self):
        result = layout_panel(
            [item("a", 20, 10, 0, 0), item("b", 30, 10, 1, 0)],
            hgap=2, padding=0,
        )
        assert result.rect("a").x == 0
        assert result.rect("b").x == 22
        assert result.size.width == 52

    def test_column_order_not_declaration_order(self):
        result = layout_panel(
            [item("b", 30, 10, 1, 0), item("a", 20, 10, 0, 0)],
            hgap=0, padding=0,
        )
        assert result.rect("a").x < result.rect("b").x

    def test_two_rows_stack(self):
        result = layout_panel(
            [item("top", 40, 10, 0, 0), item("bottom", 40, 20, 0, 1)],
            vgap=2, padding=0,
        )
        assert result.rect("top").y == 0
        assert result.rect("bottom").y == 12
        assert result.size.height == 32

    def test_row_height_is_tallest_item(self):
        result = layout_panel(
            [item("short", 10, 10, 0, 0), item("tall", 10, 30, 1, 0)],
            padding=0,
        )
        # Short item vertically centered within its row.
        assert result.rect("short").y == 10
        assert result.size.height == 30

    def test_bottom_anchored_row_is_last(self):
        result = layout_panel(
            [
                item("first", 10, 10, 0, 0),
                item("last", 10, 10, 0, 0, row_neg=True),
                item("second", 10, 10, 0, 1),
            ],
            padding=0, vgap=0,
        )
        assert result.rect("first").y < result.rect("second").y < result.rect("last").y


class TestAlignment:
    def test_centered_item(self):
        """The OpenLook+ 'name' button at +C+0 centers in the row."""
        result = layout_panel(
            [
                item("pulldown", 20, 10, 0, 0),
                item("name", 40, 10, CENTER, 0),
                item("nail", 20, 10, 0, 0, col_neg=True),
                item("client", 200, 100, 0, 1),
            ],
            hgap=0, vgap=0, padding=0,
        )
        name = result.rect("name")
        width = result.size.width
        assert name.x == (width - 40) // 2
        assert result.rect("pulldown").x == 0
        assert result.rect("nail").x == width - 20

    def test_right_aligned_order(self):
        result = layout_panel(
            [
                item("r0", 10, 10, 0, 0, col_neg=True),
                item("r1", 10, 10, 1, 0, col_neg=True),
                item("wide", 100, 10, 0, 1),
            ],
            hgap=2, padding=0,
        )
        # -0 is rightmost, -1 next in from the edge.
        assert result.rect("r0").x > result.rect("r1").x
        assert result.rect("r0").x2 == result.size.width

    def test_vertically_centered_item(self):
        result = layout_panel(
            [item("body", 100, 60, 0, 0), item("mid", 20, 10, CENTER, CENTER)],
            padding=0,
        )
        mid = result.rect("mid")
        assert mid.y == (result.size.height - 10) // 2

    def test_min_width_honoured(self):
        result = layout_panel([item("a", 10, 10, 0, 0)], min_width=200)
        assert result.size.width >= 200


class TestEdgeCases:
    def test_empty_panel(self):
        result = layout_panel([])
        assert result.size.width >= 1 and result.size.height >= 1
        assert result.rects == {}

    def test_padding_applied(self):
        result = layout_panel([item("a", 10, 10, 0, 0)], padding=5)
        assert result.rect("a").origin.x == 5
        assert result.size.width == 20

    @given(
        sizes=st.lists(
            st.tuples(st.integers(1, 100), st.integers(1, 40),
                      st.integers(0, 3), st.integers(0, 3)),
            min_size=1, max_size=12,
        )
    )
    def test_items_never_overlap_in_distinct_rows(self, sizes):
        items = [
            item(f"i{n}", w, h, col + n * 10, row)
            for n, (w, h, col, row) in enumerate(sizes)
        ]
        result = layout_panel(items, hgap=1, vgap=1, padding=0)
        # Items in different rows have disjoint Y ranges.
        by_row = {}
        for layout_item in items:
            by_row.setdefault(layout_item.row, []).append(
                result.rect(layout_item.name)
            )
        rows = sorted(by_row)
        for earlier, later in zip(rows, rows[1:]):
            max_y2 = max(r.y2 for r in by_row[earlier])
            min_y = min(r.y for r in by_row[later])
            assert max_y2 <= min_y

    @given(
        widths=st.lists(st.integers(1, 60), min_size=2, max_size=8),
    )
    def test_left_packed_items_disjoint(self, widths):
        items = [item(f"i{n}", w, 10, n, 0) for n, w in enumerate(widths)]
        result = layout_panel(items, hgap=1, padding=0)
        rects = [result.rect(f"i{n}") for n in range(len(widths))]
        for a, b in zip(rects, rects[1:]):
            assert a.x2 < b.x
