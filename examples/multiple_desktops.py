#!/usr/bin/env python3
"""Multiple Virtual Desktops — the extension §6.3 anticipates:
"this would also allow swm to implement multiple Virtual Desktops".

Three independent 3000x2400 desktops; windows live on one desktop each,
sticky windows are visible on all of them, and f.gotodesktop /
f.sendtodesktop move the view and the windows around.  Scrollbars
(§6's third panning mechanism) are enabled too.

Run:  python examples/multiple_desktops.py
"""

from repro import Swm, XServer
from repro.clients import NaiveApp, XClock
from repro.core.bindings import FunctionCall
from repro.core.templates import load_template


def visible_names(server, wm):
    return sorted(
        managed.name
        for managed in wm.managed.values()
        if not managed.is_internal
        and server.window(managed.client).viewable
    )


def main() -> None:
    server = XServer(screens=[(1152, 900, 8)])
    db = load_template("OpenLook+")
    db.put("swm*virtualDesktop", "3000x2400")
    db.put("swm*virtualDesktops", "3")
    db.put("swm*scrollbars", "True")
    wm = Swm(server, db, places_path="/tmp/swm.places")

    # One project per desktop; a sticky clock follows everywhere.
    mail = NaiveApp(server, ["naivedemo", "-geometry", "500x400+100+100",
                             "-title", "mailer"])
    clock = XClock(server, ["xclock", "-geometry", "100x100-10+10"])
    wm.process_pending()

    wm.execute(FunctionCall("gotodesktop", "1"))
    editor = NaiveApp(server, ["naivedemo", "-geometry", "700x500+200+150",
                               "-title", "editor"])
    wm.process_pending()

    wm.execute(FunctionCall("gotodesktop", "2"))
    build = NaiveApp(server, ["naivedemo", "-geometry", "600x400+300+200",
                              "-title", "build-log"])
    wm.process_pending()

    for index in range(3):
        wm.execute(FunctionCall("gotodesktop", str(index)))
        print(f"desktop {index}: visible = {visible_names(server, wm)}")

    # Move the build log next to the editor.
    managed_build = wm.managed[build.wid]
    wm.execute(FunctionCall("sendtodesktop", "1"), context=managed_build)
    wm.execute(FunctionCall("gotodesktop", "1"))
    print(f"\nafter f.sendtodesktop(1): desktop 1 shows "
          f"{visible_names(server, wm)}")

    # Scrollbars pan the current desktop (§6's scrollbar mechanism).
    bars = wm.screens[0].scrollbars
    origin = server.window(bars.horizontal).position_in_root()
    server.motion(origin.x + bars.trough_length(False) // 2, origin.y + 5)
    server.button_press(1)
    server.button_release(1)
    wm.process_pending()
    vdesk = wm.screens[0].vdesk
    print(f"\nclicked mid-trough on the horizontal scrollbar: "
          f"pan = ({vdesk.pan_x}, {vdesk.pan_y})")
    print(f"thumb now at x={bars.thumb(False).x} of "
          f"{bars.trough_length(False)}")


if __name__ == "__main__":
    main()
