#!/usr/bin/env python3
"""Session management (§7): save a session with f.places, shut X down,
replay the generated .xinitrc-style script, and get the exact layout
back — including a remote client restarted on its original host.

Run:  python examples/session_roundtrip.py
"""

from repro import Swm, XServer
from repro.clients import CmdTool, OClock, XTerm
from repro.core.templates import load_template
from repro.session import Host, Launcher, replay_places


def layout(wm):
    state = {}
    for managed in wm.managed.values():
        if managed.is_internal:
            continue
        position = wm.client_desktop_position(managed)
        _, _, width, height, _ = wm.conn.get_geometry(managed.client)
        state[managed.name] = (
            f"{width}x{height}+{position.x}+{position.y} state={managed.state}"
        )
    return state


def main() -> None:
    server = XServer(screens=[(1152, 900, 8)])
    db = load_template("OpenLook+")
    wm = Swm(server, db, places_path="/tmp/swm.places")

    # A mixed session: an Xt client, an XView client (different command
    # line dialect!), a shaped client, and a remote client.
    XTerm(server, ["xterm", "-geometry", "80x24+10+10"])
    CmdTool(server, ["cmdtool", "-Wp", "600", "50", "-Ws", "400", "300"])
    OClock(server, ["oclock", "-geom", "100x100"])
    XTerm(server, ["xterm", "-title", "build"], host="compute.example.com")
    wm.process_pending()

    # Rearrange things, exactly like the paper's oclock example: it
    # started at 100x100 and ends up 120x120 at (1010, 359).
    oclock = next(m for m in wm.managed.values() if m.instance == "oclock")
    wm.resize_managed(oclock, 120, 120)
    wm.move_client_to(oclock, 1010, 359)
    build = next(m for m in wm.managed.values() if m.name == "build")
    wm.iconify(build)

    before = layout(wm)
    script = wm.save_places()
    print("Generated places file (the .xinitrc replacement):")
    print("-" * 60)
    print(script)
    print("-" * 60)

    # X goes down; everything dies.
    server.reset()

    # A new X session sources the script.
    launcher = Launcher(server)
    launcher.add_host(Host("compute.example.com"))
    replay_places(script, launcher)
    wm2 = Swm(server, db, places_path="/tmp/swm.places2")
    wm2.process_pending()

    after = layout(wm2)
    print("\nLayout before vs after the X restart:")
    for instance in sorted(before):
        match = "OK " if before[instance] == after.get(instance) else "DIFF"
        print(f"  [{match}] {instance:10s} {before[instance]}")
    assert before == after, "session did not restore faithfully"
    print("\nSession restored exactly — size, position, icon state, host.")


if __name__ == "__main__":
    main()
