#!/usr/bin/env python3
"""The Virtual Desktop (§6): a rooms-style environment.

Four "rooms" live in the quadrants of a 3000x2400 desktop; a sticky
xclock stays on the glass while the desktop pans, and the panner shows
the whole layout in miniature (paper Figure 3).

Run:  python examples/virtual_desktop_rooms.py
"""

from repro import Swm, XServer
from repro.clients import NaiveApp, XClock, XTerm
from repro.core.templates import load_template
from repro.figures import figure3_panner


ROOMS = {
    "mail": (0, 0),
    "code": (1500, 0),
    "docs": (0, 1200),
    "scratch": (1500, 1200),
}


def main() -> None:
    server = XServer(screens=[(1152, 900, 8)])
    db = load_template("OpenLook+")
    db.put("swm*virtualDesktop", "3000x2400")
    wm = Swm(server, db, places_path="/tmp/swm.places")

    # One window per room, plus a sticky clock (sticky via the
    # template's `swm*xclock.XClock.sticky: True`).
    for name, (x, y) in ROOMS.items():
        NaiveApp(
            server,
            ["naivedemo", "-geometry", f"500x400+{x + 200}+{y + 200}",
             "-title", name],
        )
    clock = XClock(server, ["xclock", "-geometry", "100x100-10+10"])
    wm.process_pending()

    clock_position = clock.root_position()
    for name, (x, y) in ROOMS.items():
        wm.pan_to(0, x, y)
        visible = [
            managed.name
            for managed in wm.managed.values()
            if not managed.is_internal
            and not managed.sticky
            and server.window(managed.client)
            .rect_in_root()
            .intersects(server.screens[0].rect)
        ]
        assert clock.root_position() == clock_position, "sticky clock moved!"
        print(f"room {name!r:10s}: visible windows = {visible}")

    print("\nSticky clock stayed at", clock_position, "through every pan.")

    wm.pan_to(0, 750, 600)  # a spot between rooms
    print("\nThe panner (paper Figure 3) — '#' windows, ':' viewport:")
    print(figure3_panner(wm))


if __name__ == "__main__":
    main()
