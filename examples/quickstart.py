#!/usr/bin/env python3
"""Quickstart: boot a simulated X server, run swm under the OpenLook+
template, start a few classic clients, and exercise basic window
management.

Run:  python examples/quickstart.py
"""

from repro import Swm, XServer
from repro.clients import OClock, XClock, XTerm
from repro.core.bindings import FunctionCall
from repro.core.templates import load_template
from repro.figures import figure1_decoration


def main() -> None:
    # An 1152x900 color screen — a Sun-3 era framebuffer.
    server = XServer(screens=[(1152, 900, 8)])

    # swm is configured entirely through the X resource database (§3).
    db = load_template("OpenLook+")
    wm = Swm(server, db, places_path="/tmp/swm.places")

    # Classic clients.  Option parsing, ICCCM properties, and (for
    # oclock) the SHAPE extension all behave like the real ones.
    term = XTerm(server, ["xterm", "-geometry", "80x24+30+30", "-title", "shell"])
    clock = XClock(server, ["xclock", "-geometry", "120x120-10+10"])
    oclock = OClock(server, ["oclock", "-geometry", "120x120+30+480"])
    wm.process_pending()

    print("Managed windows:")
    for managed in wm.managed.values():
        if managed.is_internal:
            continue
        position = wm.client_desktop_position(managed)
        print(
            f"  {managed.instance:10s} decoration={managed.decoration_name:12s}"
            f" at ({position.x},{position.y})"
            f" sticky={managed.sticky} shaped={managed.shaped}"
        )

    # Window management through f.* functions (§5).
    managed_term = wm.managed[term.wid]
    wm.execute(FunctionCall("moveto", "400 200"), context=managed_term)
    wm.execute(FunctionCall("iconify"), context=managed_term)
    print(f"\nAfter f.moveto + f.iconify: xterm state={managed_term.state}"
          f" (1=Normal, 3=Iconic)")
    wm.execute(FunctionCall("deiconify"), context=managed_term)

    # The Figure-1 decoration, rendered from the live window tree.
    print("\nThe xterm's OpenLook+ decoration (paper Figure 1):")
    print(figure1_decoration(server, wm, term.wid))


if __name__ == "__main__":
    main()
