#!/usr/bin/env python3
"""swmcmd (§4.3): executing window-manager commands from outside swm —
"a way to execute window manager commands by typing them into a shell".

Also demonstrates §4.2's dynamic buttons: an external process flips a
button's image to reflect its status (the paper's suggested use).

Run:  python examples/swmcmd_remote_control.py
"""

from repro import Swm, XServer, swmcmd
from repro.clients import XBiff, XTerm
from repro.core.templates import load_template


def main() -> None:
    server = XServer(screens=[(1152, 900, 8)])
    db = load_template("OpenLook+")
    wm = Swm(server, db, places_path="/tmp/swm.places")

    term = XTerm(server, ["xterm", "-geometry", "+100+100"])
    biff = XBiff(server, ["xbiff", "-geometry", "+600+100"])
    wm.process_pending()

    # Any process can drive the WM by writing the command property.
    print("swmcmd f.iconify(#0x%x)  ->" % term.wid, end=" ")
    swmcmd(server, f"f.iconify(#{term.wid:#x})")
    wm.process_pending()
    print("xterm state:", wm.managed[term.wid].state, "(3 = Iconic)")

    print("swmcmd f.deiconify(XTerm) ->", end=" ")
    swmcmd(server, "f.deiconify(XTerm)")
    wm.process_pending()
    print("xterm state:", wm.managed[term.wid].state, "(1 = Normal)")

    # The paper: "changing the shape of a button to indicate the status
    # of a process" — mail arrives, a titlebar button flips to the full
    # mailbox bitmap.  (xbiff itself is sticky with a minimal
    # decoration, so we flip the xterm's nail button.)
    nail = wm.managed[term.wid].object_named("nail")
    print("\nnail button image before:", nail.image)
    swmcmd(server, "f.setimage(nail:mailfull)")
    wm.process_pending()
    print("nail button image after :", nail.image)

    # A command with no target prompts with the question-mark cursor,
    # exactly like `swmcmd f.raise` in the paper.
    swmcmd(server, "f.raise")
    wm.process_pending()
    print("\nAfter bare 'swmcmd f.raise':",
          f"pointer cursor = {server.active_grab.cursor!r} (prompting)")
    # The user clicks the xterm to complete the command.
    rect = wm.frame_rect(wm.managed[term.wid])
    server.motion(rect.x + 5, rect.y + 25)
    server.button_press(1)
    server.button_release(1)
    wm.process_pending()
    print("Selection completed; prompt ended:", wm.selection is None)


if __name__ == "__main__":
    main()
