#!/usr/bin/env python3
"""Policy-free window management (§1, §4): three different look-and-
feels — OpenLook+, Motif emulation, and a from-scratch custom policy —
with zero code, only resource database entries.

The custom policy puts the controls *below* the window ("Objects can
easily be placed to the sides or below the client window", §4.1.1).

Run:  python examples/custom_look_and_feel.py
"""

from repro import Swm, XServer
from repro.clients import XTerm
from repro.core.templates import load_template
from repro.figures import figure1_decoration
from repro.xrm import ResourceDatabase

CUSTOM = """
! A from-scratch look: controls live in a bottom bar.
Swm*panel.bottombar: \\
    panel client +0+0 \\
    button close +0+1 \\
    button name +C+1 \\
    button grow -0+1
Swm*decoration: bottombar
Swm*iconPanel: Xicon
Swm*panel.Xicon: button iconimage +C+0 button iconname +C+1
Swm*button.iconimage.image: xlogo32
Swm*button.close.label: [x]
Swm*button.grow.label: [+]
Swm*button.close.bindings: <Btn1> : f.delete
Swm*button.grow.bindings: <Btn1> : f.save f.zoom
Swm*button.name.bindings: <Btn1> : f.raise <Btn2> : f.move
Swm*font: 8x13
"""


def render_under(template_db: ResourceDatabase, label: str) -> None:
    server = XServer(screens=[(1152, 900, 8)])
    wm = Swm(server, template_db, places_path="/tmp/swm.places")
    app = XTerm(server, ["xterm", "-geometry", "40x12+40+40",
                         "-title", "demo"])
    wm.process_pending()
    managed = wm.managed[app.wid]
    print(f"=== {label} (decoration panel: {managed.decoration_name!r}) ===")
    print(figure1_decoration(server, wm, app.wid))
    print()
    wm.quit()


def main() -> None:
    render_under(load_template("OpenLook+"), "OpenLook+ emulation")
    render_under(load_template("Motif"), "OSF/Motif emulation")
    custom = ResourceDatabase()
    custom.load_string(CUSTOM)
    render_under(custom, "Custom bottom-bar policy (no code, just resources)")


if __name__ == "__main__":
    main()
